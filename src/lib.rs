//! # xarch — archiving scientific data
//!
//! A Rust reproduction of Buneman, Khanna, Tajima & Tan, *Archiving
//! Scientific Data* (SIGMOD 2002 / ACM TODS 29(1), 2004): a key-based,
//! merging archiver for hierarchical (XML) databases, plus every substrate
//! its evaluation depends on.
//!
//! The paper contributes one archiving *model* — all versions merged into
//! a single tree, elements identified across versions by their keys,
//! interval-set timestamps recording when each element exists — and three
//! ways of running it. This crate exposes all three behind one trait,
//! [`VersionStore`], configured through [`ArchiveBuilder`]:
//!
//! ```
//! use xarch::core::KeyQuery;
//! use xarch::keys::KeySpec;
//! use xarch::xml::parse;
//! use xarch::ArchiveBuilder;
//!
//! let spec = KeySpec::parse("(/, (db, {}))\n(/db, (gene, {id}))\n(/db/gene, (seq, {}))")?;
//! let mut store = ArchiveBuilder::new(spec).build();
//! store.add_version(&parse("<db><gene><id>6230</id><seq>GTCG</seq></gene></db>")?)?;
//! store.add_version(&parse("<db><gene><id>6230</id><seq>GTCA</seq></gene></db>")?)?;
//!
//! // retrieve any version, materialized…
//! let v1 = store.retrieve(1)?.expect("archived");
//! assert!(xarch::xml::writer::to_compact_string(&v1).contains("GTCG"));
//! // …or streamed straight into any `io::Write` sink
//! let mut bytes = Vec::new();
//! assert!(store.retrieve_into(1, &mut bytes)?);
//! assert!(String::from_utf8(bytes)?.contains("GTCG"));
//! // …and ask for an element's temporal history
//! let q = [KeyQuery::new("db"), KeyQuery::new("gene").with_text("id", "6230")];
//! assert_eq!(store.history(&q)?.expect("exists").to_string(), "1-2");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Choosing a backend
//!
//! Every backend implements the same [`VersionStore`] contract and
//! produces version-for-version equivalent databases (the integration
//! suite verifies this); they differ in where the merge's working set
//! lives:
//!
//! | builder call | backend | paper | when to use |
//! |---|---|---|---|
//! | default | [`core::Archive`] | §4.2 | archive + version fit in RAM; fastest merges and queries |
//! | `.chunks(n)` | [`core::ChunkedArchive`] | §5 | data outgrows one merge's memory: top-level records are hash-partitioned into `n` independent archives, merged chunk by chunk |
//! | `.backend(Backend::ExtMem(io_cfg))` | [`extmem::ExtArchive`] | §6.3 | data outgrows memory entirely: sorted event streams merged in one `O(N/B)` pass, with paged-I/O accounting |
//! | `.durable(path)` | [`storage::DurableArchive`] | — | the archive must outlive the process: every commit is journaled to a checksummed segment file and replayed on reopen (composes with any row above) |
//!
//! `.compaction(Compaction::Weave)` additionally selects Fig 10's
//! "further compaction" beneath frontier nodes for the in-memory and
//! chunked backends. Durable configurations can fail to open (corrupt
//! file, key-spec mismatch), so prefer [`ArchiveBuilder::try_build`] over
//! `build()` when `.durable(..)` is set.
//!
//! ## Workspace layout
//!
//! * [`xml`] — XML model, parser, writers, value order, canonical form;
//! * [`keys`] — keys for XML, Annotate Keys, fingerprints, validation;
//! * [`diff`] — Myers line diff, delta repositories, SCCS weave;
//! * [`core`] — the archiver: Nested Merge, timestamps, retrieval,
//!   temporal history, change description, chunking, the Fig-5 XML form,
//!   and the [`VersionStore`] trait;
//! * [`compress`] — LZSS (gzip-class) and XMill-style compressors;
//! * [`extmem`] — the external-memory archiver with I/O accounting;
//! * [`storage`] — the durable segmented archive format and the
//!   crash-safe [`storage::DurableArchive`] backend;
//! * [`index`] — timestamp trees and the history index;
//! * [`datagen`] — OMIM/Swiss-Prot/XMark-like generators and the paper's
//!   change simulators.

pub use xarch_compress as compress;
pub use xarch_core as core;
pub use xarch_datagen as datagen;
pub use xarch_diff as diff;
pub use xarch_extmem as extmem;
pub use xarch_index as index;
pub use xarch_keys as keys;
pub use xarch_storage as storage;
pub use xarch_xml as xml;

mod store;

pub use store::{ArchiveBuilder, Backend};
pub use xarch_core::{StoreError, StoreStats, VersionStore};
pub use xarch_storage::{DurableArchive, DurableOptions, RecoveryStats};
