//! # xarch — archiving scientific data
//!
//! A Rust reproduction of Buneman, Khanna, Tajima & Tan, *Archiving
//! Scientific Data* (SIGMOD 2002 / ACM TODS 29(1), 2004): a key-based,
//! merging archiver for hierarchical (XML) databases, plus every substrate
//! its evaluation depends on.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`xml`] — XML model, parser, writers, value order, canonical form;
//! * [`keys`] — keys for XML, Annotate Keys, fingerprints, validation;
//! * [`diff`] — Myers line diff, delta repositories, SCCS weave;
//! * [`core`] — the archiver: Nested Merge, timestamps, retrieval,
//!   temporal history, change description, chunking, the Fig-5 XML form;
//! * [`compress`] — LZSS (gzip-class) and XMill-style compressors;
//! * [`extmem`] — the external-memory archiver with I/O accounting;
//! * [`index`] — timestamp trees and the history index;
//! * [`datagen`] — OMIM/Swiss-Prot/XMark-like generators and the paper's
//!   change simulators.
//!
//! ## Quickstart
//!
//! ```
//! use xarch::core::{Archive, KeyQuery};
//! use xarch::keys::KeySpec;
//! use xarch::xml::parse;
//!
//! let spec = KeySpec::parse("(/, (db, {}))\n(/db, (gene, {id}))\n(/db/gene, (seq, {}))")?;
//! let mut archive = Archive::new(spec);
//! archive.add_version(&parse("<db><gene><id>6230</id><seq>GTCG</seq></gene></db>")?)?;
//! archive.add_version(&parse("<db><gene><id>6230</id><seq>GTCA</seq></gene></db>")?)?;
//!
//! // retrieve any version…
//! let v1 = archive.retrieve(1).unwrap();
//! assert!(xarch::xml::writer::to_compact_string(&v1).contains("GTCG"));
//! // …and ask for an element's temporal history
//! let q = [KeyQuery::new("db"), KeyQuery::new("gene").with_text("id", "6230")];
//! assert_eq!(archive.history(&q).unwrap().to_string(), "1-2");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use xarch_compress as compress;
pub use xarch_core as core;
pub use xarch_datagen as datagen;
pub use xarch_diff as diff;
pub use xarch_extmem as extmem;
pub use xarch_index as index;
pub use xarch_keys as keys;
pub use xarch_xml as xml;
