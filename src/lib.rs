//! # xarch — archiving scientific data
//!
//! A Rust reproduction of Buneman, Khanna, Tajima & Tan, *Archiving
//! Scientific Data* (SIGMOD 2002 / ACM TODS 29(1), 2004): a key-based,
//! merging archiver for hierarchical (XML) databases, plus every substrate
//! its evaluation depends on.
//!
//! The paper contributes one archiving *model* — all versions merged into
//! a single tree, elements identified across versions by their keys,
//! interval-set timestamps recording when each element exists — and three
//! ways of running it. This crate exposes all three behind one trait,
//! [`VersionStore`], configured through [`ArchiveBuilder`]:
//!
//! ```
//! use xarch::core::KeyQuery;
//! use xarch::keys::KeySpec;
//! use xarch::xml::parse;
//! use xarch::ArchiveBuilder;
//!
//! let spec = KeySpec::parse("(/, (db, {}))\n(/db, (gene, {id}))\n(/db/gene, (seq, {}))")?;
//! let mut store = ArchiveBuilder::new(spec).with_index().build();
//! store.add_version(&parse("<db><gene><id>6230</id><seq>GTCG</seq></gene></db>")?)?;
//! store.add_version(&parse("<db><gene><id>6230</id><seq>GTCA</seq></gene></db>")?)?;
//!
//! // retrieve any version, materialized…
//! let v1 = store.retrieve(1)?.expect("archived");
//! assert!(xarch::xml::writer::to_compact_string(&v1).contains("GTCG"));
//! // …or streamed straight into any `io::Write` sink
//! let mut bytes = Vec::new();
//! assert!(store.retrieve_into(1, &mut bytes)?);
//! assert!(String::from_utf8(bytes)?.contains("GTCG"));
//!
//! // temporal queries (§7): history, partial as-of retrieval, range
//! // scans and diffs — indexed, so the cost tracks the answer
//! let q = [KeyQuery::new("db"), KeyQuery::new("gene").with_text("id", "6230")];
//! assert_eq!(store.history(&q)?.expect("exists").to_string(), "1-2");
//! let at_v1 = store.as_of(&q, 1)?.expect("existed at v1");
//! assert!(xarch::xml::writer::to_compact_string(&at_v1).contains("GTCG"));
//! let full = store.history_values(&q)?.expect("exists");
//! assert_eq!(full.values.len(), 2); // two distinct sequences over time
//! let genes = store.range(&[KeyQuery::new("db")], 1..=2)?;
//! assert_eq!(genes.len(), 1); // one gene alive in the window
//! assert!(!store.diff(&q, 1, 2)?.is_same());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Choosing a backend
//!
//! Every backend implements the same [`VersionStore`] contract and
//! produces version-for-version equivalent databases (the integration
//! suite verifies this); they differ in where the merge's working set
//! lives and how temporal queries are answered:
//!
//! | builder call | backend | paper | when to use | `as_of` / `history` / `range` | bulk ingest ([`VersionStore::add_versions`]) | shared reads | observability (`.with_observability(..)`) |
//! |---|---|---|---|---|---|---|---|
//! | default | [`core::Archive`] | §4.2 | archive + version fit in RAM; fastest merges and queries | native: key-path descent + visibility-pruned subtree walk | batch nested merge — each archive level is sorted and walked once per batch, byte-identical to a serial replay | `&self`, lock-free | `query.*` / `ingest.*` latency histograms via the outermost [`core::ObservedStore`] wrapper |
//! | `.chunks(n)` | [`core::ChunkedArchive`] | §5 | data outgrows one merge's memory: top-level records are hash-partitioned into `n` independent archives, merged chunk by chunk | native: queries route to the owning chunk; `range` fans out and merges | the whole batch is partitioned once, then chunks merge their sub-batches on parallel worker threads | `&self`, lock-free | `query.*` / `ingest.*` histograms (whole-store timing spans all chunks) |
//! | `.backend(Backend::ExtMem(io_cfg))` | [`extmem::ExtArchive`] | §6.3 | data outgrows memory entirely: sorted event streams merged in one `O(N/B)` pass, with paged-I/O accounting | native: partial stream scan — non-matching spines are skipped, only the answer is materialized | the batch folds into a single streaming pass: one archive-sized read+write for `k` versions instead of `k` | `&self`; I/O accounting via atomics | `extmem.page_reads` / `extmem.page_writes` counters + `query.*` / `ingest.*` |
//! | `.durable(path)` + `.checkpoint_every(n)` | [`storage::DurableArchive`] | — | the archive must outlive the process: every commit is journaled to a checksummed segment file and replayed on reopen (composes with any row above); a checkpoint cadence keeps reopen cost flat vs history by restoring the newest snapshot block and replaying only the tail | delegates to the wrapped backend; indexes are re-established during replay | **group commit** — one multi-version block, one commit word, one fsync per batch; a torn batch recovers to the pre-batch state, never a prefix | `&self`; reads never touch the journal | `segment.*` / `checkpoint.*` write/fsync counters, `recovery.*` replay counters + duration, structured recovery events (torn tail, corrupt block, skipped checkpoint) |
//! | `.with_index()` | [`index::IndexedArchive`] / [`index::IndexedStore`] | §7 | query-heavy service workloads: timestamp trees + history index (in-memory) or a key-path sidecar (chunked, extmem), maintained incrementally per merge | indexed: `O(l log d)` descent, probe counts proportional to the answer | one batch merge, then one batched index apply | `&self`; probe counters are atomics | `index.history.comparisons` / `index.timestamp.probes` bound to the shared registry |
//! | [`ColdArchive::open`](storage::ColdArchive::open) | [`storage::ColdArchive`] | — | rarely-read archives that must answer without startup cost: queries run straight off the mmap'd segment file via a per-block version index, decoding only the blocks each answer needs — the archive is never materialized in RAM | per-block: `retrieve` decodes one block; `as_of`/`range`/`diff` ride the trait fallbacks; `history` streams block-at-a-time | n/a — cold readers are read-only (a shared OS lock admits any number of them beside each other, and refuses a live writer) | `&self`; the map itself is the shared state | `cold.retrieves` / `cold.blocks_decoded` / `cold.bytes_decoded` counters + `cold.mapped_bytes` gauge ([`storage::ColdArchive::open_observed`]) |
//!
//! `.compaction(Compaction::Weave)` additionally selects Fig 10's
//! "further compaction" beneath frontier nodes for the in-memory and
//! chunked backends. Durable configurations can fail to open (corrupt
//! file, key-spec mismatch), so prefer [`ArchiveBuilder::try_build`] over
//! `build()` when `.durable(..)` is set. The on-disk format all the
//! durable rows share — superblock, block grammar, checkpoint envelope,
//! recovery rules — is specified byte-for-byte in `docs/FORMAT.md`, and
//! a golden test pins the spec's constants to the source.
//!
//! ## Bulk ingest
//!
//! Real curated archives arrive as releases. [`VersionStore::add_versions`]
//! ingests a whole batch through the per-tier fast paths in the table —
//! always observably identical to one [`VersionStore::add_version`] per
//! document (`tests/batch_equivalence.rs` holds every backend to that) —
//! and native paths validate the whole batch before mutating anything,
//! so a rejected batch leaves the store untouched. Behind an
//! [`ArchiveHandle`], the batch lands under one write-lock acquisition
//! and snapshots pin either side of it, never the middle:
//!
//! ```
//! use xarch::keys::KeySpec;
//! use xarch::xml::parse;
//! use xarch::{ArchiveBuilder, StoreReader};
//!
//! let spec = KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))")?;
//! let handle = ArchiveBuilder::new(spec).build_shared();
//! let release = vec![
//!     parse("<db><rec><id>1</id></rec></db>")?,
//!     parse("<db><rec><id>1</id></rec><rec><id>2</id></rec></db>")?,
//! ];
//! assert_eq!(handle.add_versions(&release)?, vec![1, 2]);
//! assert_eq!(handle.snapshot().pinned(), 2); // whole batch or nothing
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/bulk_load.rs` for group-committed durable bulk loading
//! and the `ingest` bench figure for what batching buys.
//!
//! ## Serving concurrent readers
//!
//! The contract is split read/write: every query lives on the object-safe
//! [`StoreReader`] trait with `&self` receivers, and [`VersionStore`]
//! (which is `Send + Sync` by contract) adds the two mutators. On top of
//! that split, `.build_shared()` returns an [`ArchiveHandle`] — a
//! cheaply-clonable handle with single-writer / multi-reader semantics —
//! and [`ArchiveHandle::snapshot`] pins a [`Snapshot`] at the current
//! version: every query through it clamps to the pinned version, so a
//! reader observes one consistent archive while merges continue behind it.
//!
//! ```
//! use xarch::keys::KeySpec;
//! use xarch::xml::parse;
//! use xarch::{ArchiveBuilder, StoreReader};
//!
//! let spec = KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))")?;
//! let handle = ArchiveBuilder::new(spec).with_index().build_shared();
//! handle.add_version(&parse("<db><rec><id>1</id></rec></db>")?)?;
//!
//! let snap = handle.snapshot(); // pinned at version 1
//! let reader = handle.clone();  // e.g. move into a request-handler thread
//! std::thread::spawn(move || {
//!     assert_eq!(snap.latest(), 1); // repeatable reads, whatever commits
//!     assert!(snap.retrieve(1).expect("read").is_some());
//!     drop(reader.snapshot()); // fresh pins track the live archive
//! })
//! .join()
//! .unwrap();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/concurrent_service.rs` for a writer racing a pool of
//! snapshot readers, and `tests/concurrency.rs` for the stress proof that
//! snapshot answers are byte-identical to serial replays.
//!
//! To serve that contract over the network, `xarch-server`
//! (`crates/server`) owns an [`ArchiveHandle`] behind a TCP worker pool
//! and answers the whole query surface plus batched ingest over the
//! `xarch_proto` wire protocol — each request from a fresh snapshot pin
//! or a client-held lease (`docs/PROTOCOL.md` is the byte-level spec;
//! [`ArchiveBuilder::try_build_served`] is the construction hook).
//!
//! ## Workspace layout
//!
//! * [`xml`] — XML model, parser, writers, value order, canonical form;
//! * [`keys`] — keys for XML, Annotate Keys, fingerprints, validation;
//! * [`diff`] — Myers line diff, delta repositories, SCCS weave;
//! * [`core`] — the archiver: Nested Merge, timestamps, retrieval,
//!   temporal history, the query model (`as_of`/`history`/`range`/`diff`),
//!   change description, chunking, the Fig-5 XML form, and the
//!   [`VersionStore`] trait;
//! * [`compress`] — LZSS (gzip-class) and XMill-style compressors;
//! * [`extmem`] — the external-memory archiver with I/O accounting;
//! * [`storage`] — the durable segmented archive format (specified in
//!   `docs/FORMAT.md`), the crash-safe [`storage::DurableArchive`]
//!   backend with checkpointed reopen, and the mmap'd
//!   [`storage::ColdArchive`] cold-read path;
//! * [`index`] — timestamp trees, the history index, and the indexed
//!   `VersionStore` backends built on them;
//! * [`obs`] — the dependency-free observability layer: metrics registry
//!   (counters/gauges/latency histograms over lock-free atomics),
//!   structured tracing events with a post-mortem ring buffer, and
//!   Prometheus/JSON exposition — threaded through every backend by
//!   [`ArchiveBuilder::with_observability`] (see `examples/ops_report.rs`);
//! * [`datagen`] — OMIM/Swiss-Prot/XMark-like generators and the paper's
//!   change simulators.
//!
//! Two service crates sit on top of the facade (and are therefore not
//! re-exported here): `xarch_proto` (`crates/proto`), the CRC-framed
//! wire protocol and blocking client, and `xarch_server`
//! (`crates/server`), the `xarch-server` network archive service.
//!
//! ## Tooling
//!
//! | tool | run | enforces |
//! |---|---|---|
//! | `xarch_analysis` (`crates/analysis`) | `cargo run --release -p xarch_analysis -- check` | panic-freedom in decode/recovery paths, no lock guard across fsync/snapshot, no truncating casts in `storage`, `&self` [`StoreReader`] methods + `Send`/`Sync` store impls, `// SAFETY:` on every `unsafe` block, no ad-hoc `Instant::now()` timing or `eprintln!` event logging outside `xarch_obs` in library code |
//! | docs drift gate (`tests/docs.rs`) | `cargo test --test docs` | `docs/FORMAT.md`'s magic / format-revision / layout constants match `crates/storage` source, `docs/PROTOCOL.md`'s handshake constants / verb bytes / error codes match `crates/proto` source (golden tests), and every intra-repo link in `README.md` / `docs/*.md` resolves |
//!
//! The analyzer runs in CI as a required gate; deliberate exemptions use
//! in-place `// xarch-allow: <rule> -- <reason>` comments, all of which
//! the `report` mode prints as a ledger (see the README's "Enforced
//! invariants" section and the `analyze` example).

pub use xarch_compress as compress;
pub use xarch_core as core;
pub use xarch_datagen as datagen;
pub use xarch_diff as diff;
pub use xarch_extmem as extmem;
pub use xarch_index as index;
pub use xarch_keys as keys;
pub use xarch_obs as obs;
pub use xarch_storage as storage;
pub use xarch_xml as xml;

mod handle;
mod store;

pub use handle::{ArchiveHandle, Snapshot};
pub use store::{ArchiveBuilder, Backend};
pub use xarch_core::{
    ElementHistory, RangeEntry, StoreError, StoreReader, StoreStats, VersionDelta, VersionStore,
};
pub use xarch_index::{IndexedArchive, IndexedStore, QueryIndex};
pub use xarch_storage::{ColdArchive, DurableArchive, DurableOptions, RecoveryStats};
