//! The concurrent service layer: one writer, many readers, over any
//! backend.
//!
//! The paper's archive is an *append-only* structure: merging version `i`
//! decides only whether `i` belongs to each element's timestamp, never the
//! membership of earlier versions. So the answer to any query *about
//! versions ≤ P* is fixed the moment version `P` commits — exactly the
//! property an online archive service needs to serve heavy read traffic
//! while curation continues. [`ArchiveHandle`] packages that property:
//!
//! * the handle is cheaply clonable (an [`Arc`]) and `Send + Sync`;
//! * writes (`add_version`) take the write lock — single-writer;
//! * reads take the read lock — any number run concurrently;
//! * [`ArchiveHandle::snapshot`] returns a [`Snapshot`]: a [`StoreReader`]
//!   pinned at the version that was `latest()` at snapshot time. Every
//!   query through the snapshot clamps to the pinned version, so a reader
//!   observes one consistent archive — repeatable reads across many
//!   queries — while merges keep landing behind it.
//!
//! ```
//! use xarch::keys::KeySpec;
//! use xarch::xml::parse;
//! use xarch::{ArchiveBuilder, StoreReader};
//!
//! let spec = KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))")?;
//! let handle = ArchiveBuilder::new(spec).build_shared();
//! handle.add_version(&parse("<db><rec><id>1</id></rec></db>")?)?;
//!
//! let snap = handle.snapshot(); // pinned at version 1
//! handle.add_version(&parse("<db><rec><id>2</id></rec></db>")?)?;
//!
//! // the snapshot still sees the world as of version 1 …
//! assert_eq!(snap.latest(), 1);
//! assert!(!snap.has_version(2));
//! // … while the handle serves the live archive
//! assert_eq!(handle.latest(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::Write;
use std::ops::RangeInclusive;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use xarch_core::{
    ElementHistory, KeyQuery, RangeEntry, StoreError, StoreReader, StoreStats, TimeSet,
    VersionDelta, VersionStore,
};
use xarch_keys::KeySpec;
use xarch_obs::{Counter, Histogram, Obs};
use xarch_xml::Document;

/// The canonical `handle.*` metric handles: how often readers pin
/// snapshots, and how long writers keep everyone else waiting.
#[derive(Clone, Debug, Default)]
struct HandleMetrics {
    /// `handle.snapshot_pins` — snapshots taken (repeatable-read pins).
    snapshot_pins: Counter,
    /// `handle.write_lock_hold` — write-lock hold time per mutation (µs).
    write_lock_hold: Histogram,
}

impl HandleMetrics {
    fn registered(obs: &Obs) -> Self {
        let r = obs.registry();
        Self {
            snapshot_pins: r.counter(
                "handle.snapshot_pins",
                "snapshots",
                "repeatable-read snapshots pinned off the shared handle",
            ),
            write_lock_hold: r.histogram(
                "handle.write_lock_hold",
                "micros",
                "write-lock hold time per mutation through the shared handle",
            ),
        }
    }
}

/// The state one handle and all its snapshots share. The spec is cached
/// outside the lock: it is fixed at construction, and `StoreReader::spec`
/// returns a borrow that must not depend on holding a guard.
struct Shared {
    store: RwLock<Box<dyn VersionStore>>,
    spec: KeySpec,
    metrics: HandleMetrics,
}

impl Shared {
    fn read(&self) -> RwLockReadGuard<'_, Box<dyn VersionStore>> {
        // a poisoned lock means a writer panicked mid-merge; the archive
        // may hold a half-applied version, so refuse to serve from it
        self.store
            .read()
            .expect("archive writer panicked mid-merge")
    }

    fn write(&self) -> RwLockWriteGuard<'_, Box<dyn VersionStore>> {
        self.store
            .write()
            .expect("archive writer panicked mid-merge")
    }
}

/// A cheaply-clonable, thread-safe handle to a shared archive:
/// single-writer / multi-reader over any [`VersionStore`] backend.
///
/// Reads through the handle (it implements [`StoreReader`]) are *live* —
/// each query sees whatever has been committed when it acquires the read
/// lock. For a consistent view across several queries, take a
/// [`ArchiveHandle::snapshot`].
///
/// Constructed by [`crate::ArchiveBuilder::build_shared`] /
/// [`crate::ArchiveBuilder::try_build_shared`], or directly from any boxed
/// store with [`ArchiveHandle::new`].
#[derive(Clone)]
pub struct ArchiveHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ArchiveHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchiveHandle")
            .field("latest", &self.latest())
            .finish()
    }
}

impl ArchiveHandle {
    /// Wraps `store` for shared use with detached (unregistered) handle
    /// metrics — recording is still lock-free, just invisible.
    pub fn new(store: Box<dyn VersionStore>) -> Self {
        Self::with_metrics(store, HandleMetrics::default())
    }

    /// Wraps `store` for shared use, registering the `handle.*` metrics
    /// (snapshot pins, write-lock hold time) in `obs`'s registry.
    pub fn observed(store: Box<dyn VersionStore>, obs: &Obs) -> Self {
        Self::with_metrics(store, HandleMetrics::registered(obs))
    }

    fn with_metrics(store: Box<dyn VersionStore>, metrics: HandleMetrics) -> Self {
        let spec = store.spec().clone();
        Self {
            shared: Arc::new(Shared {
                store: RwLock::new(store),
                spec,
                metrics,
            }),
        }
    }

    /// Merges `doc` as the next version (write lock: excludes other
    /// writers and waits out in-flight reads; snapshots taken earlier are
    /// unaffected — their pinned answers never change).
    pub fn add_version(&self, doc: &Document) -> Result<u32, StoreError> {
        let mut guard = self.shared.write();
        // declared after the guard: drops (and records) just before the
        // lock is released, so the sample is the hold time, not the wait
        let _hold = self.shared.metrics.write_lock_hold.start_timer();
        guard.add_version(doc)
    }

    /// Archives an *empty* database as the next version (write lock).
    pub fn add_empty_version(&self) -> Result<u32, StoreError> {
        let mut guard = self.shared.write();
        let _hold = self.shared.metrics.write_lock_hold.start_timer();
        guard.add_empty_version()
    }

    /// Bulk ingest under **one** write-lock acquisition: the wrapped
    /// backend's batch fast path runs while readers wait, so no reader —
    /// and no snapshot taken before or after — can ever observe a
    /// half-applied batch. A snapshot pins either the pre-batch or the
    /// post-batch version, never a prefix.
    pub fn add_versions(&self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        let mut guard = self.shared.write();
        let _hold = self.shared.metrics.write_lock_hold.start_timer();
        guard.add_versions(docs)
    }

    /// A read-only view pinned at the version that is `latest()` right
    /// now. Taking a snapshot is O(1) — no data is copied; the snapshot
    /// clamps every query to the pinned version instead.
    pub fn snapshot(&self) -> Snapshot {
        let pinned = self.shared.read().latest();
        self.shared.metrics.snapshot_pins.inc();
        Snapshot {
            shared: Arc::clone(&self.shared),
            pinned,
        }
    }

    /// Runs `f` with the locked store — an escape hatch for backend
    /// inspection (I/O stats, recovery stats) that the trait does not
    /// carry. Reads only; the closure gets `&dyn VersionStore`.
    ///
    /// The read lock is held for the closure's whole run: do **not**
    /// re-enter this handle (or a clone, or a snapshot of it) from
    /// inside `f`. `std::sync::RwLock` may block a second read
    /// acquisition while a writer is queued, so re-entry can deadlock
    /// against a concurrent `add_version`.
    pub fn with_store<R>(&self, f: impl FnOnce(&dyn VersionStore) -> R) -> R {
        f(self.shared.read().as_ref())
    }
}

impl StoreReader for ArchiveHandle {
    fn spec(&self) -> &KeySpec {
        &self.shared.spec
    }

    fn latest(&self) -> u32 {
        self.shared.read().latest()
    }

    fn has_version(&self, v: u32) -> bool {
        self.shared.read().has_version(v)
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        self.shared.read().retrieve(v)
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        self.shared.read().retrieve_into(v, out)
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        self.shared.read().history(steps)
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        self.shared.read().stats()
    }

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        self.shared.read().as_of(steps, v)
    }

    fn history_values(&self, steps: &[KeyQuery]) -> Result<Option<ElementHistory>, StoreError> {
        self.shared.read().history_values(steps)
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        self.shared.read().range(prefix, versions)
    }

    fn diff(&self, steps: &[KeyQuery], v1: u32, v2: u32) -> Result<VersionDelta, StoreError> {
        self.shared.read().diff(steps, v1, v2)
    }
}

/// The handle is itself a [`VersionStore`], so it can slot into any code
/// written against the trait (conformance suites, generic drivers). The
/// `&mut` receivers are a formality — writes really synchronize on the
/// internal lock.
impl VersionStore for ArchiveHandle {
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
        ArchiveHandle::add_version(self, doc)
    }

    fn add_empty_version(&mut self) -> Result<u32, StoreError> {
        ArchiveHandle::add_empty_version(self)
    }

    fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        // NOT the trait's default loop: the whole batch must land under
        // one lock acquisition so readers never interleave with it
        ArchiveHandle::add_versions(self, docs)
    }

    fn checkpoint_state(&self) -> Result<Option<Vec<u8>>, StoreError> {
        self.shared.read().checkpoint_state()
    }

    fn restore_checkpoint(&mut self, state: &[u8]) -> Result<bool, StoreError> {
        self.shared.write().restore_checkpoint(state)
    }
}

/// A read-only view of a shared archive pinned at one version.
///
/// All [`StoreReader`] queries are clamped to the pinned version `P`:
/// `latest()` answers `P`, versions beyond `P` do not exist, histories
/// and range lifetimes are restricted to `1..=P`, and an element first
/// archived after `P` was "never archived". Because merged versions are
/// immutable, every query answer equals what a serial replay of versions
/// `1..=P` would produce — no matter how many merges commit after the
/// snapshot was taken. The one exception is [`StoreReader::stats`]: its
/// `versions` count is pinned, but the node/byte counts describe the
/// *live* physical storage (which only grows, so they upper-bound the
/// pinned version's).
///
/// Snapshots are cheap (`Arc` + a version number), `Clone`, and
/// `Send + Sync`: hand one to each request handler thread.
#[derive(Clone)]
pub struct Snapshot {
    shared: Arc<Shared>,
    pinned: u32,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("pinned", &self.pinned)
            .finish()
    }
}

impl Snapshot {
    /// The version this snapshot is pinned at (0 for a snapshot of an
    /// empty archive).
    pub fn pinned(&self) -> u32 {
        self.pinned
    }

    /// Clamps a history answer to the snapshot window. An element whose
    /// clamped existence is empty was not yet archived as of the pinned
    /// version — it must read as "never archived" (`None`). The synthetic
    /// root (empty path) is the one exception: it always exists, its
    /// existence set is just empty while the archive is.
    fn clamp_history(&self, steps: &[KeyQuery], t: TimeSet) -> Option<TimeSet> {
        let clamped = t.clamp_range(1, self.pinned);
        (steps.is_empty() || !clamped.is_empty()).then_some(clamped)
    }
}

impl StoreReader for Snapshot {
    fn spec(&self) -> &KeySpec {
        &self.shared.spec
    }

    fn latest(&self) -> u32 {
        self.pinned
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        if v == 0 || v > self.pinned {
            return Ok(None);
        }
        self.shared.read().retrieve(v)
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        if v == 0 || v > self.pinned {
            return Ok(false);
        }
        self.shared.read().retrieve_into(v, out)
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        match self.shared.read().history(steps)? {
            None => Ok(None),
            Some(t) => Ok(self.clamp_history(steps, t)),
        }
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        // node and byte counts describe the *live* physical storage (the
        // archive only grows, so they are an upper bound for the pinned
        // version); the version count is the snapshot's
        let mut s = self.shared.read().stats()?;
        s.versions = self.pinned;
        Ok(s)
    }

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        if v == 0 || v > self.pinned {
            return Ok(None);
        }
        self.shared.read().as_of(steps, v)
    }

    // `history_values` takes the trait default: it loops over the
    // *clamped* existence set from `history` above and materializes one
    // subtree per in-window version via the clamped `as_of` — O(pinned
    // history), never the live element's full (and growing) history.

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        let lo = (*versions.start()).max(1);
        let hi = (*versions.end()).min(self.pinned);
        if lo > hi {
            return Ok(Vec::new());
        }
        self.shared.read().range(prefix, lo..=hi)
    }

    // `diff` takes the trait default, which composes from the clamped
    // `as_of` above: versions beyond the pin read as absent.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ArchiveBuilder;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    /// Version `i` holds records 1..=i, so earlier records live on.
    fn doc(i: u32) -> Document {
        let mut s = String::from("<db>");
        for r in 1..=i {
            s.push_str(&format!("<rec><id>{r}</id><val>v{i}</val></rec>"));
        }
        s.push_str("</db>");
        parse(&s).unwrap()
    }

    #[test]
    fn handle_and_snapshot_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<ArchiveHandle>();
        assert_send_sync::<Snapshot>();
    }

    #[test]
    fn handle_is_clonable_and_live() {
        let handle = ArchiveBuilder::new(spec()).build_shared();
        let other = handle.clone();
        handle.add_version(&doc(1)).unwrap();
        assert_eq!(other.latest(), 1);
        assert!(other.retrieve(1).unwrap().is_some());
    }

    #[test]
    fn snapshot_pins_every_query() {
        let handle = ArchiveBuilder::new(spec()).build_shared();
        handle.add_version(&doc(1)).unwrap();
        handle.add_version(&doc(2)).unwrap();
        let snap = handle.snapshot();
        assert_eq!(snap.pinned(), 2);
        handle.add_version(&doc(3)).unwrap();
        handle.add_empty_version().unwrap();

        // version axis
        assert_eq!(snap.latest(), 2);
        assert!(snap.has_version(2));
        assert!(!snap.has_version(3));
        assert!(snap.retrieve(3).unwrap().is_none());
        let mut bytes = Vec::new();
        assert!(!snap.retrieve_into(3, &mut bytes).unwrap());
        assert!(snap.retrieve(2).unwrap().is_some());

        // history clamps; elements born after the pin don't exist
        let q3 = [
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "3"),
        ];
        assert!(snap.history(&q3).unwrap().is_none());
        assert!(snap.as_of(&q3, 2).unwrap().is_none());
        let q1 = [
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        // rec 1 lives on in v3 of the live archive; the snapshot clamps
        assert_eq!(snap.history(&q1).unwrap().unwrap().to_string(), "1-2");
        assert_eq!(
            handle.history(&q1).unwrap().unwrap().to_string(),
            "1-3",
            "live handle sees the later merge"
        );

        // range windows clamp to the pin
        let hits = snap.range(&[KeyQuery::new("db")], 1..=9).unwrap();
        assert_eq!(hits.len(), 2, "{hits:?}");
        for h in &hits {
            assert!(h.time.versions().all(|v| v <= 2), "{hits:?}");
        }

        // history_values drops post-pin contents
        let hv = snap.history_values(&q1).unwrap().unwrap();
        assert_eq!(hv.existence.to_string(), "1-2");
        assert!(hv.values.iter().all(|(t, _)| t.versions().all(|v| v <= 2)));

        // diff composes from the clamped as_of
        let d = snap.diff(&q1, 1, 3).unwrap();
        assert!(!d.is_same(), "v3 reads as absent from the snapshot");

        // stats report the pinned version count
        assert_eq!(snap.stats().unwrap().versions, 2);
    }

    #[test]
    fn snapshot_of_empty_archive() {
        let handle = ArchiveBuilder::new(spec()).build_shared();
        let snap = handle.snapshot();
        handle.add_version(&doc(1)).unwrap();
        assert_eq!(snap.pinned(), 0);
        assert_eq!(snap.latest(), 0);
        assert!(!snap.has_version(1));
        assert!(snap.retrieve(1).unwrap().is_none());
        // the synthetic root exists with an empty existence set
        assert_eq!(snap.history(&[]).unwrap().unwrap().to_string(), "");
        assert!(snap.range(&[], 1..=9).unwrap().is_empty());
    }

    #[test]
    fn handle_serves_trait_driven_code() {
        // the handle is a VersionStore itself
        let mut store: Box<dyn VersionStore> = Box::new(ArchiveBuilder::new(spec()).build_shared());
        store.add_version(&doc(1)).unwrap();
        assert_eq!(store.latest(), 1);
        assert!(store.retrieve(1).unwrap().is_some());
    }

    #[test]
    fn snapshots_and_handles_cross_threads() {
        let handle = ArchiveBuilder::new(spec()).with_index().build_shared();
        handle.add_version(&doc(1)).unwrap();
        let snap = handle.snapshot();
        let writer = handle.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 2..=5 {
                    writer.add_version(&doc(i)).unwrap();
                }
            });
            for _ in 0..4 {
                let snap = snap.clone();
                let handle = handle.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(snap.latest(), 1);
                        assert!(snap.retrieve(1).unwrap().is_some());
                        let live = handle.snapshot();
                        let p = live.pinned();
                        assert!((1..=5).contains(&p));
                        assert!(live.retrieve(p).unwrap().is_some());
                    }
                });
            }
        });
        assert_eq!(handle.latest(), 5);
    }
}
