//! The concurrent service layer: one writer, many readers, over any
//! backend — with wait-free snapshot publication.
//!
//! The paper's archive is an *append-only* structure: merging version `i`
//! decides only whether `i` belongs to each element's timestamp, never the
//! membership of earlier versions. So the answer to any query *about
//! versions ≤ P* is fixed the moment version `P` commits — exactly the
//! property an online archive service needs to serve heavy read traffic
//! while curation continues. [`ArchiveHandle`] packages that property:
//!
//! * the handle is cheaply clonable (an [`Arc`]) and `Send + Sync`;
//! * writes (`add_version`) are single-writer, serialized on a writer
//!   mutex that **readers never touch**;
//! * reads are *wait-free*: the handle keeps **two instances** of the
//!   archive — the store it was built over and a [`VersionStore::fork`]
//!   replica — and an atomic word says which one readers enter. The
//!   writer merges into the passive instance, flips the word (the
//!   *publication point*: one atomic store), then catches the other
//!   instance up. A reader is never blocked by a queued or running
//!   writer, and a writer panic can never poison a lock readers depend
//!   on — readers just keep serving the published instance;
//! * [`ArchiveHandle::snapshot`] returns a [`Snapshot`]: a [`StoreReader`]
//!   pinned at the published version — taking one is a single atomic
//!   load. Every query through the snapshot clamps to the pinned version,
//!   so a reader observes one consistent archive — repeatable reads
//!   across many queries — while merges keep landing behind it.
//!
//! ```
//! use xarch::keys::KeySpec;
//! use xarch::xml::parse;
//! use xarch::{ArchiveBuilder, StoreReader};
//!
//! let spec = KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))")?;
//! let handle = ArchiveBuilder::new(spec).build_shared();
//! handle.add_version(&parse("<db><rec><id>1</id></rec></db>")?)?;
//!
//! let snap = handle.snapshot(); // pinned at version 1
//! handle.add_version(&parse("<db><rec><id>2</id></rec></db>")?)?;
//!
//! // the snapshot still sees the world as of version 1 …
//! assert_eq!(snap.latest(), 1);
//! assert!(!snap.has_version(2));
//! // … while the handle serves the live archive
//! assert_eq!(handle.latest(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # The left-right publication protocol
//!
//! Slot 0 holds the *authoritative* store (the one the handle was built
//! over — if it journals and fsyncs, that happens here, once). Slot 1
//! holds the replica. `active` names the slot readers enter; `published`
//! is the pin new snapshots take. One mutation runs:
//!
//! 1. divert `active` to the replica (identical content — readers see no
//!    change);
//! 2. write-lock the authoritative slot (this waits only for reader
//!    stragglers that entered before the diversion, never the other way
//!    round) and apply the mutation — durability included;
//! 3. drop the guard, then **publish**: `active` back to the
//!    authoritative slot, `published` to the new version. Two release
//!    stores; no lock is held across them;
//! 4. write-lock the replica slot and apply the same mutation, so the
//!    next write can divert to it again.
//!
//! Readers `try_read` the active slot in a loop: the writer only ever
//! write-locks the slot it has already diverted readers away from, so a
//! failed `try_read` means the active word just moved — the reload
//! succeeds. No reader ever parks on a lock.
//!
//! A mutation that *fails cleanly* (key rejection, oversized payload)
//! leaves both instances untouched — backends validate before mutating —
//! and the error is returned with nothing published. A mutation that
//! *panics*, or succeeds on one instance and fails on the other, leaves
//! the two instances potentially divergent: the handle **quarantines** —
//! every later write returns [`StoreError::Backend`], while reads keep
//! serving the (consistent, published) active instance indefinitely.

use std::io::Write;
use std::ops::RangeInclusive;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockWriteGuard, TryLockError};

use xarch_core::{
    Archive, ElementHistory, KeyQuery, RangeEntry, StoreError, StoreReader, StoreStats, TimeSet,
    VersionDelta, VersionStore,
};
use xarch_keys::KeySpec;
use xarch_obs::{Counter, Histogram, Obs};
use xarch_xml::Document;

/// Slot index of the authoritative instance (the store the handle was
/// built over; journaling/fsync happen here, once).
const AUTH: usize = 0;
/// Slot index of the forked replica.
const REPLICA: usize = 1;

/// The canonical `handle.*` metric handles: how often readers pin
/// snapshots, how long the writer section runs, and how many publications
/// have flipped the readers' view.
#[derive(Clone, Debug, Default)]
struct HandleMetrics {
    /// `handle.snapshot_pins` — snapshots taken (repeatable-read pins).
    snapshot_pins: Counter,
    /// `handle.write_lock_hold` — writer-section duration per mutation
    /// (µs): divert, authoritative apply, publish, replica catch-up.
    write_lock_hold: Histogram,
    /// `handle.publications` — snapshot publications (one atomic flip per
    /// committed mutation).
    publications: Counter,
}

impl HandleMetrics {
    fn registered(obs: &Obs) -> Self {
        let r = obs.registry();
        Self {
            snapshot_pins: r.counter(
                "handle.snapshot_pins",
                "snapshots",
                "repeatable-read snapshots pinned off the shared handle",
            ),
            write_lock_hold: r.histogram(
                "handle.write_lock_hold",
                "micros",
                "writer-section duration per mutation through the shared handle",
            ),
            publications: r.counter(
                "handle.publications",
                "publications",
                "snapshot publications (atomic view flips) through the shared handle",
            ),
        }
    }
}

/// The state one handle and all its snapshots share. The spec is cached
/// outside the slots: it is fixed at construction, and
/// `StoreReader::spec` returns a borrow that must not depend on holding a
/// guard.
struct Shared {
    /// `slots[AUTH]` is the authoritative store, `slots[REPLICA]` its
    /// fork. The `RwLock`s provide *memory* exclusion between one writer
    /// and reader stragglers on a single slot — never reader-vs-writer
    /// scheduling: readers only `try_read`, and the writer only
    /// write-locks the slot readers have been diverted away from.
    slots: [RwLock<Box<dyn VersionStore>>; 2],
    /// Which slot readers enter right now.
    active: AtomicUsize,
    /// The version pin new snapshots take — always queryable on the
    /// active slot.
    published: AtomicU32,
    /// Serializes writers. Readers never touch it.
    writer: Mutex<()>,
    /// Set when the two instances may have diverged (a writer panic, or a
    /// mutation that succeeded on one instance and failed on the other).
    /// Reads keep serving; writes are refused.
    quarantined: AtomicBool,
    /// Why the handle was quarantined (first fault wins).
    quarantine_why: OnceLock<String>,
    spec: KeySpec,
    metrics: HandleMetrics,
}

impl Shared {
    /// Runs `f` over the active instance — wait-free for readers. A
    /// `try_read` on the active slot can fail only when the writer just
    /// diverted `active` elsewhere and write-locked this slot; reloading
    /// `active` then names the other slot, whose `try_read` succeeds.
    /// Nested calls (query-inside-`with_store`) are safe for the same
    /// reason: the writer never write-locks the slot `active` names.
    fn enter<R>(&self, f: impl FnOnce(&dyn VersionStore) -> R) -> R {
        loop {
            let i = self.active.load(Ordering::Acquire);
            match self.slots[i].try_read() {
                Ok(g) => return f(g.as_ref()),
                // Unreachable: a slot poisons only if a thread panics
                // while holding its *write* guard, and the writer catches
                // mutation panics before the guard drops (then
                // quarantines). Recover rather than compound the fault.
                Err(TryLockError::Poisoned(p)) => return f(p.into_inner().as_ref()),
                Err(TryLockError::WouldBlock) => std::thread::yield_now(),
            }
        }
    }

    /// The version every read path answers from — a single atomic load.
    fn published(&self) -> u32 {
        self.published.load(Ordering::Acquire)
    }

    /// The publication point: two release stores — readers back to the
    /// authoritative slot, then the new pin. No lock is held across this
    /// call (the analyzer's `lock-discipline` rule enforces that).
    fn publish(&self, pin: u32) {
        self.active.store(AUTH, Ordering::Release);
        self.published.store(pin, Ordering::Release);
        self.metrics.publications.inc();
    }

    fn quarantine(&self, why: String) {
        let _ = self.quarantine_why.set(why);
        self.quarantined.store(true, Ordering::Release);
    }

    fn check_writable(&self) -> Result<(), StoreError> {
        if self.quarantined.load(Ordering::Acquire) {
            return Err(StoreError::Backend(format!(
                "archive handle is quarantined ({}); reads keep serving the published \
                 version, writes are refused",
                self.quarantine_why
                    .get()
                    .map(String::as_str)
                    .unwrap_or("writer fault")
            )));
        }
        Ok(())
    }

    /// One serialized mutation through the left-right protocol. `op` is
    /// applied to the authoritative instance first (durability included),
    /// published, then replayed onto the replica. See the module docs for
    /// the failure matrix.
    fn mutate<T>(
        &self,
        op: impl Fn(&mut Box<dyn VersionStore>) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let _writer = match self.writer.lock() {
            // the mutex guards nothing by itself (each slot has its own
            // lock); a poisoned writer mutex just means a past writer
            // panicked — which already quarantined the handle below
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        self.check_writable()?;
        // declared after the mutex: drops (and records) when the whole
        // writer section — divert, apply, publish, catch-up — finishes
        let _hold = self.metrics.write_lock_hold.start_timer();

        // 1. divert readers to the replica (identical content pre-merge)
        self.active.store(REPLICA, Ordering::Release);

        // 2. apply to the authoritative instance
        let (value, pin) = {
            let mut g = write_guard(&self.slots[AUTH]);
            match catch_unwind(AssertUnwindSafe(|| op(&mut g))) {
                Err(panic) => {
                    // half-applied merge: the authoritative instance may
                    // be inconsistent. Readers stay on the untouched
                    // replica; nothing is published; writes stop here.
                    let why = format!("writer panicked mid-merge: {}", panic_msg(&panic));
                    drop(g);
                    self.quarantine(why.clone());
                    return Err(StoreError::Backend(why));
                }
                Ok(Err(e)) => {
                    // clean rejection: backends validate before mutating,
                    // so both instances are still identical — put readers
                    // back on the authoritative slot and surface the error
                    drop(g);
                    self.active.store(AUTH, Ordering::Release);
                    return Err(e);
                }
                Ok(Ok(v)) => {
                    let pin = g.latest();
                    (v, pin)
                }
            }
            // guard drops here — before publication
        };

        // 3. publish: readers flip to the authoritative slot (which has
        //    the new version, durably committed) and the pin advances
        self.publish(pin);

        // 4. catch the replica up so the next write can divert to it
        let caught_up = {
            let mut g = write_guard(&self.slots[REPLICA]);
            match catch_unwind(AssertUnwindSafe(|| op(&mut g))) {
                Ok(Ok(_)) => Ok(()),
                Ok(Err(e)) => Err(format!(
                    "instances diverged: mutation committed on the archive but was \
                     rejected by the replica: {e}"
                )),
                Err(panic) => Err(format!(
                    "instances diverged: mutation committed on the archive but \
                     panicked on the replica: {}",
                    panic_msg(&panic)
                )),
            }
        };
        if let Err(why) = caught_up {
            // the committed, published version stays readable (the active
            // slot is consistent); only future writes are refused
            self.quarantine(why);
        }
        Ok(value)
    }
}

/// Write-locks one slot. Poison is unreachable (mutation panics are
/// caught before the guard drops), so recover instead of panicking —
/// readers of the published instance must survive any writer fault.
fn write_guard(
    lock: &RwLock<Box<dyn VersionStore>>,
) -> RwLockWriteGuard<'_, Box<dyn VersionStore>> {
    match lock.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Best-effort panic payload message for quarantine diagnostics.
fn panic_msg(p: &(dyn std::any::Any + Send)) -> &str {
    p.downcast_ref::<&'static str>()
        .copied()
        .or_else(|| p.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// A cheaply-clonable, thread-safe handle to a shared archive:
/// single-writer / multi-reader over any [`VersionStore`] backend, with
/// wait-free reads (see the module docs for the publication protocol).
///
/// Reads through the handle (it implements [`StoreReader`]) are *live* —
/// each query sees whatever has been published when it enters the active
/// instance. For a consistent view across several queries, take a
/// [`ArchiveHandle::snapshot`].
///
/// Constructed by [`crate::ArchiveBuilder::build_shared`] /
/// [`crate::ArchiveBuilder::try_build_shared`], or directly from any boxed
/// store with [`ArchiveHandle::new`].
#[derive(Clone)]
pub struct ArchiveHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ArchiveHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchiveHandle")
            .field("latest", &self.latest())
            .finish()
    }
}

impl ArchiveHandle {
    /// Wraps `store` for shared use with detached (unregistered) handle
    /// metrics — recording is still lock-free, just invisible.
    ///
    /// The handle immediately takes a [`VersionStore::fork`] replica of
    /// `store` (every in-tree backend forks cheaply and byte-identically;
    /// the trait default replays into an in-memory archive). In the
    /// degenerate case that the fork itself fails, the handle starts
    /// quarantined: reads serve `store` wait-free, writes are refused.
    pub fn new(store: Box<dyn VersionStore>) -> Self {
        Self::with_metrics(store, HandleMetrics::default())
    }

    /// Wraps `store` for shared use, registering the `handle.*` metrics
    /// (snapshot pins, writer-section duration, publications) in `obs`'s
    /// registry.
    pub fn observed(store: Box<dyn VersionStore>, obs: &Obs) -> Self {
        Self::with_metrics(store, HandleMetrics::registered(obs))
    }

    fn with_metrics(store: Box<dyn VersionStore>, metrics: HandleMetrics) -> Self {
        let spec = store.spec().clone();
        let published = store.latest();
        let (replica, fork_failure) = match store.fork() {
            Ok(r) => (r, None),
            // no replica, no publication protocol: serve reads off the
            // (sole) authoritative slot forever, refuse writes
            Err(e) => (
                Box::new(Archive::new(spec.clone())) as Box<dyn VersionStore>,
                Some(format!("replica construction failed: {e}")),
            ),
        };
        let shared = Shared {
            slots: [RwLock::new(store), RwLock::new(replica)],
            active: AtomicUsize::new(AUTH),
            published: AtomicU32::new(published),
            writer: Mutex::new(()),
            quarantined: AtomicBool::new(false),
            quarantine_why: OnceLock::new(),
            spec,
            metrics,
        };
        if let Some(why) = fork_failure {
            shared.quarantine(why);
        }
        Self {
            shared: Arc::new(shared),
        }
    }

    /// Merges `doc` as the next version. Single-writer: concurrent writes
    /// serialize on the writer mutex. Readers are never blocked — they
    /// keep answering from the currently-published instance until the
    /// merge publishes, and snapshots taken earlier are unaffected (their
    /// pinned answers never change).
    pub fn add_version(&self, doc: &Document) -> Result<u32, StoreError> {
        self.shared.mutate(|s| s.add_version(doc))
    }

    /// Archives an *empty* database as the next version.
    pub fn add_empty_version(&self) -> Result<u32, StoreError> {
        self.shared.mutate(|s| s.add_empty_version())
    }

    /// Bulk ingest as **one** writer section with **one** publication:
    /// the wrapped backend's batch fast path (the chunked backend merges
    /// its partitions under independent per-chunk stripes on worker
    /// threads) runs against the passive instance while readers keep
    /// answering from the published one, and the batch becomes visible
    /// with a single atomic flip. A snapshot pins either the pre-batch or
    /// the post-batch version, never a prefix.
    pub fn add_versions(&self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        self.shared.mutate(|s| s.add_versions(docs))
    }

    /// A read-only view pinned at the currently-published version. Taking
    /// a snapshot is **wait-free** — one atomic load of the published
    /// pin, no lock, no data copied; the snapshot clamps every query to
    /// the pinned version instead. Pinning proceeds at full speed while a
    /// merge is in flight.
    pub fn snapshot(&self) -> Snapshot {
        let pinned = self.shared.published();
        self.shared.metrics.snapshot_pins.inc();
        Snapshot {
            shared: Arc::clone(&self.shared),
            pinned,
        }
    }

    /// Runs `f` with the active instance — an escape hatch for backend
    /// inspection (I/O stats, recovery stats) that the trait does not
    /// carry. Reads only; the closure gets `&dyn VersionStore`.
    ///
    /// Re-entry is safe: calling any read method of this handle (or a
    /// clone, or a snapshot of it) from inside `f` cannot deadlock, even
    /// with a writer running concurrently — readers never park on a lock
    /// (the old global-`RwLock` handle documented exactly that hazard;
    /// the publication protocol removed it, and `tests/concurrency.rs`
    /// pins the fix). The view is *live*: a nested read after a
    /// concurrent publication may see a newer version than `f`'s own
    /// argument.
    pub fn with_store<R>(&self, f: impl FnOnce(&dyn VersionStore) -> R) -> R {
        self.shared.enter(f)
    }
}

impl StoreReader for ArchiveHandle {
    fn spec(&self) -> &KeySpec {
        &self.shared.spec
    }

    fn latest(&self) -> u32 {
        // wait-free: the published pin IS the active instance's version
        self.shared.published()
    }

    fn has_version(&self, v: u32) -> bool {
        v >= 1 && v <= self.shared.published()
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        self.shared.enter(|s| s.retrieve(v))
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        self.shared.enter(|s| s.retrieve_into(v, out))
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        self.shared.enter(|s| s.history(steps))
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        self.shared.enter(|s| s.stats())
    }

    fn stats_at(&self, v: u32) -> Result<StoreStats, StoreError> {
        self.shared.enter(|s| s.stats_at(v))
    }

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        self.shared.enter(|s| s.as_of(steps, v))
    }

    fn history_values(&self, steps: &[KeyQuery]) -> Result<Option<ElementHistory>, StoreError> {
        self.shared.enter(|s| s.history_values(steps))
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        self.shared.enter(|s| s.range(prefix, versions))
    }

    fn diff(&self, steps: &[KeyQuery], v1: u32, v2: u32) -> Result<VersionDelta, StoreError> {
        self.shared.enter(|s| s.diff(steps, v1, v2))
    }
}

/// The handle is itself a [`VersionStore`], so it can slot into any code
/// written against the trait (conformance suites, generic drivers). The
/// `&mut` receivers are a formality — writes really synchronize on the
/// internal writer mutex.
impl VersionStore for ArchiveHandle {
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
        ArchiveHandle::add_version(self, doc)
    }

    fn add_empty_version(&mut self) -> Result<u32, StoreError> {
        ArchiveHandle::add_empty_version(self)
    }

    fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        // NOT the trait's default loop: the whole batch must land as one
        // writer section and one publication so readers never interleave
        ArchiveHandle::add_versions(self, docs)
    }

    fn checkpoint_state(&self) -> Result<Option<Vec<u8>>, StoreError> {
        self.shared.enter(|s| s.checkpoint_state())
    }

    fn restore_checkpoint(&mut self, state: &[u8]) -> Result<bool, StoreError> {
        self.shared.mutate(|s| s.restore_checkpoint(state))
    }

    fn fork(&self) -> Result<Box<dyn VersionStore>, StoreError> {
        self.shared.enter(|s| s.fork())
    }
}

/// A read-only view of a shared archive pinned at one version.
///
/// All [`StoreReader`] queries are clamped to the pinned version `P`:
/// `latest()` answers `P`, versions beyond `P` do not exist, histories
/// and range lifetimes are restricted to `1..=P`, and an element first
/// archived after `P` was "never archived". Because merged versions are
/// immutable, every query answer equals what a serial replay of versions
/// `1..=P` would produce — no matter how many merges commit after the
/// snapshot was taken. That includes [`StoreReader::stats`]: node counts
/// and the serialized size are exact *at the pin*
/// ([`StoreReader::stats_at`]), not descriptions of the live storage.
///
/// Snapshots are cheap (`Arc` + a version number), `Clone`, and
/// `Send + Sync`: hand one to each request handler thread. A snapshot
/// holds no lock and references no particular instance — each query
/// enters whichever instance is published at that moment (any published
/// instance answers identically for versions ≤ `P`), so a long-lived
/// snapshot never stalls the writer.
#[derive(Clone)]
pub struct Snapshot {
    shared: Arc<Shared>,
    pinned: u32,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("pinned", &self.pinned)
            .finish()
    }
}

impl Snapshot {
    /// The version this snapshot is pinned at (0 for a snapshot of an
    /// empty archive).
    pub fn pinned(&self) -> u32 {
        self.pinned
    }

    /// Clamps a history answer to the snapshot window. An element whose
    /// clamped existence is empty was not yet archived as of the pinned
    /// version — it must read as "never archived" (`None`). The synthetic
    /// root (empty path) is the one exception: it always exists, its
    /// existence set is just empty while the archive is.
    fn clamp_history(&self, steps: &[KeyQuery], t: TimeSet) -> Option<TimeSet> {
        let clamped = t.clamp_range(1, self.pinned);
        (steps.is_empty() || !clamped.is_empty()).then_some(clamped)
    }
}

impl StoreReader for Snapshot {
    fn spec(&self) -> &KeySpec {
        &self.shared.spec
    }

    fn latest(&self) -> u32 {
        self.pinned
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        if v == 0 || v > self.pinned {
            return Ok(None);
        }
        self.shared.enter(|s| s.retrieve(v))
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        if v == 0 || v > self.pinned {
            return Ok(false);
        }
        self.shared.enter(|s| s.retrieve_into(v, out))
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        match self.shared.enter(|s| s.history(steps))? {
            None => Ok(None),
            Some(t) => Ok(self.clamp_history(steps, t)),
        }
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        // exact at the pin: node counts include only nodes that existed
        // in some version ≤ pinned, and the size is the canonical clamped
        // serialization — a pure function of the pinned content, stable
        // no matter how many merges land after the pin
        self.shared.enter(|s| s.stats_at(self.pinned))
    }

    fn stats_at(&self, v: u32) -> Result<StoreStats, StoreError> {
        self.shared.enter(|s| s.stats_at(v.min(self.pinned)))
    }

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        if v == 0 || v > self.pinned {
            return Ok(None);
        }
        self.shared.enter(|s| s.as_of(steps, v))
    }

    // `history_values` takes the trait default: it loops over the
    // *clamped* existence set from `history` above and materializes one
    // subtree per in-window version via the clamped `as_of` — O(pinned
    // history), never the live element's full (and growing) history.

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        let lo = (*versions.start()).max(1);
        let hi = (*versions.end()).min(self.pinned);
        if lo > hi {
            return Ok(Vec::new());
        }
        self.shared.enter(|s| s.range(prefix, lo..=hi))
    }

    // `diff` takes the trait default, which composes from the clamped
    // `as_of` above: versions beyond the pin read as absent.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ArchiveBuilder;
    use std::sync::atomic::AtomicBool;
    use std::sync::Barrier;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    /// Version `i` holds records 1..=i, so earlier records live on.
    fn doc(i: u32) -> Document {
        let mut s = String::from("<db>");
        for r in 1..=i {
            s.push_str(&format!("<rec><id>{r}</id><val>v{i}</val></rec>"));
        }
        s.push_str("</db>");
        parse(&s).unwrap()
    }

    #[test]
    fn handle_and_snapshot_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<ArchiveHandle>();
        assert_send_sync::<Snapshot>();
    }

    #[test]
    fn handle_is_clonable_and_live() {
        let handle = ArchiveBuilder::new(spec()).build_shared();
        let other = handle.clone();
        handle.add_version(&doc(1)).unwrap();
        assert_eq!(other.latest(), 1);
        assert!(other.retrieve(1).unwrap().is_some());
    }

    #[test]
    fn snapshot_pins_every_query() {
        let handle = ArchiveBuilder::new(spec()).build_shared();
        handle.add_version(&doc(1)).unwrap();
        handle.add_version(&doc(2)).unwrap();
        let snap = handle.snapshot();
        assert_eq!(snap.pinned(), 2);
        handle.add_version(&doc(3)).unwrap();
        handle.add_empty_version().unwrap();

        // version axis
        assert_eq!(snap.latest(), 2);
        assert!(snap.has_version(2));
        assert!(!snap.has_version(3));
        assert!(snap.retrieve(3).unwrap().is_none());
        let mut bytes = Vec::new();
        assert!(!snap.retrieve_into(3, &mut bytes).unwrap());
        assert!(snap.retrieve(2).unwrap().is_some());

        // history clamps; elements born after the pin don't exist
        let q3 = [
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "3"),
        ];
        assert!(snap.history(&q3).unwrap().is_none());
        assert!(snap.as_of(&q3, 2).unwrap().is_none());
        let q1 = [
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        // rec 1 lives on in v3 of the live archive; the snapshot clamps
        assert_eq!(snap.history(&q1).unwrap().unwrap().to_string(), "1-2");
        assert_eq!(
            handle.history(&q1).unwrap().unwrap().to_string(),
            "1-3",
            "live handle sees the later merge"
        );

        // range windows clamp to the pin
        let hits = snap.range(&[KeyQuery::new("db")], 1..=9).unwrap();
        assert_eq!(hits.len(), 2, "{hits:?}");
        for h in &hits {
            assert!(h.time.versions().all(|v| v <= 2), "{hits:?}");
        }

        // history_values drops post-pin contents
        let hv = snap.history_values(&q1).unwrap().unwrap();
        assert_eq!(hv.existence.to_string(), "1-2");
        assert!(hv.values.iter().all(|(t, _)| t.versions().all(|v| v <= 2)));

        // diff composes from the clamped as_of
        let d = snap.diff(&q1, 1, 3).unwrap();
        assert!(!d.is_same(), "v3 reads as absent from the snapshot");

        // stats report the pinned version count
        assert_eq!(snap.stats().unwrap().versions, 2);
    }

    #[test]
    fn snapshot_stats_are_exact_at_the_pin_and_repeatable() {
        let handle = ArchiveBuilder::new(spec()).build_shared();
        handle.add_version(&doc(1)).unwrap();
        handle.add_version(&doc(2)).unwrap();
        let snap = handle.snapshot();
        let first = snap.stats().unwrap();

        // exact: node counts equal a serial replay of versions 1..=2
        let mut replay = Archive::new(spec());
        replay.add_version(&doc(1)).unwrap();
        replay.add_version(&doc(2)).unwrap();
        let expected = replay.stats();
        assert_eq!(first.versions, 2);
        assert_eq!(first.elements, expected.elements);
        assert_eq!(first.texts, expected.texts);
        assert_eq!(first.stamps, expected.stamps);

        // repeatable: later merges — including an empty version, which
        // terminates every element and promotes inherited timestamps to
        // explicit ones in the live tree — change nothing at the pin
        handle.add_version(&doc(3)).unwrap();
        handle.add_empty_version().unwrap();
        let second = snap.stats().unwrap();
        assert_eq!(first, second, "pinned stats moved under later merges");
        let live = handle.stats().unwrap();
        assert_eq!(live.versions, 4);
        assert!(
            live.elements >= first.elements && live.size_bytes >= first.size_bytes,
            "the live archive only grows"
        );
    }

    #[test]
    fn snapshot_of_empty_archive() {
        let handle = ArchiveBuilder::new(spec()).build_shared();
        let snap = handle.snapshot();
        handle.add_version(&doc(1)).unwrap();
        assert_eq!(snap.pinned(), 0);
        assert_eq!(snap.latest(), 0);
        assert!(!snap.has_version(1));
        assert!(snap.retrieve(1).unwrap().is_none());
        // the synthetic root exists with an empty existence set
        assert_eq!(snap.history(&[]).unwrap().unwrap().to_string(), "");
        assert!(snap.range(&[], 1..=9).unwrap().is_empty());
    }

    #[test]
    fn handle_serves_trait_driven_code() {
        // the handle is a VersionStore itself
        let mut store: Box<dyn VersionStore> = Box::new(ArchiveBuilder::new(spec()).build_shared());
        store.add_version(&doc(1)).unwrap();
        assert_eq!(store.latest(), 1);
        assert!(store.retrieve(1).unwrap().is_some());
    }

    #[test]
    fn snapshots_and_handles_cross_threads() {
        let handle = ArchiveBuilder::new(spec()).with_index().build_shared();
        handle.add_version(&doc(1)).unwrap();
        let snap = handle.snapshot();
        let writer = handle.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 2..=5 {
                    writer.add_version(&doc(i)).unwrap();
                }
            });
            for _ in 0..4 {
                let snap = snap.clone();
                let handle = handle.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(snap.latest(), 1);
                        assert!(snap.retrieve(1).unwrap().is_some());
                        let live = handle.snapshot();
                        let p = live.pinned();
                        assert!((1..=5).contains(&p));
                        assert!(live.retrieve(p).unwrap().is_some());
                    }
                });
            }
        });
        assert_eq!(handle.latest(), 5);
    }

    /// A store whose merges rendezvous with the test on barriers while
    /// `stall` is set, holding the writer section open deterministically.
    struct GatedStore {
        inner: Archive,
        stall: Arc<AtomicBool>,
        entered: Arc<Barrier>,
        released: Arc<Barrier>,
    }

    impl StoreReader for GatedStore {
        fn spec(&self) -> &KeySpec {
            Archive::spec(&self.inner)
        }
        fn latest(&self) -> u32 {
            Archive::latest(&self.inner)
        }
        fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
            StoreReader::retrieve(&self.inner, v)
        }
        fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
            StoreReader::retrieve_into(&self.inner, v, out)
        }
        fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
            StoreReader::history(&self.inner, steps)
        }
        fn stats(&self) -> Result<StoreStats, StoreError> {
            StoreReader::stats(&self.inner)
        }
    }

    impl VersionStore for GatedStore {
        fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
            if self.stall.load(Ordering::Acquire) {
                self.entered.wait();
                self.released.wait();
            }
            VersionStore::add_version(&mut self.inner, doc)
        }
        fn add_empty_version(&mut self) -> Result<u32, StoreError> {
            VersionStore::add_empty_version(&mut self.inner)
        }
    }

    /// Satellite regression: pinning snapshots (and every read) must be
    /// wait-free while a slow merge holds the write path. Deterministic —
    /// the merge is parked on a barrier, not a timer: with the old global
    /// RwLock this test would deadlock at `handle.snapshot()`.
    #[test]
    fn snapshots_pin_while_a_slow_merge_is_in_flight() {
        let stall = Arc::new(AtomicBool::new(false));
        let entered = Arc::new(Barrier::new(2));
        let released = Arc::new(Barrier::new(2));
        let handle = ArchiveHandle::new(Box::new(GatedStore {
            inner: Archive::new(spec()),
            stall: Arc::clone(&stall),
            entered: Arc::clone(&entered),
            released: Arc::clone(&released),
        }));
        handle.add_version(&doc(1)).unwrap();
        stall.store(true, Ordering::Release);

        std::thread::scope(|s| {
            let writer = handle.clone();
            s.spawn(move || {
                writer.add_version(&doc(2)).unwrap();
            });
            // the merge is now parked inside the authoritative apply,
            // write guard held …
            entered.wait();
            // … and every read path still answers instantly
            let snap = handle.snapshot();
            assert_eq!(snap.pinned(), 1);
            assert!(snap.retrieve(1).unwrap().is_some());
            assert_eq!(handle.latest(), 1);
            assert!(handle.retrieve(1).unwrap().is_some());
            // with_store re-entry mid-merge: the documented deadlock of
            // the old handle (read guard + queued writer + nested read)
            let (outer, nested, pin) = handle.with_store(|st| {
                let nested = handle.with_store(|st2| st2.latest());
                (st.latest(), nested, handle.snapshot().pinned())
            });
            assert_eq!((outer, nested, pin), (1, 1, 1));
            stall.store(false, Ordering::Release);
            released.wait();
        });
        assert_eq!(handle.latest(), 2);
        assert!(handle.retrieve(2).unwrap().is_some());
    }

    /// A store that panics mid-merge when the incoming document carries
    /// the poison marker.
    struct FaultyStore {
        inner: Archive,
    }

    impl StoreReader for FaultyStore {
        fn spec(&self) -> &KeySpec {
            Archive::spec(&self.inner)
        }
        fn latest(&self) -> u32 {
            Archive::latest(&self.inner)
        }
        fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
            StoreReader::retrieve(&self.inner, v)
        }
        fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
            StoreReader::retrieve_into(&self.inner, v, out)
        }
        fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
            StoreReader::history(&self.inner, steps)
        }
        fn stats(&self) -> Result<StoreStats, StoreError> {
            StoreReader::stats(&self.inner)
        }
    }

    impl VersionStore for FaultyStore {
        fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
            if xarch_xml::writer::to_compact_string(doc).contains("boom") {
                panic!("injected merge fault");
            }
            VersionStore::add_version(&mut self.inner, doc)
        }
        fn add_empty_version(&mut self) -> Result<u32, StoreError> {
            VersionStore::add_empty_version(&mut self.inner)
        }
    }

    /// Satellite regression: a writer panic must not cascade into the
    /// readers. With the old handle the panic poisoned the global RwLock
    /// and every later read panicked too; now readers keep serving the
    /// published version and the write side degrades to `Backend` errors.
    #[test]
    fn writer_panic_quarantines_writes_but_readers_keep_answering() {
        let handle = ArchiveHandle::new(Box::new(FaultyStore {
            inner: Archive::new(spec()),
        }));
        handle.add_version(&doc(1)).unwrap();
        let snap = handle.snapshot();

        let poison = parse("<db><rec><id>boom</id></rec></db>").unwrap();
        let err = handle.add_version(&poison).unwrap_err();
        assert!(
            matches!(err, StoreError::Backend(ref m) if m.contains("panicked")),
            "{err}"
        );

        // reads survive — from the handle, from old snapshots, from new
        assert_eq!(handle.latest(), 1);
        assert!(handle.retrieve(1).unwrap().is_some());
        assert_eq!(snap.pinned(), 1);
        assert!(snap.retrieve(1).unwrap().is_some());
        assert_eq!(handle.snapshot().pinned(), 1);

        // the write side stays down: quarantined, never panicking
        let err = handle.add_version(&doc(2)).unwrap_err();
        assert!(
            matches!(err, StoreError::Backend(ref m) if m.contains("quarantined")),
            "{err}"
        );
        assert!(handle.add_empty_version().is_err());
    }

    /// A clean rejection (no panic) must leave the handle fully live:
    /// both instances stay consistent and later writes succeed.
    #[test]
    fn rejected_merges_do_not_quarantine() {
        let handle = ArchiveBuilder::new(spec()).build_shared();
        handle.add_version(&doc(1)).unwrap();
        // an unkeyed root is rejected by validation before any mutation
        let bad = parse("<wrong><x>1</x></wrong>").unwrap();
        assert!(matches!(
            handle.add_version(&bad).unwrap_err(),
            StoreError::Merge(_)
        ));
        assert_eq!(handle.latest(), 1);
        handle.add_version(&doc(2)).unwrap();
        assert_eq!(handle.latest(), 2);
        assert!(handle.retrieve(2).unwrap().is_some());
    }
}
