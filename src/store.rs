//! The builder facade: configure an archive once, get back a
//! [`Box<dyn VersionStore>`] for whichever storage tier fits the workload.
//!
//! ```
//! use xarch::{ArchiveBuilder, Backend};
//! use xarch::core::Compaction;
//! use xarch::extmem::IoConfig;
//! use xarch::keys::KeySpec;
//!
//! let spec = KeySpec::parse("(/, (db, {}))")?;
//! let mut store = ArchiveBuilder::new(spec)
//!     .compaction(Compaction::Weave)
//!     .chunks(16)
//!     .backend(Backend::ExtMem(IoConfig::default()))
//!     .build();
//! assert_eq!(store.latest(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use xarch_core::{Archive, ChunkedArchive, Compaction, VersionStore};
use xarch_extmem::{ExtArchive, IoConfig};
use xarch_keys::KeySpec;

/// The storage tier behind a [`VersionStore`].
#[derive(Debug, Clone, Copy, Default)]
pub enum Backend {
    /// §4.2: the whole archive lives in memory (fastest; bounded by RAM).
    #[default]
    InMemory,
    /// §5: hash-partitioned chunks, each an independent in-memory archive
    /// (bounds the per-merge working set; the value is the chunk count).
    Chunked(usize),
    /// §6.3: sorted event streams merged in one pass with paged I/O
    /// accounting (external-memory; bounded by disk).
    ExtMem(IoConfig),
}

/// Configures and constructs an archive over any [`Backend`].
///
/// Later calls win: `.chunks(16)` selects [`Backend::Chunked`], and a
/// subsequent `.backend(..)` replaces it.
#[derive(Debug, Clone)]
pub struct ArchiveBuilder {
    spec: KeySpec,
    compaction: Compaction,
    backend: Backend,
}

impl ArchiveBuilder {
    /// Starts a builder for an archive governed by `spec`, defaulting to
    /// the in-memory backend with stamp-alternative compaction.
    pub fn new(spec: KeySpec) -> Self {
        Self {
            spec,
            compaction: Compaction::default(),
            backend: Backend::default(),
        }
    }

    /// Sets the frontier compaction mode (§4.2's alternatives vs Fig 10's
    /// weave). The external-memory backend manages frontier contents in
    /// its event stream and ignores this knob.
    pub fn compaction(mut self, compaction: Compaction) -> Self {
        self.compaction = compaction;
        self
    }

    /// Selects the chunked backend with `n` hash partitions.
    pub fn chunks(mut self, n: usize) -> Self {
        self.backend = Backend::Chunked(n);
        self
    }

    /// Selects the storage backend explicitly.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builds the configured store.
    pub fn build(self) -> Box<dyn VersionStore> {
        match self.backend {
            Backend::InMemory => Box::new(Archive::with_compaction(self.spec, self.compaction)),
            Backend::Chunked(n) => Box::new(ChunkedArchive::with_compaction(
                self.spec,
                n,
                self.compaction,
            )),
            Backend::ExtMem(cfg) => Box::new(ExtArchive::new(self.spec, cfg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_core::equiv_modulo_key_order;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))").unwrap()
    }

    #[test]
    fn builder_constructs_every_backend() {
        let doc = parse("<db><rec><id>1</id></rec></db>").unwrap();
        let builders = [
            ArchiveBuilder::new(spec()),
            ArchiveBuilder::new(spec()).chunks(4),
            ArchiveBuilder::new(spec()).backend(Backend::ExtMem(IoConfig::default())),
            ArchiveBuilder::new(spec())
                .compaction(Compaction::Weave)
                .chunks(16)
                .backend(Backend::ExtMem(IoConfig::default())),
        ];
        for b in builders {
            let mut store = b.build();
            store.add_version(&doc).unwrap();
            let got = store.retrieve(1).unwrap().unwrap();
            assert!(equiv_modulo_key_order(&got, &doc, store.spec()));
        }
    }

    #[test]
    fn later_backend_calls_win() {
        let b = ArchiveBuilder::new(spec())
            .chunks(8)
            .backend(Backend::InMemory);
        assert!(matches!(b.backend, Backend::InMemory));
        let b = ArchiveBuilder::new(spec())
            .backend(Backend::InMemory)
            .chunks(8);
        assert!(matches!(b.backend, Backend::Chunked(8)));
    }
}
