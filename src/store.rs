//! The builder facade: configure an archive once, get back a
//! [`Box<dyn VersionStore>`] for whichever storage tier fits the workload.
//!
//! ```
//! use xarch::{ArchiveBuilder, Backend};
//! use xarch::core::Compaction;
//! use xarch::extmem::IoConfig;
//! use xarch::keys::KeySpec;
//!
//! let spec = KeySpec::parse("(/, (db, {}))")?;
//! let mut store = ArchiveBuilder::new(spec)
//!     .compaction(Compaction::Weave)
//!     .chunks(16)
//!     .backend(Backend::ExtMem(IoConfig::default()))
//!     .build();
//! assert_eq!(store.latest(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Persistence is one more axis of the same configuration: `.durable(path)`
//! wraps whichever backend was selected in a crash-safe on-disk journal
//! (see `xarch_storage`), replayed on reopen:
//!
//! ```
//! use xarch::{ArchiveBuilder};
//! use xarch::keys::KeySpec;
//!
//! let path = xarch::storage::scratch_path("builder-doc");
//! let spec = KeySpec::parse("(/, (db, {}))")?;
//! let store = ArchiveBuilder::new(spec.clone())
//!     .chunks(4)
//!     .durable(&path)
//!     .try_build()?;
//! assert_eq!(store.latest(), 0);
//! drop(store);
//! # std::fs::remove_file(&path)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::path::PathBuf;

use crate::handle::ArchiveHandle;
use xarch_core::{Archive, ChunkedArchive, Compaction, ObservedStore, StoreError, VersionStore};
use xarch_extmem::{ExtArchive, IoConfig};
use xarch_index::{IndexedArchive, IndexedStore};
use xarch_keys::KeySpec;
use xarch_obs::Obs;
use xarch_storage::{DurableArchive, DurableOptions};

/// The storage tier behind a [`VersionStore`].
#[derive(Debug, Clone, Copy, Default)]
pub enum Backend {
    /// §4.2: the whole archive lives in memory (fastest; bounded by RAM).
    #[default]
    InMemory,
    /// §5: hash-partitioned chunks, each an independent in-memory archive
    /// (bounds the per-merge working set; the value is the chunk count).
    Chunked(usize),
    /// §6.3: sorted event streams merged in one pass with paged I/O
    /// accounting (external-memory; bounded by disk).
    ExtMem(IoConfig),
}

/// Configures and constructs an archive over any [`Backend`].
///
/// Later calls win: `.chunks(16)` selects [`Backend::Chunked`], and a
/// subsequent `.backend(..)` replaces it.
#[derive(Debug, Clone)]
pub struct ArchiveBuilder {
    spec: KeySpec,
    compaction: Compaction,
    backend: Backend,
    durable: Option<(PathBuf, DurableOptions)>,
    /// Checkpoint cadence requested before `.durable(..)` was called —
    /// folded into the journal options when the durable layer is added.
    checkpoint_every: Option<u32>,
    indexed: bool,
    observability: Option<Obs>,
}

impl ArchiveBuilder {
    /// Starts a builder for an archive governed by `spec`, defaulting to
    /// the in-memory backend with stamp-alternative compaction and no
    /// persistence.
    pub fn new(spec: KeySpec) -> Self {
        Self {
            spec,
            compaction: Compaction::default(),
            backend: Backend::default(),
            durable: None,
            checkpoint_every: None,
            indexed: false,
            observability: None,
        }
    }

    /// Reports the store through `obs`: every backend layer registers its
    /// canonical metrics in `obs`'s registry (journal `segment.*` /
    /// `recovery.*`, external-memory `extmem.*`, index probe counters)
    /// and the built store is wrapped in an
    /// [`ObservedStore`](xarch_core::ObservedStore) timing every query
    /// kind and ingest call into `query.*` / `ingest.*` histograms.
    /// Recording is lock-free (atomic handles); keep a clone of `obs` to
    /// render the Prometheus/JSON report and read recent trace events.
    pub fn with_observability(mut self, obs: Obs) -> Self {
        self.observability = Some(obs);
        self
    }

    /// Maintains the §7 query indexes alongside the store, so `as_of`,
    /// `history`, `range` and `diff` cost time proportional to the answer
    /// instead of a whole-version materialization. The in-memory backend
    /// gets the native timestamp-tree + history-index pair
    /// ([`xarch_index::IndexedArchive`]); chunked and external-memory
    /// backends get the key-path sidecar ([`xarch_index::IndexedStore`]).
    /// Composes with `.durable(..)`: journal replay re-establishes the
    /// index on reopen, so queries never pay a rebuild.
    pub fn with_index(mut self) -> Self {
        self.indexed = true;
        self
    }

    /// Sets the frontier compaction mode (§4.2's alternatives vs Fig 10's
    /// weave). The external-memory backend manages frontier contents in
    /// its event stream and ignores this knob.
    pub fn compaction(mut self, compaction: Compaction) -> Self {
        self.compaction = compaction;
        self
    }

    /// Selects the chunked backend with `n` hash partitions.
    pub fn chunks(mut self, n: usize) -> Self {
        self.backend = Backend::Chunked(n);
        self
    }

    /// Selects the storage backend explicitly.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Wraps the selected backend in a crash-safe on-disk journal at
    /// `path` (created if absent, replayed if present) with default
    /// [`DurableOptions`]. Composes with `.chunks(..)`, `.backend(..)` and
    /// `.compaction(..)`: those configure the wrapped store, this makes it
    /// persistent. Use [`ArchiveBuilder::try_build`] to surface open/replay
    /// errors.
    pub fn durable(self, path: impl Into<PathBuf>) -> Self {
        self.durable_with(path, DurableOptions::default())
    }

    /// Like [`ArchiveBuilder::durable`], with explicit journal options
    /// (per-block compression, sync policy, checkpoint cadence).
    pub fn durable_with(mut self, path: impl Into<PathBuf>, mut options: DurableOptions) -> Self {
        if options.checkpoint_every.is_none() {
            options.checkpoint_every = self.checkpoint_every;
        }
        self.durable = Some((path.into(), options));
        self
    }

    /// Appends a checkpoint block to the durable journal after every `n`
    /// committed versions, so reopening restores the newest snapshot and
    /// replays only the tail — reopen cost stays flat as history grows.
    /// Only meaningful together with [`ArchiveBuilder::durable`] /
    /// [`ArchiveBuilder::durable_with`] (order does not matter); `n = 0`
    /// disables checkpointing.
    pub fn checkpoint_every(mut self, n: u32) -> Self {
        let cadence = (n > 0).then_some(n);
        match &mut self.durable {
            Some((_, options)) => options.checkpoint_every = cadence,
            None => self.checkpoint_every = cadence,
        }
        self
    }

    /// Builds the configured store, surfacing construction errors — a
    /// durable store can fail to open (I/O error, corrupt segment,
    /// key-spec mismatch) and a misconfigured backend (zero chunks) is
    /// rejected here instead of misbehaving downstream. Pure in-memory
    /// configurations with valid parameters cannot fail.
    pub fn try_build(self) -> Result<Box<dyn VersionStore>, StoreError> {
        if let Backend::Chunked(0) = self.backend {
            return Err(StoreError::Backend(
                "chunked backend requires at least one partition (chunks(0) has nowhere \
                 to hash records to)"
                    .into(),
            ));
        }
        let obs = self.observability;
        let ext = |spec: KeySpec, cfg: IoConfig| match &obs {
            Some(o) => ExtArchive::observed(spec, cfg, o.registry()),
            None => ExtArchive::new(spec, cfg),
        };
        let inner: Box<dyn VersionStore> = match (self.backend, self.indexed) {
            (Backend::InMemory, false) => {
                Box::new(Archive::with_compaction(self.spec, self.compaction))
            }
            (Backend::InMemory, true) => {
                let mut idx = IndexedArchive::with_compaction(self.spec, self.compaction);
                if let Some(o) = &obs {
                    idx.bind_observability(o.registry());
                }
                Box::new(idx)
            }
            (Backend::Chunked(n), false) => Box::new(ChunkedArchive::with_compaction(
                self.spec,
                n,
                self.compaction,
            )),
            (Backend::Chunked(n), true) => Box::new(IndexedStore::new(Box::new(
                ChunkedArchive::with_compaction(self.spec, n, self.compaction),
            ))?),
            (Backend::ExtMem(cfg), false) => Box::new(ext(self.spec, cfg)),
            (Backend::ExtMem(cfg), true) => {
                Box::new(IndexedStore::new(Box::new(ext(self.spec, cfg)))?)
            }
        };
        let inner: Box<dyn VersionStore> = match self.durable {
            None => inner,
            Some((path, options)) => match &obs {
                Some(o) => Box::new(DurableArchive::open_observed(path, options, inner, o)?),
                None => Box::new(DurableArchive::open_with(path, options, inner)?),
            },
        };
        // the observability wrapper goes outermost, so the query/ingest
        // histograms time what the caller experiences
        Ok(match obs {
            Some(o) => Box::new(ObservedStore::new(inner, &o)),
            None => inner,
        })
    }

    /// Builds the configured store, panicking on construction failure.
    /// Durable configurations should prefer [`ArchiveBuilder::try_build`].
    pub fn build(self) -> Box<dyn VersionStore> {
        self.try_build().expect("archive construction failed")
    }

    /// Builds the configured store wrapped in an [`ArchiveHandle`]: a
    /// cheaply-clonable, `Send + Sync` handle with single-writer /
    /// multi-reader semantics and **wait-free** consistent snapshots
    /// ([`ArchiveHandle::snapshot`] is one atomic load of the published
    /// version — never blocked by an in-flight merge). The handle forks
    /// the built store ([`VersionStore::fork`]) into the passive replica
    /// its publication protocol merges into. Composes with every backend
    /// axis — `.chunks(..)`, `.backend(..)`, `.with_index()`,
    /// `.durable(..)`. Surfaces the same construction errors as
    /// [`ArchiveBuilder::try_build`].
    pub fn try_build_shared(self) -> Result<ArchiveHandle, StoreError> {
        let obs = self.observability.clone();
        let store = self.try_build()?;
        Ok(match obs {
            Some(o) => ArchiveHandle::observed(store, &o),
            None => ArchiveHandle::new(store),
        })
    }

    /// Like [`ArchiveBuilder::try_build_shared`], panicking on
    /// construction failure. Durable configurations should prefer the
    /// fallible variant.
    pub fn build_shared(self) -> ArchiveHandle {
        self.try_build_shared()
            .expect("archive construction failed")
    }

    /// Builds the configured store for *serving*: a shared
    /// [`ArchiveHandle`] plus the [`Obs`] instance every layer reports
    /// into. This is the hook the `xarch_server` crate calls — a service
    /// needs both the handle (to pin per-request snapshots) and the
    /// observability registry (to register its own `server.*` metrics
    /// and render the exposition), so an `Obs` is created here when the
    /// builder was not already given one via
    /// [`ArchiveBuilder::with_observability`].
    pub fn try_build_served(mut self) -> Result<(ArchiveHandle, Obs), StoreError> {
        let obs = self.observability.get_or_insert_with(Obs::new).clone();
        let handle = self.try_build_shared()?;
        Ok((handle, obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_core::equiv_modulo_key_order;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))").unwrap()
    }

    #[test]
    fn builder_constructs_every_backend() {
        let doc = parse("<db><rec><id>1</id></rec></db>").unwrap();
        let builders = [
            ArchiveBuilder::new(spec()),
            ArchiveBuilder::new(spec()).chunks(4),
            ArchiveBuilder::new(spec()).backend(Backend::ExtMem(IoConfig::default())),
            ArchiveBuilder::new(spec())
                .compaction(Compaction::Weave)
                .chunks(16)
                .backend(Backend::ExtMem(IoConfig::default())),
        ];
        for b in builders {
            let mut store = b.build();
            store.add_version(&doc).unwrap();
            let got = store.retrieve(1).unwrap().unwrap();
            assert!(equiv_modulo_key_order(&got, &doc, store.spec()));
        }
    }

    #[test]
    fn durable_composes_with_other_options() {
        let doc = parse("<db><rec><id>1</id></rec></db>").unwrap();
        let path = xarch_storage::scratch_path("builder-durable");
        {
            let mut store = ArchiveBuilder::new(spec())
                .compaction(Compaction::Weave)
                .chunks(4)
                .durable(&path)
                .try_build()
                .unwrap();
            store.add_version(&doc).unwrap();
        }
        // reopening through the same builder configuration replays the journal
        let store = ArchiveBuilder::new(spec())
            .compaction(Compaction::Weave)
            .chunks(4)
            .durable(&path)
            .try_build()
            .unwrap();
        assert_eq!(store.latest(), 1);
        let got = store.retrieve(1).unwrap().unwrap();
        assert!(equiv_modulo_key_order(&got, &doc, store.spec()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_chunks_is_rejected_at_build_time() {
        // a zero-partition hash has nowhere to put records; it must fail
        // loudly at construction, not misbehave on the first merge
        for b in [
            ArchiveBuilder::new(spec()).chunks(0),
            ArchiveBuilder::new(spec()).backend(Backend::Chunked(0)),
            ArchiveBuilder::new(spec()).chunks(0).with_index(),
            ArchiveBuilder::new(spec())
                .chunks(0)
                .durable(xarch_storage::scratch_path("builder-zero-chunks")),
        ] {
            let err = b.try_build().map(|_| ()).unwrap_err();
            assert!(
                matches!(err, StoreError::Backend(_)),
                "expected Backend error, got {err}"
            );
            assert!(err.to_string().contains("at least one partition"), "{err}");
        }
        // the panicking variant surfaces the same failure
        let panicked = std::panic::catch_unwind(|| ArchiveBuilder::new(spec()).chunks(0).build());
        assert!(panicked.is_err());
        // and a valid chunk count still builds
        assert!(ArchiveBuilder::new(spec()).chunks(1).try_build().is_ok());
    }

    #[test]
    fn checkpoint_cadence_folds_into_the_journal_in_either_order() {
        // cadence before .durable(..) is held on the builder and folded in;
        // cadence after edits the journal options directly; n = 0 disables
        let before = ArchiveBuilder::new(spec())
            .checkpoint_every(3)
            .durable(xarch_storage::scratch_path("builder-cp-before"));
        let after = ArchiveBuilder::new(spec())
            .durable(xarch_storage::scratch_path("builder-cp-after"))
            .checkpoint_every(3);
        for b in [before, after] {
            let (_, options) = b.durable.as_ref().unwrap();
            assert_eq!(options.checkpoint_every, Some(3));
        }
        let off = ArchiveBuilder::new(spec())
            .checkpoint_every(5)
            .checkpoint_every(0)
            .durable(xarch_storage::scratch_path("builder-cp-off"));
        assert_eq!(off.durable.as_ref().unwrap().1.checkpoint_every, None);
        // explicit options win over a builder-level cadence
        let explicit = ArchiveBuilder::new(spec())
            .checkpoint_every(9)
            .durable_with(
                xarch_storage::scratch_path("builder-cp-explicit"),
                DurableOptions {
                    checkpoint_every: Some(2),
                    ..DurableOptions::default()
                },
            );
        assert_eq!(
            explicit.durable.as_ref().unwrap().1.checkpoint_every,
            Some(2)
        );
    }

    #[test]
    fn checkpointed_builder_reopens_from_the_snapshot() {
        let path = xarch_storage::scratch_path("builder-checkpointed");
        let build = || {
            ArchiveBuilder::new(spec())
                .checkpoint_every(2)
                .durable(&path)
                .try_build()
                .unwrap()
        };
        {
            let mut store = build();
            for n in 1..=5u32 {
                let doc = parse(&format!("<db><rec><id>{n}</id></rec></db>")).unwrap();
                store.add_version(&doc).unwrap();
            }
        }
        let store = build();
        assert_eq!(store.latest(), 5);
        let got = store.retrieve(3).unwrap().unwrap();
        assert!(xarch_xml::writer::to_compact_string(&got).contains("<id>3</id>"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn later_backend_calls_win() {
        let b = ArchiveBuilder::new(spec())
            .chunks(8)
            .backend(Backend::InMemory);
        assert!(matches!(b.backend, Backend::InMemory));
        let b = ArchiveBuilder::new(spec())
            .backend(Backend::InMemory)
            .chunks(8);
        assert!(matches!(b.backend, Backend::Chunked(8)));
    }
}
