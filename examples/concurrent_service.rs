//! A concurrent archive service, embedded: one process runs the real
//! `xarch-server` (`crates/server`), its curator merges new versions
//! in-process through the served [`xarch::ArchiveHandle`], and reader
//! threads are genuine network clients — each [`xarch_proto::Client`]
//! leases a pinned snapshot over the wire (`snap_open`) and gets
//! repeatable reads across as many queries as it likes, no matter how
//! many merges land meanwhile.
//!
//! This is the deployment shape the paper's archive is meant for — a
//! long-lived query service over an append-only corpus. The wire
//! protocol the readers speak is specified in `docs/PROTOCOL.md`;
//! `examples/serve_and_query.rs` shows the fully remote variant where
//! even the curator ingests over the wire.
//!
//!     cargo run --release --example concurrent_service

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use xarch::core::KeyQuery;
use xarch::datagen::omim::OmimGen;
use xarch::StoreReader;
use xarch_proto::Client;
use xarch_server::{Server, ServerConfig};

const VERSIONS: usize = 24;
const RECORDS: usize = 60;
const READERS: usize = 4;

/// The OMIM key spec, as config `spec =` lines — the same spec
/// `xarch::datagen::omim::omim_spec()` parses.
const OMIM_SPEC: &str = "(/, (ROOT, {}))\n\
    (/ROOT, (Record, {Num}))\n\
    (/ROOT/Record, (Title, {}))\n\
    (/ROOT/Record, (AlternativeTitle, {\\e}))\n\
    (/ROOT/Record, (Text, {}))\n\
    (/ROOT/Record, (Contributors, {Name, CNtype, Date/Month, Date/Day, Date/Year}))\n\
    (/ROOT/Record/Contributors, (Date, {}))\n\
    (/ROOT/Record, (Creation_Date, {Name, Date/Month, Date/Day, Date/Year}))\n\
    (/ROOT/Record/Creation_Date, (Date, {}))";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An indexed in-memory archive served over TCP; swap the backend
    // line for `backend = chunked:8` or `backend = extmem` (or add
    // `durable = path`) and nothing below changes.
    let mut config = String::from("listen = 127.0.0.1:0\nworkers = 4\nindexed = true\n");
    for line in OMIM_SPEC.lines() {
        config.push_str(&format!("spec = {line}\n"));
    }
    let server = Server::start(ServerConfig::from_text(&config)?)?;
    let addr = server.addr();
    println!("xarch-server listening on {addr}");

    let versions = OmimGen::new(0xC0FFEE).sequence(RECORDS, VERSIONS);
    // seed the first version so readers have something to pin
    server.handle().add_version(&versions[0])?;

    let done = AtomicBool::new(false);
    let queries_served = AtomicU64::new(0);

    std::thread::scope(|s| {
        // ---- the curator: merges in-process through the served handle ----
        let writer = server.handle().clone();
        let writer_done = &done;
        s.spawn(move || {
            for doc in &versions[1..] {
                writer.add_version(doc).expect("merge");
            }
            writer_done.store(true, Ordering::Release);
        });

        // ---- the service: each reader is a network client on a lease -----
        for r in 0..READERS {
            let done = &done;
            let served = &queries_served;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                let mut last_pin = 0;
                while !done.load(Ordering::Acquire) || last_pin < VERSIONS as u32 {
                    let (lease, pin) = client.open_snapshot().expect("lease");
                    last_pin = pin;
                    // a consistent bundle of queries at one pinned version:
                    // whatever lands behind us, these answers agree
                    let root = vec![KeyQuery::new("ROOT")];
                    let recs = client.range(lease, &root, 1, last_pin).expect("range");
                    let full = client.retrieve(lease, last_pin).expect("retrieve");
                    assert_eq!(
                        full.is_some(),
                        !recs.is_empty(),
                        "r{r}: snapshot must be internally consistent"
                    );
                    if let Some(first) = recs.first() {
                        let q = vec![root[0].clone(), first.step.clone()];
                        let hist = client.history(lease, &q).expect("history");
                        let hist = hist.expect("exists");
                        // the pinned world ends at the pin
                        assert!(hist.versions().all(|v| v <= last_pin));
                    }
                    client.close_snapshot(lease).expect("close");
                    served.fetch_add(3, Ordering::Relaxed);
                }
            });
        }
    });

    let final_snap = server.handle().snapshot();
    println!(
        "merged {} versions while {READERS} network readers served {} leased queries",
        final_snap.latest(),
        queries_served.load(Ordering::Relaxed),
    );
    let stats = final_snap.stats()?;
    println!(
        "final archive: {} versions, {} elements, {} bytes",
        stats.versions, stats.elements, stats.size_bytes
    );
    assert_eq!(final_snap.latest(), VERSIONS as u32);
    Ok(())
}
