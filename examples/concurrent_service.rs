//! A concurrent archive service: one curator merging new versions while
//! reader threads serve consistent temporal queries from snapshots.
//!
//! This is the deployment shape the paper's archive is meant for — a
//! long-lived query service over an append-only corpus. The
//! [`xarch::ArchiveHandle`] gives it single-writer / multi-reader
//! semantics over any backend; each reader pins a [`xarch::Snapshot`] and
//! gets repeatable reads across as many queries as it likes, no matter
//! how many merges land meanwhile.
//!
//!     cargo run --release --example concurrent_service

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use xarch::core::KeyQuery;
use xarch::datagen::omim::{omim_spec, OmimGen};
use xarch::{ArchiveBuilder, StoreReader};

const VERSIONS: usize = 24;
const RECORDS: usize = 60;
const READERS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An indexed in-memory archive behind a shared handle; swap in
    // `.chunks(..)`, `.backend(Backend::ExtMem(..))` or `.durable(path)`
    // and nothing below changes.
    let handle = ArchiveBuilder::new(omim_spec())
        .with_index()
        .try_build_shared()?;

    let versions = OmimGen::new(0xC0FFEE).sequence(RECORDS, VERSIONS);
    // seed the first version so readers have something to pin
    handle.add_version(&versions[0])?;

    let done = AtomicBool::new(false);
    let queries_served = AtomicU64::new(0);

    std::thread::scope(|s| -> Result<(), xarch::StoreError> {
        // ---- the curator: keeps merging new versions -------------------
        let writer = handle.clone();
        let writer_done = &done;
        s.spawn(move || {
            for doc in &versions[1..] {
                writer.add_version(doc).expect("merge");
            }
            writer_done.store(true, Ordering::Release);
        });

        // ---- the service: each reader works off its own snapshot -------
        for r in 0..READERS {
            let reader = handle.clone();
            let done = &done;
            let served = &queries_served;
            s.spawn(move || {
                let mut last_pin = 0;
                while !done.load(Ordering::Acquire) || last_pin < VERSIONS as u32 {
                    let snap = reader.snapshot();
                    last_pin = snap.pinned();
                    // a consistent bundle of queries at one pinned version:
                    // whatever lands behind us, these answers agree
                    let root = [KeyQuery::new("ROOT")];
                    let recs = snap.range(&root, 1..=last_pin).expect("range");
                    let full = snap.retrieve(last_pin).expect("retrieve");
                    assert_eq!(
                        full.is_some(),
                        !recs.is_empty(),
                        "r{r}: snapshot must be internally consistent"
                    );
                    if let Some(first) = recs.first() {
                        let q = [root[0].clone(), first.step.clone()];
                        let hist = snap.history(&q).expect("history").expect("exists");
                        // the pinned world ends at the pin
                        assert!(hist.versions().all(|v| v <= last_pin));
                    }
                    served.fetch_add(3, Ordering::Relaxed);
                }
            });
        }
        Ok(())
    })?;

    let final_snap = handle.snapshot();
    println!(
        "merged {} versions while {READERS} readers served {} snapshot queries",
        final_snap.latest(),
        queries_served.load(Ordering::Relaxed),
    );
    let stats = final_snap.stats()?;
    println!(
        "final archive: {} versions, {} elements, {} bytes",
        stats.versions, stats.elements, stats.size_bytes
    );
    assert_eq!(final_snap.latest(), VERSIONS as u32);
    Ok(())
}
