//! The archive as a network service: a real `xarch-server` on an
//! ephemeral port, a curator feeding it batched releases **over the
//! wire**, and client threads querying it concurrently — each from its
//! own leased snapshot, so every answer is internally consistent no
//! matter how many ingests land meanwhile. Ends with the ops report:
//! the server's own `server.*` metrics rendered as Prometheus text,
//! fetched over the protocol's `metrics` verb.
//!
//! The wire protocol is specified byte-for-byte in `docs/PROTOCOL.md`;
//! `examples/concurrent_service.rs` shows the same deployment shape
//! with the curator in-process.
//!
//!     cargo run --release --example serve_and_query

use std::sync::atomic::{AtomicU64, Ordering};

use xarch::core::KeyQuery;
use xarch_proto::Client;
use xarch_server::{Server, ServerConfig};

const SPEC: &str = "(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))";
const VERSIONS: u32 = 16;
const BATCH: usize = 4;
const CLIENTS: usize = 3;

/// Version `i` holds records `1..=i`, each stamped with the version.
fn doc(i: u32) -> String {
    let mut s = String::from("<db>");
    for r in 1..=i {
        s.push_str(&format!("<rec><id>{r}</id><val>v{i}</val></rec>"));
    }
    s.push_str("</db>");
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- the server: any builder backend, one config file ----------------
    let mut config = String::from("listen = 127.0.0.1:0\nworkers = 4\nindexed = true\n");
    for line in SPEC.lines() {
        config.push_str(&format!("spec = {line}\n"));
    }
    let server = Server::start(ServerConfig::from_text(&config)?)?;
    let addr = server.addr();
    println!("xarch-server listening on {addr}");

    let queries_served = AtomicU64::new(0);

    std::thread::scope(|s| {
        // ---- the curator: batched ingest over the wire -------------------
        s.spawn(move || {
            let mut curator = Client::connect(addr).expect("curator connects");
            let mut next = 1u32;
            while next <= VERSIONS {
                let batch: Vec<String> = (0..BATCH as u32)
                    .map(|k| next + k)
                    .filter(|&i| i <= VERSIONS)
                    .map(doc)
                    .collect();
                let assigned = curator.ingest(&batch).expect("ingest batch");
                next += assigned.len() as u32;
            }
        });

        // ---- the readers: leased snapshots over the wire -----------------
        for c in 0..CLIENTS {
            let served = &queries_served;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut last_pin = 0u32;
                while last_pin < VERSIONS {
                    let (lease, pin) = client.open_snapshot().expect("lease");
                    assert!(pin >= last_pin, "client {c}: pins must be monotone");
                    last_pin = pin;
                    if pin == 0 {
                        client.close_snapshot(lease).expect("close");
                        continue;
                    }
                    // a consistent bundle of queries at one pinned version:
                    // whatever the curator lands meanwhile, these agree
                    let full = client.retrieve(lease, pin).expect("retrieve");
                    let xml = full.expect("pinned version is archived");
                    assert!(
                        xml.contains(&format!("<id>{pin}</id>")),
                        "client {c}: version {pin} must contain record {pin}"
                    );
                    let q = vec![
                        KeyQuery::new("db"),
                        KeyQuery::new("rec").with_text("id", "1"),
                    ];
                    let hist = client.history(lease, &q).expect("history");
                    let hist = hist.expect("record 1 exists from version 1");
                    assert_eq!(hist.intervals(), &[(1, pin)], "client {c}");
                    assert_eq!(client.latest(lease).expect("latest"), pin);
                    client.close_snapshot(lease).expect("close");
                    served.fetch_add(3, Ordering::Relaxed);
                }
            });
        }
    });

    // ---- the ops report, over the wire -----------------------------------
    let mut admin = Client::connect(addr)?;
    let health = admin.health()?;
    assert!(health.ok, "server must report healthy");
    assert_eq!(health.latest, VERSIONS);
    println!(
        "served {} snapshot query bundles across {CLIENTS} clients; \
         server handled {} requests, latest version {}",
        queries_served.load(Ordering::Relaxed),
        health.served,
        health.latest
    );
    let report = admin.metrics()?;
    print!("{report}");
    assert!(report.contains("server_requests"), "requests are counted");
    assert!(
        report.contains("server_retrieve_duration_count"),
        "per-verb latency histograms are populated"
    );
    Ok(())
}
