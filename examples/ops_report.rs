//! The full observability story in one run: build a durable indexed
//! archive with `.with_observability(..)`, bulk-ingest a release under
//! group commit, exercise every temporal query kind, "crash" with a torn
//! journal tail, recover — then print the operational report: Prometheus
//! text, JSON, and the trace ring buffer.
//!
//! ```text
//! cargo run --example ops_report
//! ```

use std::fs::OpenOptions;
use std::io::Write;

use xarch::core::KeyQuery;
use xarch::datagen::omim::{omim_spec, OmimGen};
use xarch::obs::{Level, Obs};
use xarch::storage::scratch_path;
use xarch::{ArchiveBuilder, StoreReader};

const BATCH: usize = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = omim_spec();
    let path = scratch_path("ops-report");
    let obs = Obs::new(); // stderr sink at Warn; the ring buffer sees all

    // a curated "release": 64 consecutive versions of a 24-record database
    let mut gen = OmimGen::new(0x0B5);
    gen.ins_ratio = 0.05;
    gen.del_ratio = 0.02;
    let release = gen.sequence(24, BATCH);

    // the first record's key, for the element-addressed query kinds
    let d0 = &release[0];
    let rec = d0
        .child_elements(d0.root(), "Record")
        .next()
        .expect("record");
    let num = d0.text_content(d0.first_child_element(rec, "Num").expect("Num"));
    let q = [
        KeyQuery::new("ROOT"),
        KeyQuery::new("Record").with_text("Num", &num),
    ];

    // ---- first life: group-committed ingest + every query kind --------
    {
        let handle = ArchiveBuilder::new(spec.clone())
            .with_index()
            .durable(&path)
            .with_observability(obs.clone())
            .try_build_shared()?;

        let assigned = handle.add_versions(&release)?;
        let fsyncs = obs
            .registry()
            .get_counter("segment.fsyncs")
            .expect("storage layer registered")
            .get();
        println!(
            "ingested {} versions as one group-committed batch: {} fsync",
            assigned.len(),
            fsyncs
        );
        // the structural promise of group commit, read off the registry:
        // one multi-version block, one commit word, ONE fsync for 64
        // versions (the superblock write at create is not a commit)
        assert_eq!(fsyncs, 1, "a 64-version batch must cost exactly 1 fsync");

        let snap = handle.snapshot(); // pins `handle.snapshot_pins`
        assert!(snap.retrieve(1)?.is_some());
        assert!(handle.retrieve(BATCH as u32)?.is_some());
        assert!(handle.as_of(&q, 1)?.is_some());
        assert!(handle.history(&q)?.is_some());
        assert!(handle.history_values(&q)?.is_some());
        assert!(!handle.range(&[KeyQuery::new("ROOT")], 1..=4)?.is_empty());
        let _delta = handle.diff(&q, 1, BATCH as u32)?;
        // dropped with no shutdown protocol: the batch is already
        // checksummed, commit-worded, and synced
    }

    // ---- the crash: a torn write lands after the committed tail -------
    let mut f = OpenOptions::new().append(true).open(&path)?;
    f.write_all(&[1, 0, 2, 0, 0, 0, 9, 9])?; // a partial block header
    drop(f);

    // ---- second life: recovery is observable, not silent --------------
    let store = ArchiveBuilder::new(spec)
        .with_index()
        .durable(&path)
        .with_observability(obs.clone())
        .try_build()?;
    assert_eq!(store.latest(), BATCH as u32, "the whole batch survived");
    let truncations = obs
        .registry()
        .get_counter("recovery.torn_tail_truncations")
        .expect("registered")
        .get();
    assert_eq!(truncations, 1, "the torn tail was detected and truncated");
    println!(
        "recovered {} versions; torn-tail truncations: {}",
        store.latest(),
        truncations
    );
    drop(store);

    // every query kind must have a populated latency histogram
    for name in [
        "query.retrieve.duration",
        "query.as_of.duration",
        "query.history.duration",
        "query.history_values.duration",
        "query.range.duration",
        "query.diff.duration",
    ] {
        let h = obs.registry().get_histogram(name).expect("registered");
        assert!(h.count() > 0, "{name} must be populated");
    }

    obs.event(
        Level::Info,
        "ops_report.done",
        &[("versions", BATCH.to_string())],
    );

    // ---- the ops report ------------------------------------------------
    println!("\n==== Prometheus exposition ====");
    print!("{}", obs.render_prometheus());
    println!("\n==== JSON exposition ====");
    println!("{}", obs.render_json());
    println!("\n==== recent events (ring buffer, oldest first) ====");
    for e in obs.recent_events() {
        println!("{e}");
    }

    std::fs::remove_file(&path)?;
    Ok(())
}
