//! The XMark change-simulation experiment (§5.3/5.4) as a runnable
//! scenario: evolve an auction site under random change and under the
//! archiver's worst case (key mutation), then compare storage with and
//! without compression.
//!
//! ```text
//! cargo run --release --example auction_compression
//! ```

use xarch::compress::{lzss, xmill};
use xarch::core::Archive;
use xarch::datagen::xmark::{xmark_spec, XmarkGen};
use xarch::diff::IncrementalRepo;
use xarch::xml::writer::to_pretty_string;

fn run(label: &str, versions: &[xarch::xml::Document]) -> Result<(), Box<dyn std::error::Error>> {
    let mut archive = Archive::new(xmark_spec());
    let mut inc = IncrementalRepo::new();
    for doc in versions {
        archive.add_version(doc)?;
        inc.add_version(&to_pretty_string(doc, 0));
    }
    let archive_raw = archive.size_bytes();
    let inc_raw = inc.size_bytes();
    let archive_xmill = xmill::xml_compress(&archive.to_xml()).len();
    let inc_gzip = lzss::compress(inc.serialized().as_bytes()).len();
    println!("--- {label} ---");
    println!("archive            {archive_raw:>9} bytes");
    println!(
        "V1+inc diffs       {inc_raw:>9} bytes  (raw winner: {})",
        if archive_raw <= inc_raw {
            "archive"
        } else {
            "diffs"
        }
    );
    println!("xmill(archive)     {archive_xmill:>9} bytes");
    println!(
        "gzip(V1+inc diffs) {inc_gzip:>9} bytes  (compressed winner: {})",
        if archive_xmill <= inc_gzip {
            "archive"
        } else {
            "diffs"
        }
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig 13-style: 10% of items deleted + inserted + modified per version.
    let mut g = XmarkGen::new(7);
    let random = g.random_change_sequence(120, 12, 10.0);
    run("random change, 10% per version (Fig 13b)", &random)?;

    // Fig 14-style worst case: 10% of item keys mutated per version — the
    // archive must store near-identical items twice, diffs store one line.
    let mut g = XmarkGen::new(7);
    let worst = g.key_mutation_sequence(120, 12, 10.0);
    run(
        "key mutation, 10% per version (Fig 14b, worst case)",
        &worst,
    )?;

    println!(
        "expected shapes: diffs win raw storage in the worst case by a wide\n\
         margin, while xmill(archive) stays competitive — §5.4's reversal."
    );
    Ok(())
}
