//! The paper's running example (§2, Figures 2–5): four versions of a
//! company database merged into one timestamped archive.
//!
//! ```text
//! cargo run --example company_history
//! ```

use xarch::core::{Archive, KeyQuery};
use xarch::datagen::company::{company_spec, company_versions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut archive = Archive::new(company_spec());
    for (i, version) in company_versions().iter().enumerate() {
        let v = archive.add_version(version)?;
        println!(
            "archived version {v} ({} bytes as XML)",
            xarch::xml::writer::to_pretty_string(version, 0).len()
        );
        assert_eq!(v as usize, i + 1);
    }

    // Figure 4's timestamps, reproduced:
    let db = KeyQuery::new("db");
    let finance = KeyQuery::new("dept").with_text("name", "finance");
    let john = KeyQuery::new("emp")
        .with_text("fn", "John")
        .with_text("ln", "Doe");
    let jane = KeyQuery::new("emp")
        .with_text("fn", "Jane")
        .with_text("ln", "Smith");

    let h = |steps: &[KeyQuery]| archive.history(steps).map(|t| t.to_string());
    println!(
        "finance dept:        t={}",
        h(&[db.clone(), finance.clone()]).unwrap()
    );
    println!(
        "John Doe (finance):  t={}",
        h(&[db.clone(), finance.clone(), john.clone()]).unwrap()
    );
    println!(
        "Jane Smith:          t={}",
        h(&[db.clone(), finance.clone(), jane]).unwrap()
    );

    // John's salary history: 90K at version 3, 95K at version 4.
    let sal_path = [db, finance, john, KeyQuery::new("sal")];
    for sal in ["90K", "95K"] {
        let t = archive.value_history(&sal_path, sal).unwrap();
        println!("John's salary {sal}:   t={t}");
    }

    // An empty version 5 (the paper's §2 footnote): root keeps ticking.
    archive.add_empty_version();
    println!(
        "after empty v5: root t={}, db t={}",
        archive.node(archive.root()).time.clone().unwrap(),
        archive.history(&[KeyQuery::new("db")]).unwrap()
    );

    // Figure 5: the archive rendered as XML.
    println!("--- archive XML ---\n{}", archive.to_xml_pretty());
    Ok(())
}
