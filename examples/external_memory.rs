//! The external-memory archiver (§6): archive a database too big for the
//! configured memory budget, watch the I/O accounting respond to M and B,
//! and verify the result matches the in-memory archiver — with both
//! backends driven through the same [`xarch::VersionStore`] contract.
//!
//! ```text
//! cargo run --release --example external_memory
//! ```

use xarch::core::equiv_modulo_key_order;
use xarch::datagen::omim::{omim_spec, OmimGen};
use xarch::extmem::IoConfig;
use xarch::{ArchiveBuilder, VersionStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let versions = OmimGen::new(42).sequence(120, 6);

    // In-memory reference, built through the same trait.
    let mut reference = ArchiveBuilder::new(omim_spec()).build();
    for doc in &versions {
        reference.add_version(doc)?;
    }

    println!("memory M,page B,page reads,page writes,total I/O");
    for (m, b) in [(2usize << 10, 256usize), (8 << 10, 256), (8 << 10, 2048)] {
        let cfg = IoConfig {
            mem_bytes: m,
            page_bytes: b,
        };
        let mut concrete = xarch::extmem::ExtArchive::new(omim_spec(), cfg);
        let ext: &mut dyn VersionStore = &mut concrete;
        for doc in &versions {
            ext.add_version(doc)?;
        }
        // Differential check: the streams reconstruct the same database,
        // whether retrieval materializes or streams.
        for (i, doc) in versions.iter().enumerate() {
            let v = i as u32 + 1;
            let got = ext.retrieve(v)?.expect("version exists");
            assert!(
                equiv_modulo_key_order(&got, doc, ext.spec()),
                "external archive diverged at version {v}"
            );
            let mut bytes = Vec::new();
            assert!(ext.retrieve_into(v, &mut bytes)?);
            let reparsed = xarch::xml::parse(std::str::from_utf8(&bytes)?)?;
            assert!(
                equiv_modulo_key_order(&reparsed, doc, ext.spec()),
                "streamed retrieval diverged at version {v}"
            );
        }
        // I/O accounting lives on the concrete type; read it after the
        // retrieval loop so retrieval reads are included.
        let s = concrete.io_stats();
        println!("{m},{b},{},{},{}", s.page_reads, s.page_writes, s.total());
    }
    println!(
        "\nall configurations reconstruct every version exactly; larger M \
         means fewer merge passes, larger B means fewer (bigger) I/Os — \
         the O(N/B log_(M/B) N/B) behaviour of §6."
    );
    Ok(())
}
