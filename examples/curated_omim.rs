//! Archiving a curated scientific database: 30 versions of an OMIM-like
//! gene-disorder catalogue (Appendix B.1 schema, the paper's measured
//! accretive change profile), comparing the archive against diff-based
//! repositories and answering temporal queries.
//!
//! ```text
//! cargo run --release --example curated_omim
//! ```

use xarch::compress::{lzss, xmill};
use xarch::core::{equiv_modulo_key_order, Archive, KeyQuery};
use xarch::datagen::omim::{omim_spec, OmimGen};
use xarch::diff::{CumulativeRepo, IncrementalRepo};
use xarch::index::HistoryIndex;
use xarch::xml::writer::to_pretty_string;
use xarch::VersionStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gen = OmimGen::new(2002);
    let versions = gen.sequence(150, 30);
    println!(
        "generated {} versions of the curated database",
        versions.len()
    );

    let mut archive = Archive::new(omim_spec());
    let mut inc = IncrementalRepo::new();
    let mut cumu = CumulativeRepo::new();
    for doc in &versions {
        archive.add_version(doc)?;
        let text = to_pretty_string(doc, 0);
        inc.add_version(&text);
        cumu.add_version(&text);
    }

    // Correctness: every version comes back intact — checked through the
    // backend-independent VersionStore contract, materialized and streamed.
    let store: &mut dyn VersionStore = &mut archive;
    for (i, doc) in versions.iter().enumerate() {
        let v = i as u32 + 1;
        let got = store.retrieve(v)?.expect("archived");
        assert!(equiv_modulo_key_order(&got, doc, store.spec()));
        let mut bytes = Vec::new();
        assert!(store.retrieve_into(v, &mut bytes)?);
        let reparsed = xarch::xml::parse(std::str::from_utf8(&bytes)?)?;
        assert!(equiv_modulo_key_order(&reparsed, doc, store.spec()));
    }
    println!("all {} versions retrieve correctly", versions.len());

    // Space: the paper's §5 comparison, in miniature.
    let last = to_pretty_string(versions.last().unwrap(), 0).len();
    println!("last version:          {last:>9} bytes");
    println!(
        "archive:               {:>9} bytes ({:.3}x last version)",
        archive.size_bytes(),
        archive.size_bytes() as f64 / last as f64
    );
    println!("V1 + incremental diffs:{:>9} bytes", inc.size_bytes());
    println!("V1 + cumulative diffs: {:>9} bytes", cumu.size_bytes());
    let xa = xmill::xml_compress(&archive.to_xml()).len();
    let gi = lzss::compress(inc.serialized().as_bytes()).len();
    println!("xmill(archive):        {xa:>9} bytes");
    println!("gzip(V1+inc diffs):    {gi:>9} bytes");

    // Retrieval work: one scan vs a delta chain.
    println!(
        "retrieving v2 applies {} deltas from the incremental repo, \
         but only 1 archive scan",
        inc.retrieval_work(2).max(1)
    );

    // Temporal history of the very first record, via the O(l log d) index.
    let d0 = &versions[0];
    let rec = d0.child_elements(d0.root(), "Record").next().unwrap();
    let num = d0.text_content(d0.first_child_element(rec, "Num").unwrap());
    let idx = HistoryIndex::build(&archive);
    let q = [
        KeyQuery::new("ROOT"),
        KeyQuery::new("Record").with_text("Num", &num),
    ];
    let t = idx.history(&archive, &q).expect("record exists");
    println!(
        "record {num} exists at versions {t} (found with {} comparisons)",
        idx.comparisons()
    );
    Ok(())
}
