//! Bulk loading a curated release with group commit: a whole batch of
//! versions lands through `add_versions` as one merge pass and ONE
//! journal block with a single fsync, then the process "dies" and the
//! reopened store proves the batch survived atomically.
//!
//! ```text
//! cargo run --example bulk_load
//! ```

use std::time::Instant;

use xarch::datagen::omim::{omim_spec, OmimGen};
use xarch::storage::{scratch_path, DurableArchive};
use xarch::{ArchiveBuilder, VersionStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = omim_spec();
    let path = scratch_path("bulk-load");

    // a "release": 32 consecutive versions of a 40-record database
    let mut gen = OmimGen::new(0xB0_1D);
    gen.ins_ratio = 0.06;
    gen.del_ratio = 0.03;
    let release = gen.sequence(40, 32);

    // ---- first life: ingest the release as TWO group-committed batches
    {
        let inner = ArchiveBuilder::new(spec.clone()).with_index().build();
        let mut store = DurableArchive::open(&path, inner)?;
        let start = Instant::now();
        let first = store.add_versions(&release[..16])?;
        let second = store.add_versions(&release[16..])?;
        let elapsed = start.elapsed();
        println!(
            "ingested {} versions in {:.1} ms ({:.0} versions/sec)",
            first.len() + second.len(),
            elapsed.as_secs_f64() * 1e3,
            release.len() as f64 / elapsed.as_secs_f64(),
        );
        println!(
            "journal work: {} blocks, {} fsyncs (one of each per batch — \
             a serial load would have paid {} of each)",
            store.journal_blocks(),
            store.journal_syncs(),
            release.len(),
        );
        assert_eq!(store.journal_blocks(), 2);
        assert_eq!(store.journal_syncs(), 2);
        // dropped with no shutdown protocol: the batches are already
        // checksummed, commit-worded, and synced
    }

    // ---- second life: the batches replay atomically on reopen ---------
    let inner = ArchiveBuilder::new(spec.clone()).with_index().build();
    let store = DurableArchive::open(&path, inner)?;
    use xarch::StoreReader;
    println!(
        "reopened: {} versions recovered from {} verified bytes",
        store.recovery().versions_recovered,
        store.recovery().bytes_scanned,
    );
    assert_eq!(store.latest(), release.len() as u32);
    let last = store
        .retrieve(release.len() as u32)?
        .expect("final version survives");
    assert!(xarch::core::equiv_modulo_key_order(
        &last,
        &release[release.len() - 1],
        store.spec()
    ));
    println!("final version verified against the source release");

    drop(store);
    std::fs::remove_file(&path)?;
    Ok(())
}
