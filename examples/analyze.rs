//! Run the workspace invariant analyzer end to end: the same
//! panic-freedom / lock-discipline / cast-safety / api-contract /
//! unsafe-audit gate CI enforces, printed as a full report and then run
//! in check mode against this very checkout. A non-empty violation list
//! exits non-zero, so the examples smoke job doubles as an analyzer run.
//!
//! ```text
//! cargo run --release --example analyze
//! ```

use std::path::Path;
use std::process::ExitCode;

use xarch_analysis::{analyze_workspace, render_check, render_report, Config};

fn main() -> ExitCode {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = match analyze_workspace(root, &Config::project_policy()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xarch-analysis: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{}", render_report(&analysis));
    println!("{}", render_check(&analysis));
    if analysis.violation_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
