//! Quickstart: configure an archive with [`xarch::ArchiveBuilder`], feed
//! it three versions of a tiny gene database, then retrieve old versions
//! (materialized and streamed) and query an element's temporal history —
//! all through the backend-independent [`xarch::VersionStore`] contract.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xarch::core::{describe_changes, Archive, KeyQuery};
use xarch::keys::KeySpec;
use xarch::xml::parse;
use xarch::{ArchiveBuilder, Backend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the key structure: genes are identified by their <id>.
    let spec = KeySpec::parse(
        "(/, (db, {}))\n\
         (/db, (gene, {id}))\n\
         (/db/gene, (name, {}))\n\
         (/db/gene, (seq, {}))",
    )?;

    // 2. Pick a storage tier. The default is the in-memory archiver of
    //    §4.2; `.chunks(n)` (§5) or `.backend(Backend::ExtMem(..))` (§6.3)
    //    select the scale-out backends without changing any code below.
    let mut store = ArchiveBuilder::new(spec.clone())
        .backend(Backend::InMemory)
        .build();

    // 3. Archive versions as they are published.
    let versions = [
        "<db><gene><id>6230</id><name>GRTM</name><seq>GTCG</seq></gene></db>",
        "<db><gene><id>6230</id><name>GRTM</name><seq>GTCA</seq></gene>\
             <gene><id>2953</id><name>ACV2</name><seq>AGTT</seq></gene></db>",
        "<db><gene><id>2953</id><name>ACV2</name><seq>AGTT</seq></gene></db>",
    ];
    for src in versions {
        store.add_version(&parse(src)?)?;
    }

    // 4. Retrieve any past version with a single scan — materialized…
    let v1 = store.retrieve(1)?.expect("version 1 exists");
    println!("version 1: {}", xarch::xml::writer::to_compact_string(&v1));
    // …or streamed directly into any io::Write sink.
    let mut bytes = Vec::new();
    store.retrieve_into(2, &mut bytes)?;
    println!("version 2 (streamed): {}", String::from_utf8(bytes)?);

    // 5. Ask when a gene existed — the question a text diff can't answer.
    let gene = |id: &str| {
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("gene").with_text("id", id),
        ]
    };
    for id in ["6230", "2953"] {
        println!(
            "gene {id} existed at versions {}",
            store.history(&gene(id))?.expect("archived")
        );
    }
    println!("store stats: {:?}", store.stats()?);

    // 6. The in-memory backend additionally offers change description and
    //    the Fig-5 XML form of the archive itself.
    let mut archive = Archive::new(spec);
    for src in versions {
        archive.add_version(&parse(src)?)?;
    }
    for change in describe_changes(&archive, 1, 2) {
        println!("v1 -> v2: {change}");
    }
    println!("--- archive ---\n{}", archive.to_xml_pretty());
    Ok(())
}
