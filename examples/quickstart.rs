//! Quickstart: configure an archive with [`xarch::ArchiveBuilder`], feed
//! it three versions of a tiny gene database, then retrieve old versions
//! (materialized and streamed) and run the §7 temporal queries — history,
//! as-of partial retrieval, range scans, and diffs — all through the
//! backend-independent [`xarch::VersionStore`] contract.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xarch::core::{describe_changes, Archive, KeyQuery};
use xarch::keys::KeySpec;
use xarch::xml::parse;
use xarch::{ArchiveBuilder, Backend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the key structure: genes are identified by their <id>.
    let spec = KeySpec::parse(
        "(/, (db, {}))\n\
         (/db, (gene, {id}))\n\
         (/db/gene, (name, {}))\n\
         (/db/gene, (seq, {}))",
    )?;

    // 2. Pick a storage tier. The default is the in-memory archiver of
    //    §4.2; `.chunks(n)` (§5) or `.backend(Backend::ExtMem(..))` (§6.3)
    //    select the scale-out backends without changing any code below.
    //    `.with_index()` maintains the §7 query indexes so the temporal
    //    queries in step 5 cost time proportional to their answers.
    let mut store = ArchiveBuilder::new(spec.clone())
        .backend(Backend::InMemory)
        .with_index()
        .build();

    // 3. Archive versions as they are published.
    let versions = [
        "<db><gene><id>6230</id><name>GRTM</name><seq>GTCG</seq></gene></db>",
        "<db><gene><id>6230</id><name>GRTM</name><seq>GTCA</seq></gene>\
             <gene><id>2953</id><name>ACV2</name><seq>AGTT</seq></gene></db>",
        "<db><gene><id>2953</id><name>ACV2</name><seq>AGTT</seq></gene></db>",
    ];
    for src in versions {
        store.add_version(&parse(src)?)?;
    }

    // 4. Retrieve any past version with a single scan — materialized…
    let v1 = store.retrieve(1)?.expect("version 1 exists");
    println!("version 1: {}", xarch::xml::writer::to_compact_string(&v1));
    // …or streamed directly into any io::Write sink.
    let mut bytes = Vec::new();
    store.retrieve_into(2, &mut bytes)?;
    println!("version 2 (streamed): {}", String::from_utf8(bytes)?);

    // 5. Temporal queries (§7) — the questions a text diff can't answer,
    //    each costing time proportional to its answer, not the archive.
    let gene = |id: &str| {
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("gene").with_text("id", id),
        ]
    };
    // …when did a gene exist?
    for id in ["6230", "2953"] {
        println!(
            "gene {id} existed at versions {}",
            store.history(&gene(id))?.expect("archived")
        );
    }
    // …what did gene 6230 look like at version 1, without materializing
    // the rest of that version?
    let seq_v1 = store.as_of(&gene("6230"), 1)?.expect("existed at v1");
    println!(
        "gene 6230 as of v1: {}",
        xarch::xml::writer::to_compact_string(&seq_v1)
    );
    // …every value it ever held, with the versions that held it
    let full = store.history_values(&gene("6230"))?.expect("archived");
    for (versions, content) in &full.values {
        println!("gene 6230 read {content} at versions {versions}");
    }
    // …which genes were alive during versions 1-2?
    for hit in store.range(&[KeyQuery::new("db")], 1..=2)? {
        println!("alive in v1-2: {:?} at {}", hit.step.parts[0].1, hit.time);
    }
    // …and what changed in gene 6230 between versions 1 and 2?
    let delta = store.diff(&gene("6230"), 1, 2)?;
    println!(
        "gene 6230 v1 -> v2: -{} +{} lines\n{}",
        delta.removed, delta.added, delta.script
    );
    println!("store stats: {:?}", store.stats()?);

    // 6. The in-memory backend additionally offers change description and
    //    the Fig-5 XML form of the archive itself.
    let mut archive = Archive::new(spec);
    for src in versions {
        archive.add_version(&parse(src)?)?;
    }
    for change in describe_changes(&archive, 1, 2) {
        println!("v1 -> v2: {change}");
    }
    println!("--- archive ---\n{}", archive.to_xml_pretty());
    Ok(())
}
