//! Quickstart: archive a tiny gene database across three versions, then
//! retrieve old versions and query an element's temporal history.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xarch::core::{describe_changes, Archive, KeyQuery};
use xarch::keys::KeySpec;
use xarch::xml::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the key structure: genes are identified by their <id>.
    let spec = KeySpec::parse(
        "(/, (db, {}))\n\
         (/db, (gene, {id}))\n\
         (/db/gene, (name, {}))\n\
         (/db/gene, (seq, {}))",
    )?;
    let mut archive = Archive::new(spec);

    // 2. Archive versions as they are published.
    archive.add_version(&parse(
        "<db><gene><id>6230</id><name>GRTM</name><seq>GTCG</seq></gene></db>",
    )?)?;
    archive.add_version(&parse(
        "<db><gene><id>6230</id><name>GRTM</name><seq>GTCA</seq></gene>\
             <gene><id>2953</id><name>ACV2</name><seq>AGTT</seq></gene></db>",
    )?)?;
    archive.add_version(&parse(
        "<db><gene><id>2953</id><name>ACV2</name><seq>AGTT</seq></gene></db>",
    )?)?;

    // 3. Retrieve any past version with a single scan.
    let v1 = archive.retrieve(1).expect("version 1 exists");
    println!("version 1: {}", xarch::xml::writer::to_compact_string(&v1));

    // 4. Ask when a gene existed — the semantic continuity diff can't give.
    let gene = |id: &str| {
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("gene").with_text("id", id),
        ]
    };
    println!("gene 6230 existed at versions {}", archive.history(&gene("6230")).unwrap());
    println!("gene 2953 existed at versions {}", archive.history(&gene("2953")).unwrap());

    // 5. Describe changes between versions, grouped by element.
    for change in describe_changes(&archive, 1, 2) {
        println!("v1 -> v2: {change}");
    }

    // 6. The archive itself is XML (Fig 5 of the paper).
    println!("--- archive ---\n{}", archive.to_xml_pretty());
    Ok(())
}
