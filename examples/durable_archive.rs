//! The process-restart story: archive versions into a durable store, let
//! the process "die", then reopen the same segment file and retrieve a
//! version that was committed in the previous life.
//!
//! ```text
//! cargo run --example durable_archive
//! ```

use xarch::keys::KeySpec;
use xarch::storage::{scratch_path, DurableArchive};
use xarch::xml::parse;
use xarch::ArchiveBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = KeySpec::parse(
        "(/, (db, {}))\n\
         (/db, (gene, {id}))\n\
         (/db/gene, (seq, {}))",
    )?;
    let path = scratch_path("example");

    // ---- first life of the process: archive two versions --------------
    {
        let mut store = ArchiveBuilder::new(spec.clone())
            .durable(&path)
            .try_build()?;
        store.add_version(&parse(
            "<db><gene><id>6230</id><seq>GTCG</seq></gene></db>",
        )?)?;
        store.add_version(&parse(
            "<db><gene><id>6230</id><seq>GTCA</seq></gene>\
                 <gene><id>2953</id><seq>AGTT</seq></gene></db>",
        )?)?;
        println!(
            "first life : archived {} versions to {}",
            store.latest(),
            path.display()
        );
        // the store is dropped with no shutdown protocol — every
        // acknowledged commit is already checksummed and synced on disk
    }

    // ---- second life: reopen from the same path ------------------------
    let store = ArchiveBuilder::new(spec.clone())
        .durable(&path)
        .try_build()?;
    println!("second life: reopened with {} versions", store.latest());

    // v1 was committed by the previous process and comes back intact
    let v1 = store.retrieve(1)?.expect("v1 was archived");
    println!(
        "v1 document: {}",
        xarch::xml::writer::to_compact_string(&v1)
    );
    drop(store);

    // ---- recovery stats (the concrete type exposes what open() did) ----
    let inner = ArchiveBuilder::new(spec).build();
    let durable = DurableArchive::open(&path, inner)?;
    let stats = durable.recovery();
    println!(
        "recovery   : {} versions from {} verified bytes, torn tail: {}",
        stats.versions_recovered,
        stats.bytes_scanned,
        if stats.recovered_torn_tail() {
            format!("{} bytes truncated", stats.truncated_bytes)
        } else {
            "none".into()
        }
    );
    println!("journal    : {} bytes on disk", durable.journal_bytes());

    std::fs::remove_file(&path)?;
    Ok(())
}
