//! Model-based differential suite for bulk ingest: on EVERY backend the
//! builder can produce, `add_versions(batch)` must yield a store
//! observably identical — retrieve bytes, `as_of`, `history`,
//! `history_values`, `range`, `diff`, stats version count — to a
//! one-document-at-a-time `add_version` replay of the same sequence.
//! The serial store is the model; the batched store is the implementation
//! under test, across several batch partitions of the same workload,
//! including content-empty documents (`<db/>`) inside a batch.

use std::ops::RangeInclusive;
use std::path::PathBuf;

use xarch::core::KeyQuery;
use xarch::datagen::omim::{omim_spec, OmimGen};
use xarch::extmem::IoConfig;
use xarch::keys::KeySpec;
use xarch::xml::writer::to_compact_string;
use xarch::xml::{parse, Document};
use xarch::{ArchiveBuilder, Backend, StoreReader, VersionStore};

fn spec() -> KeySpec {
    KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
}

fn small_ext_cfg() -> IoConfig {
    IoConfig {
        mem_bytes: 2 << 10,
        page_bytes: 256,
    }
}

/// Removes scratch segment files when the test finishes.
struct ScratchFiles(Vec<PathBuf>);

impl Drop for ScratchFiles {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// A labelled store factory: each call yields a fresh store of the same
/// configuration.
type StoreFactory = Box<dyn FnMut() -> Box<dyn VersionStore>>;

/// Every backend configuration of the conformance matrix, as a factory so
/// each (config, partition) pair gets a fresh store. Durable factories
/// register their scratch segment with the guard.
fn all_configs(spec: &KeySpec, guard: &mut ScratchFiles) -> Vec<(&'static str, StoreFactory)> {
    use xarch::core::Compaction;
    fn durable_factory(
        spec: KeySpec,
        tag: &'static str,
        configure: fn(ArchiveBuilder) -> ArchiveBuilder,
        guard: &mut ScratchFiles,
    ) -> StoreFactory {
        // a fresh segment per instantiation; register every path for cleanup
        let mut paths: Vec<PathBuf> = (0..16).map(|_| xarch::storage::scratch_path(tag)).collect();
        guard.0.extend(paths.iter().cloned());
        Box::new(move || {
            let path = paths.pop().expect("enough scratch segments");
            configure(ArchiveBuilder::new(spec.clone()))
                .durable(path)
                .try_build()
                .expect("durable store")
        })
    }
    let s = spec.clone();
    let mut out: Vec<(&'static str, StoreFactory)> = Vec::new();
    {
        let s = s.clone();
        out.push((
            "in-memory",
            Box::new(move || ArchiveBuilder::new(s.clone()).build()),
        ));
    }
    {
        let s = s.clone();
        out.push((
            "in-memory/weave",
            Box::new(move || {
                ArchiveBuilder::new(s.clone())
                    .compaction(Compaction::Weave)
                    .build()
            }),
        ));
    }
    {
        let s = s.clone();
        out.push((
            "in-memory/indexed",
            Box::new(move || ArchiveBuilder::new(s.clone()).with_index().build()),
        ));
    }
    {
        let s = s.clone();
        out.push((
            "chunked(4)",
            Box::new(move || ArchiveBuilder::new(s.clone()).chunks(4).build()),
        ));
    }
    {
        let s = s.clone();
        out.push((
            "chunked(4)/indexed",
            Box::new(move || {
                ArchiveBuilder::new(s.clone())
                    .chunks(4)
                    .with_index()
                    .build()
            }),
        ));
    }
    {
        let s = s.clone();
        out.push((
            "extmem",
            Box::new(move || {
                ArchiveBuilder::new(s.clone())
                    .backend(Backend::ExtMem(small_ext_cfg()))
                    .build()
            }),
        ));
    }
    {
        let s = s.clone();
        out.push((
            "extmem/indexed",
            Box::new(move || {
                ArchiveBuilder::new(s.clone())
                    .backend(Backend::ExtMem(small_ext_cfg()))
                    .with_index()
                    .build()
            }),
        ));
    }
    out.push((
        "durable",
        durable_factory(s.clone(), "batch-eq-durable", |b| b, guard),
    ));
    out.push((
        "durable/chunked(4)",
        durable_factory(s.clone(), "batch-eq-chunked", |b| b.chunks(4), guard),
    ));
    out.push((
        "durable/indexed",
        durable_factory(s.clone(), "batch-eq-indexed", |b| b.with_index(), guard),
    ));
    out
}

/// A sequence exercising every merge action across batch boundaries:
/// records appearing / disappearing / reappearing, frontier content
/// changing and repeating, and **content-empty documents** (`<db/>`) —
/// versions that exist but archive an empty database root.
fn tricky_docs() -> Vec<Document> {
    [
        "<db><rec><id>2</id><val>b</val></rec><rec><id>1</id><val>a</val></rec></db>",
        "<db><rec><id>1</id><val>a2</val></rec><rec><id>3</id><val>c</val></rec></db>",
        "<db/>",
        "<db><rec><id>1</id><val>a</val></rec></db>",
        "<db/>",
        "<db><rec><id>3</id><val>c9</val></rec><rec><id>4</id><val>d</val></rec></db>",
        "<db><rec><id>4</id><val>d</val></rec><rec><id>1</id><val>a</val></rec></db>",
    ]
    .iter()
    .map(|s| parse(s).unwrap())
    .collect()
}

fn queries() -> Vec<Vec<KeyQuery>> {
    let mut qs = vec![Vec::new(), vec![KeyQuery::new("db")]];
    for id in ["1", "2", "3", "4", "9"] {
        qs.push(vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", id),
        ]);
        qs.push(vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", id),
            KeyQuery::new("val"),
        ]);
    }
    qs
}

/// The model check: every observable answer of `got` equals `want`'s.
fn assert_observably_identical(
    want: &dyn VersionStore,
    got: &dyn VersionStore,
    queries: &[Vec<KeyQuery>],
    label: &str,
) {
    let n = want.latest();
    assert_eq!(got.latest(), n, "{label}: version count");
    assert_eq!(
        got.stats().unwrap().versions,
        want.stats().unwrap().versions,
        "{label}: stats version count"
    );
    let windows: Vec<RangeInclusive<u32>> = vec![1..=n, 1..=1, 2..=n.max(2), n..=n, 1..=u32::MAX];
    for v in 0..=n + 1 {
        assert_eq!(got.has_version(v), want.has_version(v), "{label}: v{v}");
        let mut want_bytes = Vec::new();
        let mut got_bytes = Vec::new();
        let ww = want.retrieve_into(v, &mut want_bytes).unwrap();
        let gw = got.retrieve_into(v, &mut got_bytes).unwrap();
        assert_eq!(gw, ww, "{label}: retrieve_into presence at v{v}");
        assert_eq!(got_bytes, want_bytes, "{label}: retrieve bytes at v{v}");
        let wdoc = want.retrieve(v).unwrap().map(|d| to_compact_string(&d));
        let gdoc = got.retrieve(v).unwrap().map(|d| to_compact_string(&d));
        assert_eq!(gdoc, wdoc, "{label}: retrieve at v{v}");
    }
    for q in queries {
        assert_eq!(
            got.history(q).unwrap(),
            want.history(q).unwrap(),
            "{label}: history {q:?}"
        );
        let whv = want.history_values(q).unwrap();
        let ghv = got.history_values(q).unwrap();
        match (&whv, &ghv) {
            (None, None) => {}
            (Some(w), Some(g)) => {
                assert_eq!(g.existence, w.existence, "{label}: existence {q:?}");
                assert_eq!(g.values, w.values, "{label}: history_values {q:?}");
            }
            _ => panic!("{label}: history_values presence diverged for {q:?}"),
        }
        for v in 1..=n {
            let w = want.as_of(q, v).unwrap().map(|d| to_compact_string(&d));
            let g = got.as_of(q, v).unwrap().map(|d| to_compact_string(&d));
            assert_eq!(g, w, "{label}: as_of {q:?} at v{v}");
        }
        for (v1, v2) in [(1, n), (n, 1), (2, 2)] {
            let w = want.diff(q, v1, v2).unwrap();
            let g = got.diff(q, v1, v2).unwrap();
            assert_eq!(g.present, w.present, "{label}: diff presence {q:?}");
            assert_eq!(g.script, w.script, "{label}: diff script {q:?}");
            assert_eq!(
                (g.added, g.removed),
                (w.added, w.removed),
                "{label}: diff counts {q:?}"
            );
        }
        for win in &windows {
            assert_eq!(
                got.range(q, win.clone()).unwrap(),
                want.range(q, win.clone()).unwrap(),
                "{label}: range {q:?} over {win:?}"
            );
        }
    }
}

#[test]
fn batched_ingest_is_observably_identical_to_serial_replay() {
    let spec = spec();
    let docs = tricky_docs();
    let queries = queries();
    let mut guard = ScratchFiles(Vec::new());
    // partitions of the sequence into batches: one big batch, pairs,
    // triples (leaving a remainder), and singletons through the batch API
    let partitions: Vec<usize> = vec![docs.len(), 2, 3, 1];
    for (label, factory) in all_configs(&spec, &mut guard).iter_mut() {
        let mut serial = factory();
        for d in &docs {
            serial.add_version(d).unwrap();
        }
        for &size in &partitions {
            let mut batched = factory();
            let mut assigned = Vec::new();
            for chunk in docs.chunks(size) {
                assigned.extend(batched.add_versions(chunk).unwrap());
            }
            assert_eq!(
                assigned,
                (1..=docs.len() as u32).collect::<Vec<_>>(),
                "{label}: assigned version numbers"
            );
            assert_observably_identical(
                serial.as_ref(),
                batched.as_ref(),
                &queries,
                &format!("{label}/batch{size}"),
            );
        }
    }
}

#[test]
fn batched_ingest_matches_serial_on_generated_workload() {
    // the same differential at datagen scale: multi-record documents with
    // churn, one whole-sequence batch vs the serial model
    let spec = omim_spec();
    let mut g = OmimGen::new(0xBA7C);
    g.del_ratio = 0.06;
    g.ins_ratio = 0.10;
    g.mod_ratio = 0.06;
    let docs = g.sequence(25, 6);
    let mut guard = ScratchFiles(Vec::new());
    for (label, factory) in all_configs(&spec, &mut guard).iter_mut() {
        let mut serial = factory();
        let mut batched = factory();
        for d in &docs {
            serial.add_version(d).unwrap();
        }
        batched.add_versions(&docs).unwrap();
        assert_eq!(batched.latest(), serial.latest(), "{label}");
        for v in 1..=docs.len() as u32 {
            let mut want = Vec::new();
            let mut got = Vec::new();
            assert_eq!(
                serial.retrieve_into(v, &mut want).unwrap(),
                batched.retrieve_into(v, &mut got).unwrap(),
                "{label}: v{v} presence"
            );
            assert_eq!(got, want, "{label}: v{v} bytes");
        }
    }
}

#[test]
fn empty_batch_is_a_noop_on_every_backend() {
    // regression for the latent bug class: `add_versions(&[])` must be
    // `Ok(vec![])` everywhere — no version burned, no state change, and
    // (checked in tests/durability.rs) no journal block written
    let spec = spec();
    let doc = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
    let mut guard = ScratchFiles(Vec::new());
    for (label, factory) in all_configs(&spec, &mut guard).iter_mut() {
        let mut s = factory();
        assert_eq!(s.add_versions(&[]).unwrap(), Vec::<u32>::new(), "{label}");
        assert_eq!(s.latest(), 0, "{label}: empty batch burned a version");
        s.add_version(&doc).unwrap();
        let mut before = Vec::new();
        s.retrieve_into(1, &mut before).unwrap();
        assert_eq!(s.add_versions(&[]).unwrap(), Vec::<u32>::new(), "{label}");
        assert_eq!(s.latest(), 1, "{label}");
        let mut after = Vec::new();
        s.retrieve_into(1, &mut after).unwrap();
        assert_eq!(after, before, "{label}: empty batch mutated state");
    }
}

#[test]
fn snapshots_never_observe_a_half_applied_batch() {
    // through a shared handle, a batch lands under one write-lock
    // acquisition: any snapshot pins either the pre-batch or the
    // post-batch version — the single-threaded contract (the threaded
    // stress lives in tests/concurrency.rs)
    let spec = spec();
    let docs = tricky_docs();
    let handle = ArchiveBuilder::new(spec).build_shared();
    let before = handle.snapshot();
    assert_eq!(before.pinned(), 0);
    handle.add_versions(&docs[..3]).unwrap();
    let mid = handle.snapshot();
    assert_eq!(mid.pinned(), 3, "snapshot pins the whole batch");
    handle.add_versions(&docs[3..]).unwrap();
    assert_eq!(before.pinned(), 0);
    assert_eq!(mid.pinned(), 3);
    assert_eq!(handle.snapshot().pinned(), docs.len() as u32);
    // the pre-batch snapshot still answers as if the batch never happened
    assert!(mid.retrieve(4).unwrap().is_none());
    assert!(mid.retrieve(3).unwrap().is_some());
}
