//! Cross-crate integration tests: the whole pipeline — generate → validate
//! → archive → serialize → compress → retrieve → query — on all three
//! datasets, plus the figure-level sanity properties.
//!
//! The paper's §5 equivalence claims (chunked and external archiving
//! reconstruct the same database as whole-document archiving) are stated
//! once, as [`archive_equiv`] over the `VersionStore` contract, and run
//! against every backend the `ArchiveBuilder` can produce.

use xarch::core::{equiv_modulo_key_order, Archive, Compaction};
use xarch::datagen::omim::{omim_spec, OmimGen};
use xarch::datagen::swissprot::{swissprot_spec, SwissProtGen};
use xarch::datagen::xmark::{xmark_spec, XmarkGen};
use xarch::diff::{IncrementalRepo, Weave};
use xarch::extmem::IoConfig;
use xarch::keys::{validate, KeySpec};
use xarch::xml::writer::to_pretty_string;
use xarch::xml::{parse, Document};
use xarch::{ArchiveBuilder, Backend, VersionStore};

/// Every backend configuration the builder offers, labelled.
fn all_backends(spec: &KeySpec) -> Vec<(&'static str, Box<dyn VersionStore>)> {
    let ext_cfg = IoConfig {
        mem_bytes: 4 << 10, // small enough to force spines and merge runs
        page_bytes: 256,
    };
    vec![
        ("in-memory", ArchiveBuilder::new(spec.clone()).build()),
        (
            "in-memory/weave",
            ArchiveBuilder::new(spec.clone())
                .compaction(Compaction::Weave)
                .build(),
        ),
        (
            "chunked(3)",
            ArchiveBuilder::new(spec.clone()).chunks(3).build(),
        ),
        (
            "extmem",
            ArchiveBuilder::new(spec.clone())
                .backend(Backend::ExtMem(ext_cfg))
                .build(),
        ),
    ]
}

/// The paper's equivalence claim, generically: archiving `versions` and
/// retrieving them — materialized and streamed — reconstructs every
/// version, whatever the storage tier.
fn archive_equiv(store: &mut dyn VersionStore, versions: &[Document], label: &str) {
    for d in versions {
        store.add_version(d).unwrap();
    }
    assert_eq!(store.latest() as usize, versions.len(), "{label}: latest");
    for (i, d) in versions.iter().enumerate() {
        let v = i as u32 + 1;
        assert!(store.has_version(v), "{label}: has_version({v})");
        let got = store
            .retrieve(v)
            .unwrap()
            .unwrap_or_else(|| panic!("{label}: version {v} missing"));
        assert!(
            equiv_modulo_key_order(&got, d, store.spec()),
            "{label}: version {v} mismatch"
        );
        let mut bytes = Vec::new();
        assert!(
            store.retrieve_into(v, &mut bytes).unwrap(),
            "{label}: streamed version {v} missing"
        );
        let reparsed = parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert!(
            equiv_modulo_key_order(&reparsed, d, store.spec()),
            "{label}: streamed version {v} mismatch"
        );
    }
    assert!(!store.has_version(0), "{label}: version 0");
    assert!(
        !store.has_version(versions.len() as u32 + 1),
        "{label}: future version"
    );
}

fn pipeline(versions: &[Document], spec: &xarch::keys::KeySpec) {
    // validate every version
    for (i, d) in versions.iter().enumerate() {
        let v = validate(d, spec);
        assert!(v.is_empty(), "version {} violates keys: {v:?}", i + 1);
    }
    // one generic equivalence suite, every backend
    for (label, mut store) in all_backends(spec) {
        archive_equiv(store.as_mut(), versions, label);
    }
    // in-memory extras: merge invariants (both compaction modes), the
    // Fig-5 XML round trip, and lossless XMill-style compression of the
    // archive document
    let mut weave = Archive::with_compaction(spec.clone(), Compaction::Weave);
    let mut a = Archive::new(spec.clone());
    for d in versions {
        a.add_version(d).unwrap();
        a.check_invariants().unwrap();
        weave.add_version(d).unwrap();
        weave.check_invariants().unwrap();
    }
    let xml_text = a.to_xml_pretty();
    let reparsed = parse(&xml_text).unwrap();
    let b = xarch::core::xmlrep::from_xml(&reparsed, spec).unwrap();
    for (i, d) in versions.iter().enumerate() {
        let got = b.retrieve(i as u32 + 1).unwrap();
        assert!(
            equiv_modulo_key_order(&got, d, spec),
            "XML round trip: version {}",
            i + 1
        );
    }
    let doc = a.to_xml();
    let compressed = xarch::compress::xml_compress(&doc);
    let back = xarch::compress::xml_decompress(&compressed).unwrap();
    assert!(xarch::xml::value_equal(
        &doc,
        doc.root(),
        &back,
        back.root()
    ));
    // diff repositories agree on the texts (normalized to no trailing
    // newline — the repositories are line-based)
    let mut inc = IncrementalRepo::new();
    let mut weave = Weave::new();
    let texts: Vec<String> = versions
        .iter()
        .map(|d| to_pretty_string(d, 0).trim_end().to_owned())
        .collect();
    for t in &texts {
        inc.add_version(t);
        weave.add_version(t);
    }
    for (i, t) in texts.iter().enumerate() {
        assert_eq!(inc.retrieve(i + 1).as_deref(), Some(t.as_str()));
        assert_eq!(weave.retrieve(i as u32 + 1).as_deref(), Some(t.as_str()));
    }
}

#[test]
fn omim_pipeline() {
    let mut g = OmimGen::new(101);
    g.del_ratio = 0.02;
    g.ins_ratio = 0.05;
    g.mod_ratio = 0.02;
    pipeline(&g.sequence(40, 6), &omim_spec());
}

#[test]
fn swissprot_pipeline() {
    pipeline(&SwissProtGen::new(102).sequence(12, 4), &swissprot_spec());
}

#[test]
fn xmark_random_change_pipeline() {
    let mut g = XmarkGen::new(103);
    pipeline(&g.random_change_sequence(25, 5, 10.0), &xmark_spec());
}

#[test]
fn xmark_key_mutation_pipeline() {
    let mut g = XmarkGen::new(104);
    pipeline(&g.key_mutation_sequence(25, 5, 10.0), &xmark_spec());
}

#[test]
fn figure_sanity_properties_hold() {
    // The figure-level shapes the paper reports, at test scale: cumulative
    // diffs dominate incremental; xmill(archive) beats gzip(inc diffs).
    let scale = xarch_bench_scale();
    xarch_bench::figures::sanity(&scale).unwrap();
}

#[test]
fn queries_figure_shows_sublinear_indexed_probes() {
    // The §7 claim the temporal query engine reproduces: indexed probe
    // counts grow sublinearly in the version count while the
    // full-retrieve-then-filter scan tracks archive size.
    let scale = xarch_bench_scale();
    xarch_bench::figures::queries_sanity(&scale).unwrap();
}

#[test]
fn ingest_figure_shows_group_commit_speedup() {
    // The bulk-ingest acceptance gate: batched durable ingest (batch 64,
    // one group-committed block + one fsync per batch) must run at least
    // 2x the one-at-a-time durable rate, and batching must never hurt
    // the in-memory backend.
    let scale = xarch_bench_scale();
    xarch_bench::figures::ingest_sanity(&scale).unwrap();
}

#[test]
fn durability_figure_shows_flat_checkpointed_reopen_and_cold_reads() {
    // The checkpoint + cold-read acceptance gate: a checkpointed reopen
    // replays a bounded tail regardless of history length, and a cold
    // retrieve decodes only its block's bytes off the mmap'd segment —
    // never the whole archive.
    let scale = xarch_bench_scale();
    xarch_bench::figures::durability_sanity(&scale).unwrap();
}

#[test]
fn concurrency_figure_shows_wait_free_read_scaling() {
    // The publication-protocol acceptance gate: 8 snapshot readers never
    // contend with each other, an actively-merging writer cannot collapse
    // their throughput (merges divert readers to the passive instance
    // instead of blocking them), and on multi-core machines reads scale
    // past one thread even while the writer races.
    let scale = xarch_bench_scale();
    xarch_bench::figures::concurrency_sanity(&scale).unwrap();
}

#[test]
fn service_figure_shows_ingest_does_not_starve_network_readers() {
    // The serving acceptance gate: with 4 client connections streaming
    // retrieves over real sockets, queries/sec during concurrent ingest
    // must stay within 5x of the idle rate — the single-writer /
    // multi-reader handle means merges tax readers but never starve them.
    let scale = xarch_bench_scale();
    xarch_bench::figures::service_sanity(&scale).unwrap();
}

fn xarch_bench_scale() -> xarch_bench::figures::Scale {
    // large enough that the compression margin (which grows with version
    // count) is decisive, small enough for test time
    xarch_bench::figures::Scale {
        omim_records: 250,
        omim_versions: 40,
        sp_records: 10,
        sp_versions: 5,
        xmark_items: 30,
        xmark_versions: 5,
    }
}

#[test]
fn worst_case_shape_archive_larger_than_diffs() {
    // Fig 14's premise: under key mutation the archive stores mutated items
    // twice while the diff repository stores a one-line change.
    let mut g = XmarkGen::new(105);
    let versions = g.key_mutation_sequence(60, 8, 10.0);
    let mut a = Archive::new(xmark_spec());
    let mut inc = IncrementalRepo::new();
    for d in &versions {
        a.add_version(d).unwrap();
        inc.add_version(&to_pretty_string(d, 0));
    }
    assert!(
        a.size_bytes() > inc.size_bytes() * 5 / 4,
        "archive {} should clearly exceed inc diffs {} in the worst case",
        a.size_bytes(),
        inc.size_bytes()
    );
}

#[test]
fn accretive_shape_archive_competitive_with_diffs() {
    // Fig 11a/12a's premise: on accretive data the archive tracks the
    // incremental-diff repository closely.
    let versions = OmimGen::new(106).sequence(60, 12);
    let mut a = Archive::new(omim_spec());
    let mut inc = IncrementalRepo::new();
    for d in &versions {
        a.add_version(d).unwrap();
        inc.add_version(&to_pretty_string(d, 0));
    }
    let ratio = a.size_bytes() as f64 / inc.size_bytes() as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "archive/inc ratio {ratio} out of the accretive band"
    );
}
