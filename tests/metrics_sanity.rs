//! The metrics sanity gate: the observability layer's numbers must match
//! the *structural* promises the backends make, not merely be plausible.
//!
//! * group commit: a 64-version batch through a durable store costs
//!   exactly ONE fsync, read off the registry (`segment.fsyncs`) — the
//!   same invariant `examples/bulk_load.rs` proves from the storage
//!   layer's own accessors, now visible to operators;
//! * after a conformance-style matrix run over every backend, every query
//!   kind has a populated latency histogram and the ingest counters agree
//!   with what was merged.

use xarch::core::KeyQuery;
use xarch::extmem::IoConfig;
use xarch::keys::KeySpec;
use xarch::obs::Obs;
use xarch::xml::parse;
use xarch::{ArchiveBuilder, Backend};

fn spec() -> KeySpec {
    KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
}

/// Version `i` holds records `1..=i`.
fn doc(i: u32) -> xarch::xml::Document {
    let mut s = String::from("<db>");
    for r in 1..=i {
        s.push_str(&format!("<rec><id>{r}</id><val>r{r}v{i}</val></rec>"));
    }
    s.push_str("</db>");
    parse(&s).unwrap()
}

const QUERY_HISTOGRAMS: [&str; 6] = [
    "query.retrieve.duration",
    "query.as_of.duration",
    "query.history.duration",
    "query.history_values.duration",
    "query.range.duration",
    "query.diff.duration",
];

struct Scratch(std::path::PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn batch_of_64_costs_exactly_one_fsync_via_registry() {
    let path = xarch::storage::scratch_path("metrics-sanity-fsync");
    let _guard = Scratch(path.clone());
    let obs = Obs::disconnected();
    let mut store = ArchiveBuilder::new(spec())
        .durable(&path)
        .with_observability(obs.clone())
        .try_build()
        .expect("durable store opens");

    let batch: Vec<_> = (1..=64).map(doc).collect();
    let assigned = store.add_versions(&batch).expect("batch commits");
    assert_eq!(assigned.len(), 64);

    let r = obs.registry();
    let fsyncs = r.get_counter("segment.fsyncs").expect("registered").get();
    assert_eq!(
        fsyncs, 1,
        "group commit: one multi-version block, one commit word, one \
         fsync for the whole batch (the superblock write at create is \
         not a commit)"
    );
    assert_eq!(
        r.get_counter("segment.blocks_written").unwrap().get(),
        1,
        "the batch landed as one journal block"
    );
    assert_eq!(r.get_counter("ingest.versions").unwrap().get(), 64);
    assert_eq!(r.get_counter("ingest.batches").unwrap().get(), 1);
    assert_eq!(
        r.get_histogram("ingest.batch_merge_duration")
            .unwrap()
            .count(),
        1,
        "one whole-batch latency sample"
    );

    // a serial load for comparison: each commit pays its own fsync
    drop(store);
    let path2 = xarch::storage::scratch_path("metrics-sanity-fsync-serial");
    let _guard2 = Scratch(path2.clone());
    let obs2 = Obs::disconnected();
    let mut serial = ArchiveBuilder::new(spec())
        .durable(&path2)
        .with_observability(obs2.clone())
        .try_build()
        .expect("durable store opens");
    for i in 1..=4 {
        serial.add_version(&doc(i)).expect("commit");
    }
    assert_eq!(
        obs2.registry().get_counter("segment.fsyncs").unwrap().get(),
        4,
        "serial ingest pays one fsync per version"
    );
}

#[test]
fn every_query_kind_populates_its_histogram_on_every_backend() {
    let durable_path = xarch::storage::scratch_path("metrics-sanity-matrix");
    let _guard = Scratch(durable_path.clone());
    let small_io = IoConfig {
        mem_bytes: 2 << 10,
        page_bytes: 256,
    };
    let matrix: Vec<(&str, ArchiveBuilder)> = vec![
        ("in-memory", ArchiveBuilder::new(spec())),
        (
            "in-memory/indexed",
            ArchiveBuilder::new(spec()).with_index(),
        ),
        ("chunked(4)", ArchiveBuilder::new(spec()).chunks(4)),
        (
            "chunked(4)/indexed",
            ArchiveBuilder::new(spec()).chunks(4).with_index(),
        ),
        (
            "extmem",
            ArchiveBuilder::new(spec()).backend(Backend::ExtMem(small_io)),
        ),
        (
            "durable/indexed",
            ArchiveBuilder::new(spec())
                .with_index()
                .durable(&durable_path),
        ),
    ];

    for (label, builder) in matrix {
        let obs = Obs::disconnected();
        let mut store = builder
            .with_observability(obs.clone())
            .try_build()
            .unwrap_or_else(|e| panic!("{label}: build failed: {e}"));

        store.add_version(&doc(1)).expect("v1");
        store.add_versions(&[doc(2), doc(3)]).expect("batch");

        let q = [
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        assert!(store.retrieve(2).expect("retrieve").is_some(), "{label}");
        assert!(store.as_of(&q, 1).expect("as_of").is_some(), "{label}");
        assert!(store.history(&q).expect("history").is_some(), "{label}");
        assert!(
            store.history_values(&q).expect("history_values").is_some(),
            "{label}"
        );
        assert!(
            !store
                .range(&[KeyQuery::new("db")], 1..=3)
                .expect("range")
                .is_empty(),
            "{label}"
        );
        assert!(!store.diff(&q, 1, 3).expect("diff").is_same(), "{label}");

        let r = obs.registry();
        for name in QUERY_HISTOGRAMS {
            let h = r
                .get_histogram(name)
                .unwrap_or_else(|| panic!("{label}: {name} not registered"));
            assert!(h.count() > 0, "{label}: {name} recorded nothing");
        }
        assert_eq!(
            r.get_counter("ingest.versions").unwrap().get(),
            3,
            "{label}"
        );
        assert_eq!(r.get_counter("ingest.batches").unwrap().get(), 1, "{label}");

        // the exposition writers agree with the registry
        let text = obs.render_prometheus();
        assert!(text.contains("ingest_versions 3"), "{label}:\n{text}");
        assert!(
            text.contains("query_retrieve_duration_count"),
            "{label}:\n{text}"
        );
        let json = obs.render_json();
        assert!(
            json.contains("\"ingest.versions\": {\"kind\": \"counter\""),
            "{label}:\n{json}"
        );
        drop(store);
    }
}

#[test]
fn indexed_probe_counters_flow_through_the_registry() {
    let obs = Obs::disconnected();
    let mut store = ArchiveBuilder::new(spec())
        .with_index()
        .with_observability(obs.clone())
        .try_build()
        .expect("indexed store builds");
    for i in 1..=4 {
        store.add_version(&doc(i)).expect("commit");
    }
    let q = [
        KeyQuery::new("db"),
        KeyQuery::new("rec").with_text("id", "2"),
    ];
    assert!(store.as_of(&q, 3).expect("as_of").is_some());
    let r = obs.registry();
    assert!(
        r.get_counter("index.history.comparisons")
            .expect("bound")
            .get()
            > 0,
        "locate spent comparisons"
    );
    assert!(
        r.get_counter("index.timestamp.probes")
            .expect("bound")
            .get()
            > 0,
        "subtree emit spent probes"
    );
}
