//! Crash, corruption, and recovery paths of the durable backend — the
//! process-restart story the ephemeral backends cannot tell.
//!
//! The acceptance bar: every *acknowledged* version is retrievable after a
//! kill-and-reopen, byte-identical to the in-memory backend's output,
//! including when the file ends in a torn (uncommitted) write. Corruption
//! of committed data must fail loudly with `StoreError::Corrupt`, not
//! deliver wrong versions.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use xarch::datagen::omim::{omim_spec, OmimGen};
use xarch::keys::KeySpec;
use xarch::storage::scratch_path;
use xarch::xml::parse;
use xarch::{ArchiveBuilder, DurableArchive, StoreError, StoreReader, VersionStore};

fn spec() -> KeySpec {
    KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
}

fn versions() -> Vec<xarch::xml::Document> {
    [
        "<db><rec><id>1</id><val>a</val></rec></db>",
        "<db><rec><id>1</id><val>b</val></rec><rec><id>2</id><val>c</val></rec></db>",
        "<db><rec><id>2</id><val>c2</val></rec></db>",
    ]
    .iter()
    .map(|s| parse(s).unwrap())
    .collect()
}

fn reopen(path: &Path) -> Result<Box<dyn VersionStore>, StoreError> {
    ArchiveBuilder::new(spec()).durable(path).try_build()
}

/// Streams version `v` out of `store`, asserting it exists.
fn bytes_of(store: &mut dyn VersionStore, v: u32) -> Vec<u8> {
    let mut out = Vec::new();
    assert!(store.retrieve_into(v, &mut out).unwrap(), "version {v}");
    out
}

#[test]
fn kill_and_reopen_recovers_every_acknowledged_version() {
    let path = scratch_path("kill-reopen");
    let docs = versions();
    let mut reference = ArchiveBuilder::new(spec()).build();
    {
        let mut durable = reopen(&path).unwrap();
        for d in &docs {
            reference.add_version(d).unwrap();
            durable.add_version(d).unwrap();
        }
        // no shutdown protocol: dropping here models `kill -9` — every
        // acknowledged commit is already synced
    }
    let mut recovered = reopen(&path).unwrap();
    assert_eq!(recovered.latest(), docs.len() as u32);
    for v in 1..=docs.len() as u32 {
        assert_eq!(
            bytes_of(recovered.as_mut(), v),
            bytes_of(reference.as_mut(), v),
            "v{v} diverged from the never-closed in-memory store"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_final_write_is_truncated_and_all_committed_versions_survive() {
    let path = scratch_path("torn-tail");
    let docs = versions();
    let mut reference = ArchiveBuilder::new(spec()).build();
    {
        let mut durable = reopen(&path).unwrap();
        for d in &docs {
            reference.add_version(d).unwrap();
            durable.add_version(d).unwrap();
        }
    }
    // simulate a crash mid-append of version 4: header + part of a payload,
    // commit word never written
    let torn = [1u8, 0, 4, 0, 0, 0, 200, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3];
    let mut f = OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(&torn).unwrap();
    drop(f);

    let mut store = ArchiveBuilder::new(spec())
        .durable(&path)
        .try_build()
        .unwrap();
    assert_eq!(store.latest(), docs.len() as u32);
    for v in 1..=docs.len() as u32 {
        assert_eq!(
            bytes_of(store.as_mut(), v),
            bytes_of(reference.as_mut(), v),
            "v{v} diverged after torn-tail recovery"
        );
    }
    drop(store);

    // the recovery stats record the cleanup, and the torn bytes are gone
    // from the file itself
    let inner = ArchiveBuilder::new(spec()).build();
    let d = DurableArchive::open(&path, inner).unwrap();
    assert!(!d.recovery().recovered_torn_tail(), "second open is clean");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_tail_recovery_reports_stats() {
    let path = scratch_path("torn-stats");
    {
        let mut durable = reopen(&path).unwrap();
        for d in &versions() {
            durable.add_version(d).unwrap();
        }
    }
    let torn = [1u8, 0, 4, 0, 0, 0, 99];
    let mut f = OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(&torn).unwrap();
    drop(f);
    let d = DurableArchive::open(&path, ArchiveBuilder::new(spec()).build()).unwrap();
    let stats = d.recovery();
    assert_eq!(stats.versions_recovered, 3);
    assert_eq!(stats.truncated_bytes, torn.len() as u64);
    assert!(stats.recovered_torn_tail());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bit_flip_in_block_body_is_rejected_with_offset() {
    let path = scratch_path("bit-flip");
    let superblock_end;
    {
        let mut durable = DurableArchive::open(&path, ArchiveBuilder::new(spec()).build()).unwrap();
        superblock_end = durable.journal_bytes();
        let docs = versions();
        for d in &docs {
            durable.add_version(d).unwrap();
        }
    }
    // flip one bit inside the first block's payload
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    let flip_at = superblock_end + 30; // past the 22-byte header, inside the body
    f.seek(SeekFrom::Start(flip_at)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(flip_at)).unwrap();
    f.write_all(&[b[0] ^ 0x10]).unwrap();
    drop(f);

    let err = reopen(&path).map(|_| ()).unwrap_err();
    match err {
        StoreError::Corrupt { offset, ref reason } => {
            assert_eq!(
                offset, superblock_end,
                "offset should point at the bad block"
            );
            assert!(reason.contains("checksum"), "{reason}");
        }
        other => panic!("expected Corrupt, got {other}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncation_mid_block_keeps_all_fully_committed_versions() {
    let path = scratch_path("truncate-mid");
    let docs = versions();
    let commit_points: Vec<u64>;
    {
        let mut durable = DurableArchive::open(&path, ArchiveBuilder::new(spec()).build()).unwrap();
        commit_points = docs
            .iter()
            .map(|d| {
                durable.add_version(d).unwrap();
                durable.journal_bytes()
            })
            .collect();
    }
    // cut the file in the middle of the final block: versions 1..n-1 must
    // all come back, the uncommitted remainder is truncated away
    let cut = (commit_points[1] + commit_points[2]) / 2;
    let f = OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(cut).unwrap();
    drop(f);

    let mut store = reopen(&path).unwrap();
    assert_eq!(store.latest(), 2, "the two fully committed versions");
    let mut reference = ArchiveBuilder::new(spec()).build();
    for d in &docs[..2] {
        reference.add_version(d).unwrap();
    }
    for v in 1..=2 {
        assert_eq!(
            bytes_of(store.as_mut(), v),
            bytes_of(reference.as_mut(), v),
            "v{v} diverged after mid-block truncation"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_batch_block_recovers_to_the_pre_batch_state() {
    // Group commit's acceptance bar: a batch is ONE block with one commit
    // word, so a crash anywhere inside the batch append must recover the
    // pre-batch state with accurate stats — all-or-nothing, NEVER a
    // prefix of the batch. Simulated by truncating the multi-version
    // block at byte offsets spanning its whole extent.
    let docs = versions();
    let head = &docs[0];
    let batch = &docs[1..];
    // a reference segment tells us the batch block's byte extent
    let (pre_batch_end, file_end) = {
        let path = scratch_path("torn-batch-ref");
        let mut d = reopen(&path).unwrap();
        d.add_version(head).unwrap();
        let pre = std::fs::metadata(&path).unwrap().len();
        d.add_versions(batch).unwrap();
        drop(d);
        let end = std::fs::metadata(&path).unwrap().len();
        std::fs::remove_file(&path).unwrap();
        (pre, end)
    };
    let mut reference = ArchiveBuilder::new(spec()).build();
    reference.add_version(head).unwrap();
    let batch_len = file_end - pre_batch_end;
    // cut right after the batch started, mid-payload, and one byte short
    // of the commit word
    for cut in [
        pre_batch_end + 1,
        pre_batch_end + batch_len / 3,
        pre_batch_end + batch_len / 2,
        file_end - 1,
    ] {
        let path = scratch_path("torn-batch");
        {
            let mut d = reopen(&path).unwrap();
            d.add_version(head).unwrap();
            d.add_versions(batch).unwrap();
        }
        assert_eq!(std::fs::metadata(&path).unwrap().len(), file_end);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let inner = ArchiveBuilder::new(spec()).build();
        let mut d = DurableArchive::open(&path, inner).unwrap();
        assert_eq!(
            d.latest(),
            1,
            "cut at {cut}: a torn batch must restore zero of its versions"
        );
        let stats = d.recovery();
        assert_eq!(stats.versions_recovered, 1, "cut at {cut}");
        assert_eq!(stats.truncated_bytes, cut - pre_batch_end, "cut at {cut}");
        assert!(stats.recovered_torn_tail(), "cut at {cut}");
        assert_eq!(
            bytes_of(&mut d, 1),
            bytes_of(reference.as_mut(), 1),
            "cut at {cut}: surviving version diverged"
        );
        // and the store keeps working: the batch can simply be re-ingested
        assert_eq!(d.add_versions(batch).unwrap(), vec![2, 3]);
        assert_eq!(d.latest(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn bit_flip_inside_a_committed_batch_block_is_corrupt_with_offset() {
    // an interior batch block that fails its checksum is bit rot on
    // committed, acknowledged data: reopen must fail loudly with the
    // block's offset, not silently drop or repair the batch
    let path = scratch_path("batch-bit-flip");
    let docs = versions();
    let batch_at;
    {
        let mut d = DurableArchive::open(&path, ArchiveBuilder::new(spec()).build()).unwrap();
        batch_at = d.journal_bytes();
        d.add_versions(&docs[..2]).unwrap();
        // a later plain block makes the batch block *interior*
        d.add_version(&docs[2]).unwrap();
    }
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    let flip_at = batch_at + 40; // past the 22-byte header, inside the batch payload
    f.seek(SeekFrom::Start(flip_at)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(flip_at)).unwrap();
    f.write_all(&[b[0] ^ 0x04]).unwrap();
    drop(f);

    let err = reopen(&path).map(|_| ()).unwrap_err();
    match err {
        StoreError::Corrupt { offset, ref reason } => {
            assert_eq!(offset, batch_at, "offset should point at the batch block");
            assert!(reason.contains("checksum"), "{reason}");
        }
        other => panic!("expected Corrupt, got {other}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn empty_batch_writes_no_journal_block() {
    // the no-op contract at the journal level: no block, no version, no
    // fsync side effects — the file is byte-identical before and after
    let path = scratch_path("empty-batch");
    let mut d = DurableArchive::open(&path, ArchiveBuilder::new(spec()).build()).unwrap();
    d.add_version(&versions()[0]).unwrap();
    let before = std::fs::metadata(&path).unwrap().len();
    assert_eq!(d.add_versions(&[]).unwrap(), Vec::<u32>::new());
    assert_eq!(d.latest(), 1);
    assert_eq!(d.journal_bytes(), before);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
    drop(d);
    let d = DurableArchive::open(&path, ArchiveBuilder::new(spec()).build()).unwrap();
    assert_eq!(d.latest(), 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn batched_history_survives_reopen_byte_identically() {
    // the kill-and-reopen acceptance check with group-committed batches
    // mixed into the history: recovery replays batch blocks atomically
    // through the inner store's own batch path
    let path = scratch_path("batch-reopen");
    let sp = omim_spec();
    let mut g = OmimGen::new(0xBEE5);
    g.del_ratio = 0.05;
    g.ins_ratio = 0.07;
    let docs = g.sequence(30, 9);
    let mut reference = ArchiveBuilder::new(sp.clone()).build();
    {
        let mut durable = ArchiveBuilder::new(sp.clone())
            .durable(&path)
            .try_build()
            .unwrap();
        // single adds, a 3-batch, an empty version, then a 5-batch
        reference.add_version(&docs[0]).unwrap();
        durable.add_version(&docs[0]).unwrap();
        reference.add_versions(&docs[1..4]).unwrap();
        durable.add_versions(&docs[1..4]).unwrap();
        reference.add_empty_version().unwrap();
        durable.add_empty_version().unwrap();
        reference.add_versions(&docs[4..9]).unwrap();
        durable.add_versions(&docs[4..9]).unwrap();
    }
    let recovered = ArchiveBuilder::new(sp).durable(&path).try_build().unwrap();
    assert_eq!(recovered.latest(), reference.latest());
    for v in 1..=reference.latest() {
        let mut want = Vec::new();
        let mut got = Vec::new();
        let w = reference.retrieve_into(v, &mut want).unwrap();
        let g = recovered.retrieve_into(v, &mut got).unwrap();
        assert_eq!(w, g, "v{v} existence");
        assert_eq!(want, got, "v{v} bytes");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn key_spec_mismatch_is_a_clear_error() {
    let path = scratch_path("spec-mismatch");
    {
        let mut durable = reopen(&path).unwrap();
        durable.add_version(&versions()[0]).unwrap();
    }
    let other = KeySpec::parse("(/, (db, {}))\n(/db, (item, {sku}))").unwrap();
    let err = ArchiveBuilder::new(other)
        .durable(&path)
        .try_build()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, StoreError::Backend(_)), "{err}");
    assert!(err.to_string().contains("key spec mismatch"), "{err}");
    // the original spec still opens fine — the mismatch probe must not
    // have damaged the file
    let store = reopen(&path).unwrap();
    assert_eq!(store.latest(), 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn larger_workload_survives_reopen_byte_identically() {
    // the acceptance check at datagen scale, with empty versions mixed in
    let path = scratch_path("omim-reopen");
    let spec = omim_spec();
    let mut g = OmimGen::new(0x5EED);
    g.del_ratio = 0.05;
    g.ins_ratio = 0.07;
    let docs = g.sequence(40, 8);
    let mut reference = ArchiveBuilder::new(spec.clone()).build();
    {
        let mut durable = ArchiveBuilder::new(spec.clone())
            .durable(&path)
            .try_build()
            .unwrap();
        for (i, d) in docs.iter().enumerate() {
            reference.add_version(d).unwrap();
            durable.add_version(d).unwrap();
            if i == 3 {
                reference.add_empty_version().unwrap();
                durable.add_empty_version().unwrap();
            }
        }
    }
    let recovered = ArchiveBuilder::new(spec)
        .durable(&path)
        .try_build()
        .unwrap();
    assert_eq!(recovered.latest(), reference.latest());
    for v in 1..=reference.latest() {
        let mut want = Vec::new();
        let mut got = Vec::new();
        let w = reference.retrieve_into(v, &mut want).unwrap();
        let g = recovered.retrieve_into(v, &mut got).unwrap();
        assert_eq!(w, g, "v{v} existence");
        assert_eq!(want, got, "v{v} bytes");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn indexed_durable_answers_queries_after_reopen() {
    // Acceptance criterion: a durable indexed store answers `history` /
    // `as_of` / `range` after reopen without a full index rebuild — the
    // journal replay flows through the indexed inner store's incremental
    // `add_version` path, re-establishing the index as part of recovery.
    use xarch::core::KeyQuery;
    let path = scratch_path("durable-indexed-queries");
    let q1 = vec![
        KeyQuery::new("db"),
        KeyQuery::new("rec").with_text("id", "1"),
    ];
    let q2 = vec![
        KeyQuery::new("db"),
        KeyQuery::new("rec").with_text("id", "2"),
    ];
    {
        let mut d = ArchiveBuilder::new(spec())
            .with_index()
            .durable(&path)
            .try_build()
            .unwrap();
        for doc in versions() {
            d.add_version(&doc).unwrap();
        }
        d.add_empty_version().unwrap();
        assert_eq!(d.history(&q1).unwrap().unwrap().to_string(), "1-2");
    } // process "dies"
    let d = ArchiveBuilder::new(spec())
        .with_index()
        .durable(&path)
        .try_build()
        .unwrap();
    assert_eq!(d.latest(), 4);
    // history answered from the replay-rebuilt index
    assert_eq!(d.history(&q1).unwrap().unwrap().to_string(), "1-2");
    assert_eq!(d.history(&q2).unwrap().unwrap().to_string(), "2-3");
    // as_of via indexed descent + pruned emit
    let sub = d.as_of(&q1, 2).unwrap().expect("rec 1 at v2");
    let compact = xarch::xml::writer::to_compact_string(&sub);
    assert!(compact.contains("<val>b</val>"), "{compact}");
    assert!(d.as_of(&q1, 3).unwrap().is_none(), "rec 1 dead at v3");
    // range clamps to the queried window, across the empty version
    let hits = d.range(&[KeyQuery::new("db")], 1..=4).unwrap();
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].time.to_string(), "1-2");
    assert_eq!(hits[1].time.to_string(), "2-3");
    std::fs::remove_file(&path).unwrap();
}

fn checkpointed(path: &Path, every: u32) -> DurableArchive {
    let options = xarch::DurableOptions {
        checkpoint_every: Some(every),
        ..xarch::DurableOptions::default()
    };
    DurableArchive::open_with(path, options, ArchiveBuilder::new(spec()).build()).unwrap()
}

#[test]
fn kill_mid_checkpoint_write_recovers_the_pre_checkpoint_state() {
    // Cadence 3 with exactly 3 versions leaves the checkpoint as the
    // final block; truncating inside it at several offsets models a crash
    // at any point of the checkpoint append. A checkpoint is pure
    // redundancy, so every committed version must recover — the damaged
    // checkpoint is just a torn tail.
    let docs = versions();
    let path = scratch_path("cp-torn");
    let (cp_off, file_end) = {
        let mut d = checkpointed(&path, 3);
        for doc in &docs {
            d.add_version(doc).unwrap();
        }
        let off = d
            .last_checkpoint_offset()
            .expect("cadence 3 fired at version 3");
        (off, std::fs::metadata(&path).unwrap().len())
    };
    assert!(cp_off < file_end, "checkpoint is the tail block");
    let pristine = std::fs::read(&path).unwrap();
    let mut reference = ArchiveBuilder::new(spec()).build();
    for doc in &docs {
        reference.add_version(doc).unwrap();
    }
    for cut in [
        cp_off + 1,                       // header barely started
        cp_off + 10,                      // mid-header
        cp_off + (file_end - cp_off) / 2, // mid-payload
        file_end - 1,                     // one byte short of the commit word
    ] {
        std::fs::write(&path, &pristine).unwrap();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let mut d = checkpointed(&path, 3);
        assert_eq!(d.latest(), 3, "cut at {cut}");
        let stats = d.recovery();
        assert_eq!(stats.versions_recovered, 3, "cut at {cut}");
        assert!(stats.recovered_torn_tail(), "cut at {cut}");
        assert!(
            !stats.checkpoint_loaded,
            "cut at {cut}: the only checkpoint was torn"
        );
        assert_eq!(stats.truncated_bytes, cut - cp_off, "cut at {cut}");
        for v in 1..=3 {
            assert_eq!(
                bytes_of(&mut d, v),
                bytes_of(reference.as_mut(), v),
                "cut at {cut}: v{v} diverged"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bit_flip_inside_a_committed_checkpoint_is_skipped_loudly() {
    // Bit rot inside a committed checkpoint must not take the archive
    // down — the journal it summarizes is still intact. Recovery skips
    // the damaged checkpoint with a positioned warning event plus the
    // `recovery.checkpoints_skipped` counter, falls back to the previous
    // intact checkpoint, and still recovers every version.
    use xarch::storage::block::BLOCK_HEADER_LEN;
    let path = scratch_path("cp-bit-flip");
    let docs = versions();
    let newest_cp = {
        let mut d = checkpointed(&path, 2);
        for doc in &docs {
            d.add_version(doc).unwrap();
        }
        // a fourth version fires the second checkpoint, and a fifth puts
        // a committed block BEHIND it — rot in the file's final block is
        // indistinguishable from a torn append and is truncated instead,
        // so the interior position is what this test is about
        d.add_empty_version().unwrap();
        assert_eq!(d.checkpoints_written(), 2);
        let cp = d.last_checkpoint_offset().unwrap();
        d.add_empty_version().unwrap();
        cp
    };
    // flip one bit in the newest checkpoint's payload
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    let flip_at = newest_cp + BLOCK_HEADER_LEN as u64 + 3;
    f.seek(SeekFrom::Start(flip_at)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(flip_at)).unwrap();
    f.write_all(&[b[0] ^ 0x20]).unwrap();
    drop(f);

    let obs = xarch::obs::Obs::disconnected();
    let options = xarch::DurableOptions {
        checkpoint_every: Some(2),
        ..xarch::DurableOptions::default()
    };
    let mut d =
        DurableArchive::open_observed(&path, options, ArchiveBuilder::new(spec()).build(), &obs)
            .unwrap();
    assert_eq!(d.latest(), 5);
    let stats = d.recovery();
    assert_eq!(stats.versions_recovered, 5);
    assert!(
        stats.checkpoint_loaded,
        "the older intact checkpoint still fast-paths the reopen"
    );
    let skipped = obs
        .registry()
        .get_counter("recovery.checkpoints_skipped")
        .expect("registered")
        .get();
    assert!(skipped >= 1, "damaged checkpoint counted: {skipped}");
    // the skip is loud: a traced event names the corrupt offset
    let events = obs.recent_events();
    let warned = events.iter().any(|e| {
        e.target.contains("checkpoint")
            && e.fields
                .iter()
                .any(|(k, v)| *k == "offset" && v.parse::<u64>().is_ok())
    });
    assert!(warned, "no positioned checkpoint-skip event in {events:?}");
    // and the recovered contents are undamaged
    let mut reference = ArchiveBuilder::new(spec()).build();
    for doc in &docs {
        reference.add_version(doc).unwrap();
    }
    reference.add_empty_version().unwrap();
    reference.add_empty_version().unwrap();
    for v in 1..=3 {
        assert_eq!(
            bytes_of(&mut d, v),
            bytes_of(reference.as_mut(), v),
            "v{v} diverged after checkpoint fallback"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bit_flip_in_the_only_checkpoint_falls_back_to_full_replay() {
    let path = scratch_path("cp-only-flip");
    let docs = versions();
    let cp_off = {
        let mut d = checkpointed(&path, 3);
        for doc in &docs {
            d.add_version(doc).unwrap();
        }
        assert_eq!(d.checkpoints_written(), 1);
        d.last_checkpoint_offset().unwrap()
    };
    let mut bytes = std::fs::read(&path).unwrap();
    let flip_at = cp_off as usize + xarch::storage::block::BLOCK_HEADER_LEN + 1;
    bytes[flip_at] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let mut d = checkpointed(&path, 3);
    assert_eq!(d.latest(), 3);
    let stats = d.recovery();
    assert!(!stats.checkpoint_loaded, "no intact checkpoint to load");
    assert_eq!(stats.versions_recovered, 3, "full replay still recovers");
    let mut reference = ArchiveBuilder::new(spec()).build();
    for doc in &docs {
        reference.add_version(doc).unwrap();
    }
    for v in 1..=3 {
        assert_eq!(bytes_of(&mut d, v), bytes_of(reference.as_mut(), v), "v{v}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpointed_reopen_is_equivalent_at_datagen_scale() {
    // the larger-workload acceptance check with checkpoints in the file:
    // reopen through a checkpoint must be byte-identical to a full replay
    // and to the never-closed in-memory reference
    let spec = omim_spec();
    let mut g = OmimGen::new(0xCAFE);
    g.del_ratio = 0.05;
    g.ins_ratio = 0.07;
    let docs = g.sequence(30, 10);
    let mut reference = ArchiveBuilder::new(spec.clone()).build();
    for d in &docs {
        reference.add_version(d).unwrap();
    }
    let path = scratch_path("cp-omim");
    {
        let mut durable = ArchiveBuilder::new(spec.clone())
            .checkpoint_every(4)
            .durable(&path)
            .try_build()
            .unwrap();
        for d in &docs {
            durable.add_version(d).unwrap();
        }
    }
    // reopen once with the checkpoint fast path, once with checkpointing
    // configured off (the blocks are still in the file and must be
    // transparently skipped by a full replay)
    for every in [4u32, 0] {
        let recovered = ArchiveBuilder::new(spec.clone())
            .checkpoint_every(every)
            .durable(&path)
            .try_build()
            .unwrap();
        assert_eq!(recovered.latest(), reference.latest(), "every={every}");
        for v in 1..=reference.latest() {
            let mut want = Vec::new();
            let mut got = Vec::new();
            reference.retrieve_into(v, &mut want).unwrap();
            recovered.retrieve_into(v, &mut got).unwrap();
            assert_eq!(want, got, "every={every}: v{v} bytes");
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bit_flip_sweep_never_panics_and_never_lies() {
    // Regression for the workspace `panic-freedom` invariant: corrupting
    // any single bit of a real segment file must produce either a loud
    // `StoreError` or a clean recovery — never a panic, and never a
    // recovered version whose bytes differ from what was committed.
    let path = scratch_path("bit-flip-sweep");
    let docs = versions();
    let mut reference = ArchiveBuilder::new(spec()).build();
    {
        let mut durable = reopen(&path).unwrap();
        for d in &docs {
            reference.add_version(d).unwrap();
            durable.add_version(d).unwrap();
        }
    }
    let pristine = std::fs::read(&path).unwrap();
    assert!(pristine.len() > 100, "segment unexpectedly small");

    // one flipped bit per byte position covers every field of the
    // superblock, every header, every payload byte, and every trailer
    for i in 0..pristine.len() {
        let mut mutated = pristine.clone();
        mutated[i] ^= 1 << (i % 8);
        std::fs::write(&path, &mutated).unwrap();
        match reopen(&path) {
            // loud, positioned failure is a correct answer
            Err(StoreError::Corrupt { .. }) | Err(StoreError::Backend(_)) => {}
            Err(other) => panic!("byte {i}: unexpected error class: {other}"),
            Ok(mut recovered) => {
                // recovery may truncate a torn-looking tail, but every
                // version it still claims must be byte-identical
                let latest = recovered.latest();
                assert!(
                    latest <= docs.len() as u32,
                    "byte {i}: recovered more versions than were committed"
                );
                for v in 1..=latest {
                    assert_eq!(
                        bytes_of(recovered.as_mut(), v),
                        bytes_of(reference.as_mut(), v),
                        "byte {i}: v{v} bytes diverged after recovery"
                    );
                }
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}
