//! The `VersionStore` conformance suite: one generic set of contract
//! checks, run against every backend `ArchiveBuilder` can produce. This is
//! where the trait's behavioural fine print lives — version numbering,
//! the `has_version` vs `retrieve -> None` distinction for archived-but-
//! empty versions, history lookups, statistics, and the equivalence of
//! materialized and streamed retrieval.

use xarch::core::query::{find_in_doc, subtree_doc};
use xarch::core::{equiv_modulo_key_order, Compaction, KeyQuery};
use xarch::datagen::omim::{omim_spec, OmimGen};
use xarch::extmem::IoConfig;
use xarch::keys::KeySpec;
use xarch::xml::parse;
use xarch::{ArchiveBuilder, Backend, StoreReader, VersionStore};

fn spec() -> KeySpec {
    KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
}

fn small_ext_cfg() -> IoConfig {
    IoConfig {
        mem_bytes: 2 << 10,
        page_bytes: 256,
    }
}

/// Removes the scratch segment files when a test finishes (the stores are
/// dropped first — bindings drop in reverse order — and unlink-while-open
/// is fine on unix anyway).
struct ScratchFiles(Vec<std::path::PathBuf>);

impl Drop for ScratchFiles {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// A labelled store under test.
type NamedStore = (&'static str, Box<dyn VersionStore>);

/// Every backend, built from the facade, as the acceptance criteria
/// require — each storage tier plain *and* with the query indexes
/// maintained (`.with_index()`), so the indexed fast paths answer the
/// same contract suite as the whole-retrieve fallbacks. The durable
/// backends journal to scratch segment files that the returned guard
/// deletes, so the whole contract suite also exercises the persistent
/// tier without littering the temp directory.
fn all_backends(spec: &KeySpec) -> (ScratchFiles, Vec<NamedStore>) {
    let durable_path = xarch::storage::scratch_path("conformance");
    let durable_chunked_path = xarch::storage::scratch_path("conformance-chunked");
    let durable_indexed_path = xarch::storage::scratch_path("conformance-indexed");
    let guard = ScratchFiles(vec![
        durable_path.clone(),
        durable_chunked_path.clone(),
        durable_indexed_path.clone(),
    ]);
    let backends = vec![
        ("in-memory", ArchiveBuilder::new(spec.clone()).build()),
        (
            "in-memory/weave",
            ArchiveBuilder::new(spec.clone())
                .compaction(Compaction::Weave)
                .build(),
        ),
        (
            "in-memory/indexed",
            ArchiveBuilder::new(spec.clone()).with_index().build(),
        ),
        (
            "chunked(4)",
            ArchiveBuilder::new(spec.clone()).chunks(4).build(),
        ),
        (
            "chunked(4)/indexed",
            ArchiveBuilder::new(spec.clone())
                .chunks(4)
                .with_index()
                .build(),
        ),
        (
            "extmem",
            ArchiveBuilder::new(spec.clone())
                .backend(Backend::ExtMem(small_ext_cfg()))
                .build(),
        ),
        (
            "extmem/indexed",
            ArchiveBuilder::new(spec.clone())
                .backend(Backend::ExtMem(small_ext_cfg()))
                .with_index()
                .build(),
        ),
        (
            "durable",
            ArchiveBuilder::new(spec.clone())
                .durable(durable_path)
                .try_build()
                .expect("durable store"),
        ),
        (
            "durable/chunked(4)",
            ArchiveBuilder::new(spec.clone())
                .chunks(4)
                .durable(durable_chunked_path)
                .try_build()
                .expect("durable store"),
        ),
        (
            "durable/indexed",
            ArchiveBuilder::new(spec.clone())
                .with_index()
                .durable(durable_indexed_path)
                .try_build()
                .expect("durable store"),
        ),
    ];
    (guard, backends)
}

#[test]
fn version_numbering_and_bounds() {
    let (_scratch, backends) = all_backends(&spec());
    for (label, mut s) in backends {
        assert_eq!(s.latest(), 0, "{label}");
        assert!(!s.has_version(0), "{label}");
        assert!(!s.has_version(1), "{label}");
        assert!(s.retrieve(0).unwrap().is_none(), "{label}");
        assert!(s.retrieve(1).unwrap().is_none(), "{label}");

        let v1 = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
        let v2 = parse("<db><rec><id>1</id><val>b</val></rec></db>").unwrap();
        assert_eq!(s.add_version(&v1).unwrap(), 1, "{label}");
        assert_eq!(s.add_version(&v2).unwrap(), 2, "{label}");
        assert_eq!(s.latest(), 2, "{label}");
        assert!(s.has_version(1) && s.has_version(2), "{label}");
        assert!(!s.has_version(3), "{label}");
        assert!(s.retrieve(3).unwrap().is_none(), "{label}");
    }
}

#[test]
fn snapshots_pin_reads_on_every_backend() {
    // Behind an ArchiveHandle, a snapshot taken at version P keeps
    // answering as of P — byte for byte — while merges continue. The
    // threaded stress variant lives in tests/concurrency.rs; this is the
    // single-threaded contract check across the whole backend matrix.
    let v1 = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
    let v2 = parse(
        "<db><rec><id>1</id><val>b</val></rec>\
         <rec><id>2</id><val>c</val></rec></db>",
    )
    .unwrap();
    let v3 = parse("<db><rec><id>3</id><val>d</val></rec></db>").unwrap();
    let q1 = [
        KeyQuery::new("db"),
        KeyQuery::new("rec").with_text("id", "1"),
    ];
    let q3 = [
        KeyQuery::new("db"),
        KeyQuery::new("rec").with_text("id", "3"),
    ];
    let (_scratch, backends) = all_backends(&spec());
    for (label, s) in backends {
        let handle = xarch::ArchiveHandle::new(s);
        handle.add_version(&v1).unwrap();
        handle.add_version(&v2).unwrap();
        // record what the archive answers at pin level 2 …
        let snap = handle.snapshot();
        assert_eq!(snap.pinned(), 2, "{label}");
        let mut want_v2 = Vec::new();
        assert!(snap.retrieve_into(2, &mut want_v2).unwrap(), "{label}");
        let want_hist = snap.history(&q1).unwrap().unwrap().to_string();
        let want_range = snap.range(&[KeyQuery::new("db")], 1..=u32::MAX).unwrap();
        // … then keep merging behind it
        handle.add_version(&v3).unwrap();
        handle.add_empty_version().unwrap();
        assert_eq!(handle.latest(), 4, "{label}");

        // the snapshot's world has not moved
        assert_eq!(snap.latest(), 2, "{label}");
        assert!(!snap.has_version(3), "{label}");
        assert!(snap.retrieve(3).unwrap().is_none(), "{label}");
        assert!(snap.history(&q3).unwrap().is_none(), "{label}");
        assert!(snap.as_of(&q3, 2).unwrap().is_none(), "{label}");
        let mut got_v2 = Vec::new();
        assert!(snap.retrieve_into(2, &mut got_v2).unwrap(), "{label}");
        assert_eq!(got_v2, want_v2, "{label}: pinned retrieve changed");
        assert_eq!(
            snap.history(&q1).unwrap().unwrap().to_string(),
            want_hist,
            "{label}: pinned history changed"
        );
        assert_eq!(
            snap.range(&[KeyQuery::new("db")], 1..=u32::MAX).unwrap(),
            want_range,
            "{label}: pinned range changed"
        );
        // while a fresh snapshot sees the later merges
        let live = handle.snapshot();
        assert_eq!(live.pinned(), 4, "{label}");
        assert!(live.history(&q3).unwrap().is_some(), "{label}");
    }
}

#[test]
fn archived_but_empty_versions_are_distinguishable() {
    let doc = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
    let (_scratch, backends) = all_backends(&spec());
    for (label, mut s) in backends {
        s.add_version(&doc).unwrap();
        assert_eq!(s.add_empty_version().unwrap(), 2, "{label}");
        // v2 exists…
        assert!(s.has_version(2), "{label}");
        // …but holds no document: retrieve is None, retrieve_into writes
        // nothing — exactly the `Archive::retrieve` contract.
        assert!(s.retrieve(2).unwrap().is_none(), "{label}");
        let mut bytes = Vec::new();
        assert!(!s.retrieve_into(2, &mut bytes).unwrap(), "{label}");
        assert!(bytes.is_empty(), "{label}");
        // the element's history ends at version 1
        let q = [
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        assert_eq!(s.history(&q).unwrap().unwrap().to_string(), "1", "{label}");
        // archiving resumes cleanly after the gap
        assert_eq!(s.add_version(&doc).unwrap(), 3, "{label}");
        let got = s.retrieve(3).unwrap().expect("resumed");
        assert!(equiv_modulo_key_order(&got, &doc, s.spec()), "{label}");
    }
}

#[test]
fn failed_add_leaves_store_unchanged() {
    // Regression: a rejected document (unkeyed root) must not mutate the
    // store — the chunked backend used to record the bad root tag before
    // merging, poisoning every later add.
    let good = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
    let bad = parse("<nope><rec><id>1</id></rec></nope>").unwrap();
    let (_scratch, backends) = all_backends(&spec());
    for (label, mut s) in backends {
        assert!(s.add_version(&bad).is_err(), "{label}");
        assert_eq!(s.latest(), 0, "{label}: failed add burned a version");
        // the store still works, with the correct root
        assert_eq!(s.add_version(&good).unwrap(), 1, "{label}");
        assert!(s.add_version(&bad).is_err(), "{label}");
        assert_eq!(s.latest(), 1, "{label}");
        let got = s.retrieve(1).unwrap().expect("archived");
        assert!(equiv_modulo_key_order(&got, &good, s.spec()), "{label}");
    }
}

#[test]
fn history_answers_match_across_backends() {
    let versions = [
        "<db><rec><id>1</id><val>a</val></rec></db>",
        "<db><rec><id>1</id><val>a</val></rec><rec><id>2</id><val>b</val></rec></db>",
        "<db><rec><id>2</id><val>b</val></rec></db>",
    ];
    let queries: Vec<(Vec<KeyQuery>, Option<&str>)> = vec![
        (vec![KeyQuery::new("db")], Some("1-3")),
        (
            vec![
                KeyQuery::new("db"),
                KeyQuery::new("rec").with_text("id", "1"),
            ],
            Some("1-2"),
        ),
        (
            vec![
                KeyQuery::new("db"),
                KeyQuery::new("rec").with_text("id", "2"),
            ],
            Some("2-3"),
        ),
        (
            vec![
                KeyQuery::new("db"),
                KeyQuery::new("rec").with_text("id", "1"),
                KeyQuery::new("val"),
            ],
            Some("1-2"),
        ),
        (
            vec![
                KeyQuery::new("db"),
                KeyQuery::new("rec").with_text("id", "9"),
            ],
            None,
        ),
    ];
    let (_scratch, backends) = all_backends(&spec());
    for (label, mut s) in backends {
        for src in versions {
            s.add_version(&parse(src).unwrap()).unwrap();
        }
        for (q, want) in &queries {
            let got = s.history(q).unwrap().map(|t| t.to_string());
            assert_eq!(got.as_deref(), *want, "{label}: query {q:?}");
        }
    }
}

#[test]
fn stats_report_storage() {
    let doc = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
    let (_scratch, backends) = all_backends(&spec());
    for (label, mut s) in backends {
        let empty = s.stats().unwrap();
        s.add_version(&doc).unwrap();
        let one = s.stats().unwrap();
        assert_eq!(one.versions, 1, "{label}");
        assert!(one.elements > empty.elements, "{label}: {one:?}");
        assert!(one.texts >= 2, "{label}: {one:?}"); // id + val text nodes
        assert!(one.size_bytes > 0, "{label}");
    }
}

#[test]
fn as_of_matches_filtered_retrieve() {
    // the tentpole contract: partial retrieval agrees with filtering a
    // full retrieve, on every backend, for hits, misses, and versions
    // where the element is dead
    let versions = [
        "<db><rec><id>1</id><val>a</val></rec></db>",
        "<db><rec><id>1</id><val>b</val></rec><rec><id>2</id><val>c</val></rec></db>",
        "<db><rec><id>2</id><val>c</val></rec></db>",
    ];
    let paths: Vec<Vec<KeyQuery>> = vec![
        vec![],
        vec![KeyQuery::new("db")],
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ],
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "2"),
        ],
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
            KeyQuery::new("val"),
        ],
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "9"),
        ],
    ];
    let (_scratch, backends) = all_backends(&spec());
    for (label, mut s) in backends {
        for src in versions {
            s.add_version(&parse(src).unwrap()).unwrap();
        }
        for v in 0..=4u32 {
            for q in &paths {
                let got = s.as_of(q, v).unwrap();
                let whole = s.retrieve(v).unwrap();
                let want = whole.as_ref().and_then(|doc| {
                    if q.is_empty() {
                        Some(doc.clone())
                    } else {
                        find_in_doc(doc, s.spec(), q).and_then(|id| subtree_doc(doc, id))
                    }
                });
                assert_eq!(
                    got.is_some(),
                    want.is_some(),
                    "{label}: as_of presence diverged for {q:?} at v{v}"
                );
                if let (Some(g), Some(w)) = (got, want) {
                    assert!(
                        equiv_modulo_key_order(&g, &w, s.spec()),
                        "{label}: as_of content diverged for {q:?} at v{v}"
                    );
                }
            }
        }
    }
}

#[test]
fn range_scans_clamp_lifetimes() {
    let versions = [
        "<db><rec><id>1</id><val>a</val></rec></db>",
        "<db><rec><id>1</id><val>a</val></rec><rec><id>2</id><val>b</val></rec></db>",
        "<db><rec><id>2</id><val>b</val></rec><rec><id>3</id><val>c</val></rec></db>",
    ];
    let prefix = vec![KeyQuery::new("db")];
    let (_scratch, backends) = all_backends(&spec());
    for (label, mut s) in backends {
        for src in versions {
            s.add_version(&parse(src).unwrap()).unwrap();
        }
        // whole window: all three records with their lifetimes
        let hits = s.range(&prefix, 1..=3).unwrap();
        let summary: Vec<(String, String)> = hits
            .iter()
            .map(|e| (e.step.parts[0].1.clone(), e.time.to_string()))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("<id>1</id>".to_owned(), "1-2".to_owned()),
                ("<id>2</id>".to_owned(), "2-3".to_owned()),
                ("<id>3</id>".to_owned(), "3".to_owned()),
            ],
            "{label}"
        );
        // clamped window drops record 3 and trims the others
        let hits = s.range(&prefix, 1..=2).unwrap();
        let summary: Vec<(String, String)> = hits
            .iter()
            .map(|e| (e.step.parts[0].1.clone(), e.time.to_string()))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("<id>1</id>".to_owned(), "1-2".to_owned()),
                ("<id>2</id>".to_owned(), "2".to_owned()),
            ],
            "{label}"
        );
        // empty prefix addresses the synthetic root: one hit, the doc root
        let hits = s.range(&[], 1..=3).unwrap();
        assert_eq!(hits.len(), 1, "{label}");
        assert_eq!(hits[0].step.tag, "db", "{label}");
        assert_eq!(hits[0].time.to_string(), "1-3", "{label}");
        // a window beyond the archive is empty
        assert!(s.range(&prefix, 7..=9).unwrap().is_empty(), "{label}");
    }
}

#[test]
fn history_values_and_diff_track_content() {
    let versions = [
        "<db><rec><id>1</id><val>a</val></rec></db>",
        "<db><rec><id>1</id><val>a</val></rec></db>",
        "<db><rec><id>1</id><val>z</val></rec></db>",
    ];
    let q = vec![
        KeyQuery::new("db"),
        KeyQuery::new("rec").with_text("id", "1"),
    ];
    let (_scratch, backends) = all_backends(&spec());
    for (label, mut s) in backends {
        for src in versions {
            s.add_version(&parse(src).unwrap()).unwrap();
        }
        let h = s.history_values(&q).unwrap().expect("archived");
        assert_eq!(h.existence.to_string(), "1-3", "{label}");
        assert_eq!(h.values.len(), 2, "{label}: {:?}", h.values);
        assert_eq!(h.values[0].0.to_string(), "1-2", "{label}");
        assert!(h.values[0].1.contains("<val>a</val>"), "{label}");
        assert_eq!(h.values[1].0.to_string(), "3", "{label}");
        assert!(h.values[1].1.contains("<val>z</val>"), "{label}");
        // diff composes from as_of: unchanged pair, changed pair,
        // element-vs-absent
        assert!(s.diff(&q, 1, 2).unwrap().is_same(), "{label}");
        let d = s.diff(&q, 2, 3).unwrap();
        assert!(!d.is_same(), "{label}");
        assert!(d.removed >= 1 && d.added >= 1, "{label}: {d:?}");
        assert!(d.script.contains('a') || d.script.contains('c'), "{label}");
        let missing = vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "9"),
        ];
        let d = s.diff(&missing, 1, 3).unwrap();
        assert_eq!(d.present, (false, false), "{label}");
        assert!(d.is_same(), "{label}");
        // history_values on a missing element is None
        assert!(s.history_values(&missing).unwrap().is_none(), "{label}");
        // the empty path addresses the whole document: values are document
        // contents (never a synthetic-root wrapper), same on every backend
        let whole = s.history_values(&[]).unwrap().expect("root exists");
        assert_eq!(whole.existence.to_string(), "1-3", "{label}");
        assert_eq!(whole.values.len(), 2, "{label}: {:?}", whole.values);
        for (_, content) in &whole.values {
            assert!(content.starts_with("<db>"), "{label}: {content}");
        }
    }
}

#[test]
fn streamed_retrieval_equivalent_on_omim_workload() {
    // Acceptance criterion: retrieve_into ≡ retrieve (modulo key order) on
    // a datagen workload, for every backend built from the facade.
    let spec = omim_spec();
    let mut g = OmimGen::new(733);
    g.del_ratio = 0.04;
    g.ins_ratio = 0.08;
    g.mod_ratio = 0.04;
    let versions = g.sequence(25, 5);
    let (_scratch, backends) = all_backends(&spec);
    for (label, mut s) in backends {
        for d in &versions {
            s.add_version(d).unwrap();
        }
        for v in 1..=versions.len() as u32 {
            let materialized = s.retrieve(v).unwrap().expect("archived");
            let mut bytes = Vec::new();
            assert!(s.retrieve_into(v, &mut bytes).unwrap(), "{label} v{v}");
            let reparsed = parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
            assert!(
                equiv_modulo_key_order(&reparsed, &materialized, s.spec()),
                "{label}: streamed v{v} diverged from materialized"
            );
        }
    }
}
