//! The docs drift gate: `docs/FORMAT.md` and `docs/PROTOCOL.md` are
//! normative, so their constants, verb bytes, and error codes are
//! asserted against the storage and wire-protocol sources (golden
//! tests), and every intra-repo markdown link in `README.md` /
//! `docs/*.md` must resolve — a renamed file or section fails CI
//! instead of silently breaking the specs' cross-references.

use std::path::{Path, PathBuf};

use xarch::storage::{block, superblock};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

// ---------- golden-test helpers ----------

/// Evaluates the constant notations the specs' tables use: decimal,
/// hex with optional underscores, and `a << b` shifts.
fn eval(expr: &str) -> Option<u64> {
    let expr = expr.trim();
    if let Some((a, b)) = expr.split_once("<<") {
        return eval(a)?.checked_shl(eval(b)?.try_into().ok()?);
    }
    let digits = expr.replace('_', "");
    match digits.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => digits.parse().ok(),
    }
}

/// Finds the markdown table row `| `name` | `value` | …` and returns the
/// backticked value cell.
fn table_value<'a>(doc: &'a str, name: &str) -> &'a str {
    let row = doc
        .lines()
        .find(|l| {
            let mut cells = l.split('|').map(str::trim);
            cells.next(); // before the leading pipe
            cells.next() == Some(&format!("`{name}`"))
        })
        .unwrap_or_else(|| panic!("the spec has no table row for `{name}`"));
    let cell = row.split('|').map(str::trim).nth(2).unwrap_or_default();
    cell.strip_prefix('`')
        .and_then(|c| c.strip_suffix('`'))
        .unwrap_or_else(|| panic!("`{name}` row's value cell {cell:?} is not backticked"))
}

/// Slices out one `## heading` section, so tables in different sections
/// may reuse row names (the protocol's verb and response tables both
/// have a `history` row).
fn section<'a>(doc: &'a str, heading: &str) -> &'a str {
    let header = format!("## {heading}");
    let start = doc
        .find(&header)
        .unwrap_or_else(|| panic!("the spec has no `{header}` section"));
    let body = &doc[start + header.len()..];
    match body.find("\n## ") {
        Some(end) => &body[..end],
        None => body,
    }
}

// ---------- the FORMAT.md golden test ----------

#[test]
fn format_spec_constants_match_the_storage_source() {
    let doc = read(&repo_root().join("docs/FORMAT.md"));
    // the magic is documented as its ASCII text
    assert_eq!(
        table_value(&doc, "MAGIC").as_bytes(),
        superblock::MAGIC,
        "FORMAT.md magic diverged from superblock::MAGIC"
    );
    let numeric: &[(&str, u64)] = &[
        ("FORMAT_VERSION", u64::from(superblock::FORMAT_VERSION)),
        (
            "MIN_FORMAT_VERSION",
            u64::from(superblock::MIN_FORMAT_VERSION),
        ),
        ("FIXED_LEN", superblock::FIXED_LEN as u64),
        ("MAX_SPEC_LEN", superblock::MAX_SPEC_LEN),
        ("BLOCK_HEADER_LEN", block::BLOCK_HEADER_LEN as u64),
        ("BLOCK_TRAILER_LEN", block::BLOCK_TRAILER_LEN as u64),
        ("COMMIT_MAGIC", u64::from(block::COMMIT_MAGIC)),
        ("MAX_PAYLOAD", block::MAX_PAYLOAD),
    ];
    for (name, actual) in numeric {
        let cell = table_value(&doc, name);
        let documented = eval(cell)
            .unwrap_or_else(|| panic!("`{name}` value {cell:?} does not evaluate to a number"));
        assert_eq!(
            documented, *actual,
            "FORMAT.md documents `{name}` as {cell} but the source says {actual}"
        );
    }
}

#[test]
fn format_spec_block_kind_table_matches_the_source() {
    let doc = read(&repo_root().join("docs/FORMAT.md"));
    let kinds = [
        (block::BlockKind::Version, "Version"),
        (block::BlockKind::Empty, "Empty"),
        (block::BlockKind::Batch, "Batch"),
        (block::BlockKind::Checkpoint, "Checkpoint"),
    ];
    for (kind, name) in kinds {
        let byte = kind.kind_byte();
        let row = doc
            .lines()
            .find(|l| {
                let mut cells = l.split('|').map(str::trim);
                cells.next();
                cells.next() == Some(&format!("`{byte}`")) && l.contains(name)
            })
            .unwrap_or_else(|| {
                panic!("FORMAT.md §Block kinds has no row mapping byte {byte} to {name}")
            });
        assert!(
            row.split('|').map(str::trim).nth(2) == Some(name),
            "FORMAT.md kind-byte row for {name} names the wrong kind: {row}"
        );
    }
    // the byte after the last assigned kind must stay documented as invalid
    assert!(
        block::BlockKind::from_kind_byte(5).is_none(),
        "a fifth block kind exists — extend FORMAT.md §Block kinds and its revision history"
    );
}

#[test]
fn format_spec_state_tags_match_the_source() {
    use xarch::core::state;
    let doc = read(&repo_root().join("docs/FORMAT.md"));
    let tags: &[(u8, &str)] = &[
        (state::STATE_ARCHIVE, "`Archive`"),
        (state::STATE_CHUNKED, "`ChunkedArchive`"),
        (state::STATE_EXTMEM, "`ExtArchive`"),
        (state::STATE_INDEXED_STORE, "`IndexedStore`"),
    ];
    for (tag, backend) in tags {
        assert!(
            doc.lines().any(|l| {
                let mut cells = l.split('|').map(str::trim);
                cells.next();
                cells.next() == Some(&format!("`{tag}`"))
                    && cells.next().is_some_and(|c| c.contains(backend))
            }),
            "FORMAT.md §Checkpoint blocks has no state-tag row mapping {tag} to {backend}"
        );
    }
}

// ---------- the PROTOCOL.md golden tests ----------

#[test]
fn protocol_spec_constants_match_the_proto_source() {
    let doc = read(&repo_root().join("docs/PROTOCOL.md"));
    // the handshake magic is documented as its ASCII text
    assert_eq!(
        table_value(&doc, "PROTO_MAGIC").as_bytes(),
        &xarch_proto::PROTO_MAGIC,
        "PROTOCOL.md magic diverged from xarch_proto::PROTO_MAGIC"
    );
    let numeric: &[(&str, u64)] = &[
        ("PROTO_VERSION", u64::from(xarch_proto::PROTO_VERSION)),
        (
            "MIN_PROTO_VERSION",
            u64::from(xarch_proto::MIN_PROTO_VERSION),
        ),
        ("FRAME_HEADER_LEN", xarch_proto::FRAME_HEADER_LEN as u64),
        ("MAX_FRAME_LEN", u64::from(xarch_proto::MAX_FRAME_LEN)),
    ];
    for (name, actual) in numeric {
        let cell = table_value(&doc, name);
        let documented = eval(cell)
            .unwrap_or_else(|| panic!("`{name}` value {cell:?} does not evaluate to a number"));
        assert_eq!(
            documented, *actual,
            "PROTOCOL.md documents `{name}` as {cell} but the source says {actual}"
        );
    }
}

/// Asserts every `(name, byte)` pair has a row in the section's table,
/// and that the table has no extra rows — an undocumented verb is as
/// much drift as a misdocumented one.
fn assert_byte_table(sec: &str, what: &str, rows: &[(&str, u8)]) {
    for (name, byte) in rows {
        let cell = table_value(sec, name);
        let documented = eval(cell)
            .unwrap_or_else(|| panic!("`{name}` value {cell:?} does not evaluate to a number"));
        assert_eq!(
            documented,
            u64::from(*byte),
            "PROTOCOL.md documents {what} `{name}` as {cell} but the source says {byte:#04x}"
        );
    }
    let data_rows = sec
        .lines()
        .filter(|l| l.starts_with("| `") && !l.contains("---"))
        .count();
    assert_eq!(
        data_rows,
        rows.len(),
        "PROTOCOL.md's {what} table has {data_rows} rows but the source assigns {} — \
         document the new {what} and bump the revision history",
        rows.len()
    );
}

#[test]
fn protocol_spec_verb_table_matches_the_source() {
    use xarch_proto::msg::verbs;
    let doc = read(&repo_root().join("docs/PROTOCOL.md"));
    assert_byte_table(
        section(&doc, "Request verbs"),
        "verb",
        &[
            ("hello", verbs::HELLO),
            ("ping", verbs::PING),
            ("retrieve", verbs::RETRIEVE),
            ("as_of", verbs::AS_OF),
            ("history", verbs::HISTORY),
            ("history_values", verbs::HISTORY_VALUES),
            ("range", verbs::RANGE),
            ("diff", verbs::DIFF),
            ("stats", verbs::STATS),
            ("latest", verbs::LATEST),
            ("ingest", verbs::INGEST),
            ("snap_open", verbs::SNAP_OPEN),
            ("snap_close", verbs::SNAP_CLOSE),
            ("metrics", verbs::METRICS),
            ("health", verbs::HEALTH),
            ("shutdown", verbs::SHUTDOWN),
        ],
    );
}

#[test]
fn protocol_spec_response_tag_table_matches_the_source() {
    use xarch_proto::msg::tags;
    let doc = read(&repo_root().join("docs/PROTOCOL.md"));
    assert_byte_table(
        section(&doc, "Response tags"),
        "response tag",
        &[
            ("hello-ok", tags::HELLO_OK),
            ("pong", tags::PONG),
            ("document", tags::DOCUMENT),
            ("history", tags::HISTORY),
            ("history-values", tags::HISTORY_VALUES),
            ("range", tags::RANGE),
            ("diff", tags::DIFF),
            ("stats", tags::STATS),
            ("latest", tags::LATEST),
            ("ingested", tags::INGESTED),
            ("snap-opened", tags::SNAP_OPENED),
            ("snap-closed", tags::SNAP_CLOSED),
            ("metrics", tags::METRICS),
            ("health", tags::HEALTH),
            ("shutting-down", tags::SHUTTING_DOWN),
            ("error", tags::ERROR),
        ],
    );
}

#[test]
fn protocol_spec_error_code_table_matches_the_source() {
    use xarch_proto::ErrorCode;
    let doc = read(&repo_root().join("docs/PROTOCOL.md"));
    let sec = section(&doc, "Error codes");
    let mut codes = Vec::new();
    for byte in 1u8.. {
        match ErrorCode::from_code(byte) {
            Some(code) => codes.push(code),
            None => break,
        }
    }
    for code in &codes {
        let cell = table_value(sec, code.name());
        assert_eq!(
            eval(cell),
            Some(u64::from(code.code())),
            "PROTOCOL.md documents `{}` as code {cell} but the source says {}",
            code.name(),
            code.code()
        );
    }
    let data_rows = sec
        .lines()
        .filter(|l| l.starts_with("| `") && !l.contains("---"))
        .count();
    assert_eq!(
        data_rows,
        codes.len(),
        "PROTOCOL.md's error-code table disagrees with ErrorCode — \
         document the new code and bump the revision history"
    );
}

// ---------- the intra-repo link checker ----------

/// GitHub-style anchor slug for a markdown heading.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| match c {
            'A'..='Z' => Some(c.to_ascii_lowercase()),
            'a'..='z' | '0'..='9' | '-' => Some(c),
            ' ' => Some('-'),
            _ => None,
        })
        .collect()
}

fn anchors_of(doc: &str) -> Vec<String> {
    doc.lines()
        .filter_map(|l| l.strip_prefix('#'))
        .map(|rest| slug(rest.trim_start_matches('#')))
        .collect()
}

/// Extracts `[text](target)` targets, skipping fenced code blocks and
/// inline code spans (rustdoc examples contain link-shaped text).
fn link_targets(doc: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut fenced = false;
    for line in doc.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if fenced {
            continue;
        }
        let mut rest = line;
        while let Some(close) = rest.find("](") {
            let after = &rest[close + 2..];
            let Some(end) = after.find(')') else { break };
            out.push(after[..end].to_string());
            rest = &after[end + 1..];
        }
    }
    out
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs_dir = root.join("docs");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs_dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", docs_dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    entries.sort();
    files.extend(entries);

    let mut broken = Vec::new();
    for file in &files {
        let doc = read(file);
        let dir = file.parent().unwrap_or(&root);
        for target in link_targets(&doc) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, fragment) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (target.as_str(), None),
            };
            let resolved = if path_part.is_empty() {
                file.clone()
            } else {
                dir.join(path_part)
            };
            if !resolved.exists() {
                broken.push(format!(
                    "{}: link target {target:?} does not exist",
                    file.display()
                ));
                continue;
            }
            if let Some(frag) = fragment {
                if resolved.extension().is_some_and(|x| x == "md")
                    && !anchors_of(&read(&resolved)).iter().any(|a| a == frag)
                {
                    broken.push(format!(
                        "{}: anchor {target:?} matches no heading in {}",
                        file.display(),
                        resolved.display()
                    ));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken intra-repo links:\n{}",
        broken.join("\n")
    );
}
