//! The shared-read stress suite: one writer merges versions while reader
//! threads hammer the query surface through [`xarch::ArchiveHandle`]
//! snapshots, asserting every answer is **byte-identical to a serial
//! replay** at the snapshot's pinned version.
//!
//! The serial replay records the expected answer for every pin level
//! *while it grows* — after version `P` commits, whatever the store
//! answers is by definition what a snapshot pinned at `P` must answer
//! forever, no matter how many merges land afterwards. Readers then race
//! the writer and compare against those recordings. Run with
//! `--release` (CI does) so the threads genuinely interleave.

use std::sync::Arc;

use xarch::core::KeyQuery;
use xarch::extmem::IoConfig;
use xarch::keys::KeySpec;
use xarch::xml::parse;
use xarch::{ArchiveBuilder, ArchiveHandle, Backend, RangeEntry, StoreReader, VersionStore};

/// Versions the writer merges (version `EMPTY_VERSION` is archived
/// empty); record `r` is present in version `v` iff `(v + r) % 4 != 0`,
/// so records churn — inserted, deleted, reinserted — across the run.
const VERSIONS: u32 = 12;
const EMPTY_VERSION: u32 = 7;
const RECORDS: u32 = 8;
const READERS: usize = 4;

fn spec() -> KeySpec {
    KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
}

fn version_doc(v: u32) -> Option<xarch::xml::Document> {
    if v == EMPTY_VERSION {
        return None;
    }
    let mut s = String::from("<db>");
    for r in 1..=RECORDS {
        if (v + r).is_multiple_of(4) {
            continue;
        }
        s.push_str(&format!("<rec><id>{r}</id><val>r{r}v{v}</val></rec>"));
    }
    s.push_str("</db>");
    Some(parse(&s).unwrap())
}

fn queries() -> Vec<Vec<KeyQuery>> {
    let rec = |id: &str| {
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", id),
        ]
    };
    vec![
        rec("1"),
        rec("2"),
        rec("99"), // never archived
        vec![],    // the synthetic root
    ]
}

fn compact(doc: &xarch::xml::Document) -> String {
    xarch::xml::writer::to_compact_string(doc)
}

/// Everything a snapshot pinned at `P` must answer, recorded from the
/// serial store the moment version `P` committed. Index 0 is the empty
/// archive.
struct Expected {
    /// `bytes[v]`: the streamed serialization of version `v` (`None` for
    /// empty versions). Recorded once — committed versions are immutable.
    bytes: Vec<Option<Vec<u8>>>,
    /// `as_of[qi][v]`: the addressed subtree at version `v`, compact.
    as_of: Vec<Vec<Option<String>>>,
    /// `history[qi][pin]`: the existence set (displayed) at each pin.
    history: Vec<Vec<Option<String>>>,
    /// `range[pin]`: keyed children of `<db>` over the whole window.
    range: Vec<Vec<RangeEntry>>,
}

/// Grows `store` through the full version sequence, recording the
/// expected answer set at every pin level.
fn serial_replay(store: &mut Box<dyn VersionStore>) -> Expected {
    let qs = queries();
    let prefix = [KeyQuery::new("db")];
    let mut exp = Expected {
        bytes: vec![None],
        as_of: vec![vec![None]; qs.len()],
        history: vec![Vec::new(); qs.len()],
        range: Vec::new(),
    };
    // pin 0: the empty archive
    for (qi, q) in qs.iter().enumerate() {
        exp.history[qi].push(store.history(q).unwrap().map(|t| t.to_string()));
    }
    exp.range.push(store.range(&prefix, 1..=u32::MAX).unwrap());
    for v in 1..=VERSIONS {
        match version_doc(v) {
            Some(doc) => assert_eq!(store.add_version(&doc).unwrap(), v),
            None => assert_eq!(store.add_empty_version().unwrap(), v),
        }
        let mut bytes = Vec::new();
        let wrote = store.retrieve_into(v, &mut bytes).unwrap();
        exp.bytes.push(wrote.then_some(bytes));
        for (qi, q) in qs.iter().enumerate() {
            exp.as_of[qi].push(store.as_of(q, v).unwrap().map(|d| compact(&d)));
            exp.history[qi].push(store.history(q).unwrap().map(|t| t.to_string()));
        }
        exp.range.push(store.range(&prefix, 1..=u32::MAX).unwrap());
    }
    exp
}

/// One reader thread: snapshot, then interrogate it and compare every
/// answer with the serial recordings at the pinned version.
fn check_snapshot(label: &str, snap: &xarch::Snapshot, exp: &Expected) {
    let p = snap.pinned();
    assert_eq!(snap.latest(), p, "{label}");
    let qs = queries();

    // reads beyond the pin never leak, even while the writer is ahead
    assert!(!snap.has_version(p + 1), "{label} pin {p}");
    assert!(snap.retrieve(p + 1).unwrap().is_none(), "{label} pin {p}");
    let mut sink = Vec::new();
    assert!(!snap.retrieve_into(p + 1, &mut sink).unwrap());

    // full retrieval: byte-identical to the serial replay
    for v in 1..=p {
        let mut got = Vec::new();
        let wrote = snap.retrieve_into(v, &mut got).unwrap();
        let want = &exp.bytes[v as usize];
        assert_eq!(wrote, want.is_some(), "{label} retrieve v{v} pin {p}");
        if let Some(want) = want {
            assert_eq!(&got, want, "{label} retrieve v{v} pin {p}");
        }
    }

    for (qi, q) in qs.iter().enumerate() {
        // history pinned: equal to what the serial store said at pin P
        let got = snap.history(q).unwrap().map(|t| t.to_string());
        assert_eq!(
            got, exp.history[qi][p as usize],
            "{label} history q{qi} pin {p}"
        );
        // as_of at every version up to the pin
        for v in 1..=p {
            let got = snap.as_of(q, v).unwrap().map(|d| compact(&d));
            assert_eq!(
                got, exp.as_of[qi][v as usize],
                "{label} as_of q{qi} v{v} pin {p}"
            );
        }
        // as_of beyond the pin is absent
        assert!(snap.as_of(q, p + 1).unwrap().is_none(), "{label} q{qi}");
    }

    // range over an unbounded window clamps to the pin
    let got = snap.range(&[KeyQuery::new("db")], 1..=u32::MAX).unwrap();
    assert_eq!(got, exp.range[p as usize], "{label} range pin {p}");

    assert_eq!(snap.stats().unwrap().versions, p, "{label} stats pin {p}");
}

/// The harness: serial replay on one store, then a racing writer and
/// `READERS` snapshot readers on a second store of the same configuration.
fn stress(label: &str, mut serial: Box<dyn VersionStore>, live: Box<dyn VersionStore>) {
    let exp = Arc::new(serial_replay(&mut serial));
    drop(serial); // releases durable file locks before the race starts
    let handle = ArchiveHandle::new(live);

    std::thread::scope(|s| {
        let writer = handle.clone();
        s.spawn(move || {
            for v in 1..=VERSIONS {
                match version_doc(v) {
                    Some(doc) => assert_eq!(writer.add_version(&doc).unwrap(), v),
                    None => assert_eq!(writer.add_empty_version().unwrap(), v),
                }
                // give readers a chance to land between merges
                std::thread::yield_now();
            }
        });
        for _ in 0..READERS {
            let handle = handle.clone();
            let exp = Arc::clone(&exp);
            s.spawn(move || {
                let mut pins_seen = Vec::new();
                loop {
                    let snap = handle.snapshot();
                    check_snapshot(label, &snap, &exp);
                    // a second look at the same snapshot must repeat the
                    // answers even though the writer moved on
                    check_snapshot(label, &snap, &exp);
                    pins_seen.push(snap.pinned());
                    if snap.pinned() == VERSIONS {
                        break;
                    }
                    std::thread::yield_now();
                }
                // pins never move backwards from a reader's point of view
                assert!(pins_seen.windows(2).all(|w| w[0] <= w[1]), "{label}");
            });
        }
    });

    // after the race, the live store answers exactly like the replay
    let last = handle.snapshot();
    assert_eq!(last.pinned(), VERSIONS, "{label}");
    check_snapshot(label, &last, &exp);
}

/// The group-commit variant of the harness: the writer lands whole
/// *batches* through `ArchiveHandle::add_versions`, so readers must only
/// ever pin a **batch boundary** — a half-applied batch observable at any
/// pin is exactly the bug the single-write-lock design rules out. Every
/// pinned snapshot is still checked byte-for-byte against the serial
/// recordings.
fn stress_batch_writer(
    label: &str,
    mut serial: Box<dyn VersionStore>,
    live: Box<dyn VersionStore>,
) {
    // consecutive non-empty runs become batches; the empty version is its
    // own commit. Boundaries: 0, 3, 6, 7, 10, 12 for the 12-version run.
    let mut batches: Vec<Vec<xarch::xml::Document>> = Vec::new();
    let mut boundaries: Vec<u32> = vec![0];
    let mut run: Vec<xarch::xml::Document> = Vec::new();
    for v in 1..=VERSIONS {
        match version_doc(v) {
            Some(doc) => {
                run.push(doc);
                if run.len() == 3 {
                    boundaries.push(v);
                    batches.push(std::mem::take(&mut run));
                }
            }
            None => {
                if !run.is_empty() {
                    boundaries.push(v - 1);
                    batches.push(std::mem::take(&mut run));
                }
                boundaries.push(v);
                batches.push(Vec::new()); // marker: one empty version
            }
        }
    }
    if !run.is_empty() {
        boundaries.push(VERSIONS);
        batches.push(run);
    }

    let exp = Arc::new(serial_replay(&mut serial));
    drop(serial);
    let handle = ArchiveHandle::new(live);
    std::thread::scope(|s| {
        let writer = handle.clone();
        let batches = &batches;
        s.spawn(move || {
            for batch in batches {
                if batch.is_empty() {
                    writer.add_empty_version().unwrap();
                } else {
                    writer.add_versions(batch).unwrap();
                }
                std::thread::yield_now();
            }
        });
        for _ in 0..READERS {
            let handle = handle.clone();
            let exp = Arc::clone(&exp);
            let boundaries = &boundaries;
            s.spawn(move || loop {
                let snap = handle.snapshot();
                assert!(
                    boundaries.contains(&snap.pinned()),
                    "{label}: pinned {} is not a batch boundary {boundaries:?} — \
                     a reader observed a half-applied batch",
                    snap.pinned()
                );
                check_snapshot(label, &snap, &exp);
                if snap.pinned() == VERSIONS {
                    break;
                }
                std::thread::yield_now();
            });
        }
    });
    let last = handle.snapshot();
    assert_eq!(last.pinned(), VERSIONS, "{label}");
    check_snapshot(label, &last, &exp);
}

struct Scratch(Vec<std::path::PathBuf>);

impl Drop for Scratch {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn small_ext_cfg() -> IoConfig {
    IoConfig {
        mem_bytes: 2 << 10,
        page_bytes: 256,
    }
}

#[test]
fn stress_in_memory() {
    stress(
        "in-memory",
        ArchiveBuilder::new(spec()).build(),
        ArchiveBuilder::new(spec()).build(),
    );
}

#[test]
fn stress_in_memory_indexed() {
    stress(
        "in-memory/indexed",
        ArchiveBuilder::new(spec()).with_index().build(),
        ArchiveBuilder::new(spec()).with_index().build(),
    );
}

#[test]
fn stress_in_memory_weave() {
    // weave compaction is the one mode where a merge *rewrites* the
    // stored representation beneath frontier nodes of earlier versions,
    // so it is the config most likely to expose a lock-coverage
    // regression in "reads of v <= P are unaffected by concurrent
    // merges"
    use xarch::core::Compaction;
    stress(
        "in-memory/weave",
        ArchiveBuilder::new(spec())
            .compaction(Compaction::Weave)
            .build(),
        ArchiveBuilder::new(spec())
            .compaction(Compaction::Weave)
            .build(),
    );
}

#[test]
fn stress_chunked_weave() {
    use xarch::core::Compaction;
    stress(
        "chunked(4)/weave",
        ArchiveBuilder::new(spec())
            .compaction(Compaction::Weave)
            .chunks(4)
            .build(),
        ArchiveBuilder::new(spec())
            .compaction(Compaction::Weave)
            .chunks(4)
            .build(),
    );
}

#[test]
fn stress_chunked() {
    stress(
        "chunked(4)",
        ArchiveBuilder::new(spec()).chunks(4).build(),
        ArchiveBuilder::new(spec()).chunks(4).build(),
    );
}

#[test]
fn stress_chunked_indexed() {
    stress(
        "chunked(4)/indexed",
        ArchiveBuilder::new(spec()).chunks(4).with_index().build(),
        ArchiveBuilder::new(spec()).chunks(4).with_index().build(),
    );
}

#[test]
fn stress_extmem() {
    stress(
        "extmem",
        ArchiveBuilder::new(spec())
            .backend(Backend::ExtMem(small_ext_cfg()))
            .build(),
        ArchiveBuilder::new(spec())
            .backend(Backend::ExtMem(small_ext_cfg()))
            .build(),
    );
}

#[test]
fn stress_batch_writer_in_memory() {
    stress_batch_writer(
        "in-memory/batched",
        ArchiveBuilder::new(spec()).build(),
        ArchiveBuilder::new(spec()).build(),
    );
}

#[test]
fn stress_batch_writer_chunked_indexed() {
    // the chunked batch path merges partitions on worker threads while
    // readers hammer snapshots — the widest concurrency surface
    stress_batch_writer(
        "chunked(4)/indexed/batched",
        ArchiveBuilder::new(spec()).chunks(4).with_index().build(),
        ArchiveBuilder::new(spec()).chunks(4).with_index().build(),
    );
}

#[test]
fn stress_batch_writer_durable() {
    let serial_path = xarch::storage::scratch_path("stress-batch-serial");
    let live_path = xarch::storage::scratch_path("stress-batch-live");
    let _guard = Scratch(vec![serial_path.clone(), live_path.clone()]);
    stress_batch_writer(
        "durable/batched",
        ArchiveBuilder::new(spec())
            .durable(serial_path)
            .try_build()
            .expect("serial durable store"),
        ArchiveBuilder::new(spec())
            .durable(live_path)
            .try_build()
            .expect("live durable store"),
    );
}

#[test]
fn stress_durable() {
    let serial_path = xarch::storage::scratch_path("stress-durable-serial");
    let live_path = xarch::storage::scratch_path("stress-durable-live");
    let _guard = Scratch(vec![serial_path.clone(), live_path.clone()]);
    stress(
        "durable",
        ArchiveBuilder::new(spec())
            .durable(serial_path)
            .try_build()
            .expect("serial durable store"),
        ArchiveBuilder::new(spec())
            .durable(live_path)
            .try_build()
            .expect("live durable store"),
    );
}

/// The observability hot path raced directly: writer threads hammer a
/// shared [`Counter`] and [`Histogram`] (lock-free relaxed atomics) while
/// reader threads snapshot concurrently. Every reader-visible view must
/// be *coherent*: counters never move backwards, and a histogram
/// snapshot's `count` always equals the sum of its buckets — the count is
/// derived from the buckets by construction, so no interleaving can show
/// a sample that is counted but not bucketed (or vice versa).
#[test]
fn observability_primitives_stay_coherent_under_races() {
    use xarch::obs::{Counter, Histogram};
    const WRITERS: usize = 4;
    const RECORDS_PER_WRITER: u64 = 5_000;

    let counter = Counter::new();
    let hist = Histogram::new();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let counter = counter.clone();
            let hist = hist.clone();
            s.spawn(move || {
                for i in 0..RECORDS_PER_WRITER {
                    counter.inc();
                    hist.record((w as u64 + 1) * (i % 1_000));
                }
            });
        }
        for _ in 0..READERS {
            let counter = counter.clone();
            let hist = hist.clone();
            s.spawn(move || {
                let (mut last_count, mut last_sum, mut last_hcount) = (0, 0, 0);
                for _ in 0..2_000 {
                    let c = counter.get();
                    assert!(c >= last_count, "counter moved backwards");
                    last_count = c;

                    let snap = hist.snapshot();
                    let bucketed: u64 = snap.buckets.iter().sum();
                    assert_eq!(
                        snap.count, bucketed,
                        "histogram count diverged from its buckets mid-race"
                    );
                    assert!(snap.count >= last_hcount, "histogram count went backwards");
                    assert!(snap.sum >= last_sum, "histogram sum went backwards");
                    last_hcount = snap.count;
                    last_sum = snap.sum;
                }
            });
        }
    });
    let total = (WRITERS as u64) * RECORDS_PER_WRITER;
    assert_eq!(counter.get(), total);
    assert_eq!(hist.count(), total, "no record was lost");
    assert_eq!(hist.buckets().iter().sum::<u64>(), total);
}

/// The same coherence through the full stack: a writer merges versions
/// through an observed [`ArchiveHandle`] while readers query snapshots
/// *and* watch the registry — every registered counter stays monotone and
/// every histogram readout stays count == Σ buckets while samples land.
#[test]
fn registry_readouts_stay_coherent_while_observed_store_runs() {
    use xarch::obs::Obs;

    let obs = Obs::disconnected();
    let handle = ArchiveBuilder::new(spec())
        .with_index()
        .with_observability(obs.clone())
        .try_build_shared()
        .expect("observed in-memory store cannot fail to build");

    std::thread::scope(|s| {
        let writer = handle.clone();
        s.spawn(move || {
            for v in 1..=VERSIONS {
                match version_doc(v) {
                    Some(doc) => assert_eq!(writer.add_version(&doc).unwrap(), v),
                    None => assert_eq!(writer.add_empty_version().unwrap(), v),
                }
                std::thread::yield_now();
            }
        });
        for _ in 0..READERS {
            let handle = handle.clone();
            let obs = obs.clone();
            s.spawn(move || {
                let ingested = obs
                    .registry()
                    .get_counter("ingest.versions")
                    .expect("registered at build time");
                let retrieve = obs
                    .registry()
                    .get_histogram("query.retrieve.duration")
                    .expect("registered at build time");
                let mut last_ingested = 0;
                let mut last_queries = 0;
                loop {
                    let snap = handle.snapshot();
                    let p = snap.pinned();
                    if p > 0 {
                        let _ = snap.retrieve(p).unwrap();
                    }

                    let i = ingested.get();
                    assert!(i >= last_ingested, "ingest.versions moved backwards");
                    assert!(i <= u64::from(VERSIONS), "over-counted ingests");
                    last_ingested = i;

                    let h = retrieve.snapshot();
                    assert_eq!(h.count, h.buckets.iter().sum::<u64>());
                    assert!(h.count >= last_queries, "query count went backwards");
                    last_queries = h.count;

                    if p == VERSIONS {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    let r = obs.registry();
    assert_eq!(
        r.get_counter("ingest.versions").unwrap().get(),
        u64::from(VERSIONS)
    );
    assert!(
        r.get_counter("handle.snapshot_pins").unwrap().get() >= READERS as u64,
        "every reader pinned at least one snapshot"
    );
    assert!(
        r.get_histogram("query.retrieve.duration").unwrap().count() > 0,
        "readers exercised the query path"
    );
    assert_eq!(
        r.get_histogram("handle.write_lock_hold").unwrap().count(),
        u64::from(VERSIONS),
        "one hold-time sample per mutation"
    );
}

#[test]
fn stress_durable_indexed() {
    let serial_path = xarch::storage::scratch_path("stress-durable-idx-serial");
    let live_path = xarch::storage::scratch_path("stress-durable-idx-live");
    let _guard = Scratch(vec![serial_path.clone(), live_path.clone()]);
    stress(
        "durable/indexed",
        ArchiveBuilder::new(spec())
            .with_index()
            .durable(serial_path)
            .try_build()
            .expect("serial durable store"),
        ArchiveBuilder::new(spec())
            .with_index()
            .durable(live_path)
            .try_build()
            .expect("live durable store"),
    );
}

/// A backend wrapper that parks inside every merge for `delay`,
/// advertising the stall through `in_merge`. Its replica comes from the
/// trait's *default* `fork` (serial replay into an in-memory archive), so
/// this doubles as racing coverage for replay-built replicas.
struct StallingStore {
    inner: Box<dyn VersionStore>,
    delay: std::time::Duration,
    in_merge: Arc<std::sync::atomic::AtomicBool>,
}

impl StoreReader for StallingStore {
    fn spec(&self) -> &KeySpec {
        self.inner.spec()
    }
    fn latest(&self) -> u32 {
        self.inner.latest()
    }
    fn has_version(&self, v: u32) -> bool {
        self.inner.has_version(v)
    }
    fn retrieve(&self, v: u32) -> Result<Option<xarch::xml::Document>, xarch::StoreError> {
        self.inner.retrieve(v)
    }
    fn retrieve_into(
        &self,
        v: u32,
        out: &mut dyn std::io::Write,
    ) -> Result<bool, xarch::StoreError> {
        self.inner.retrieve_into(v, out)
    }
    fn history(
        &self,
        steps: &[KeyQuery],
    ) -> Result<Option<xarch::core::TimeSet>, xarch::StoreError> {
        self.inner.history(steps)
    }
    fn stats(&self) -> Result<xarch::StoreStats, xarch::StoreError> {
        self.inner.stats()
    }
    fn stats_at(&self, v: u32) -> Result<xarch::StoreStats, xarch::StoreError> {
        self.inner.stats_at(v)
    }
    fn as_of(
        &self,
        steps: &[KeyQuery],
        v: u32,
    ) -> Result<Option<xarch::xml::Document>, xarch::StoreError> {
        self.inner.as_of(steps, v)
    }
    fn history_values(
        &self,
        steps: &[KeyQuery],
    ) -> Result<Option<xarch::ElementHistory>, xarch::StoreError> {
        self.inner.history_values(steps)
    }
    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: std::ops::RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, xarch::StoreError> {
        self.inner.range(prefix, versions)
    }
    fn diff(
        &self,
        steps: &[KeyQuery],
        v1: u32,
        v2: u32,
    ) -> Result<xarch::VersionDelta, xarch::StoreError> {
        self.inner.diff(steps, v1, v2)
    }
}

impl VersionStore for StallingStore {
    fn add_version(&mut self, doc: &xarch::xml::Document) -> Result<u32, xarch::StoreError> {
        self.in_merge
            .store(true, std::sync::atomic::Ordering::Release);
        std::thread::sleep(self.delay);
        let r = self.inner.add_version(doc);
        self.in_merge
            .store(false, std::sync::atomic::Ordering::Release);
        r
    }
    fn add_empty_version(&mut self) -> Result<u32, xarch::StoreError> {
        self.in_merge
            .store(true, std::sync::atomic::Ordering::Release);
        std::thread::sleep(self.delay);
        let r = self.inner.add_empty_version();
        self.in_merge
            .store(false, std::sync::atomic::Ordering::Release);
        r
    }
}

/// The reader-latency regression: readers must keep completing *inside* a
/// writer's stall window, not queue behind it. Every merge is held open
/// for a fixed delay; readers probe the byte-compare invariant throughout
/// and count the probes that started **and** finished while a merge was
/// verifiably in flight. Under the old global-RwLock handle a reader that
/// arrived mid-merge parked until the merge released the write lock, so
/// this count stayed at (essentially) zero; with wait-free publication it
/// reaches the thousands.
#[test]
fn stress_reader_latency_under_writer_stall() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    const STALL: std::time::Duration = std::time::Duration::from_millis(15);
    const STALL_READERS: usize = 8;

    let mut serial: Box<dyn VersionStore> = ArchiveBuilder::new(spec()).build();
    let exp = Arc::new(serial_replay(&mut serial));
    let in_merge = Arc::new(AtomicBool::new(false));
    let handle = ArchiveHandle::new(Box::new(StallingStore {
        inner: ArchiveBuilder::new(spec()).build(),
        delay: STALL,
        in_merge: Arc::clone(&in_merge),
    }));
    let mid_merge_reads = AtomicU64::new(0);

    std::thread::scope(|s| {
        let writer = handle.clone();
        s.spawn(move || {
            for v in 1..=VERSIONS {
                match version_doc(v) {
                    Some(doc) => assert_eq!(writer.add_version(&doc).unwrap(), v),
                    None => assert_eq!(writer.add_empty_version().unwrap(), v),
                }
            }
        });
        for _ in 0..STALL_READERS {
            let handle = handle.clone();
            let exp = Arc::clone(&exp);
            let in_merge = Arc::clone(&in_merge);
            let mid = &mid_merge_reads;
            s.spawn(move || {
                let mut probes = 0u64;
                loop {
                    let stalled_before = in_merge.load(Ordering::Acquire);
                    let snap = handle.snapshot();
                    let p = snap.pinned();
                    // cheap probe: the streamed bytes at the pin must
                    // match the serial recording, merge in flight or not
                    if p > 0 {
                        let mut sink = Vec::new();
                        let wrote = snap.retrieve_into(p, &mut sink).unwrap();
                        assert_eq!(wrote.then_some(sink), exp.bytes[p as usize]);
                    }
                    if stalled_before && in_merge.load(Ordering::Acquire) {
                        mid.fetch_add(1, Ordering::Relaxed);
                    }
                    probes += 1;
                    if probes.is_multiple_of(32) {
                        // periodic full byte-compare across the query surface
                        check_snapshot("stalled-writer", &snap, &exp);
                    }
                    if p == VERSIONS {
                        break;
                    }
                }
            });
        }
    });

    assert_eq!(handle.latest(), VERSIONS);
    check_snapshot("stalled-writer/final", &handle.snapshot(), &exp);
    let mid = mid_merge_reads.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        mid >= (STALL_READERS as u64) * 2,
        "readers should land inside merge stall windows (wait-free reads), \
         but only {mid} probes completed mid-merge"
    );
}

#[test]
fn stalling_store_is_shareable_across_threads() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StallingStore>();
}
