//! Property-based tests (proptest) for the system's core invariants.

use proptest::prelude::*;

use xarch::core::{equiv_modulo_key_order, Archive, TimeSet};
use xarch::diff::diff_lines;
use xarch::extmem::IoConfig;
use xarch::keys::KeySpec;
use xarch::xml::{parse, Document};
use xarch::{ArchiveBuilder, Backend, VersionStore};

// ---------- TimeSet vs a BTreeSet model ----------

proptest! {
    #[test]
    fn timeset_matches_model(ops in proptest::collection::vec((0u32..80, any::<bool>()), 0..200)) {
        let mut t = TimeSet::new();
        let mut model = std::collections::BTreeSet::new();
        for (v, insert) in ops {
            if insert {
                t.insert(v);
                model.insert(v);
            } else {
                t.remove(v);
                model.remove(&v);
            }
        }
        let got: Vec<u32> = t.versions().collect();
        let want: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(got, want);
        // canonical run representation
        for w in t.intervals().windows(2) {
            prop_assert!(w[0].1 + 1 < w[1].0);
        }
        // display/parse round trip
        prop_assert_eq!(TimeSet::parse(&t.to_string()).unwrap(), t);
    }

    #[test]
    fn timeset_union_is_set_union(a in proptest::collection::btree_set(0u32..60, 0..40),
                                  b in proptest::collection::btree_set(0u32..60, 0..40)) {
        let ta: TimeSet = a.iter().copied().collect();
        let tb: TimeSet = b.iter().copied().collect();
        let tu = ta.union(&tb);
        let want: Vec<u32> = a.union(&b).copied().collect();
        let got: Vec<u32> = tu.versions().collect();
        prop_assert_eq!(got, want);
        prop_assert!(tu.is_superset(&ta));
        prop_assert!(tu.is_superset(&tb));
    }
}

// ---------- Myers diff ----------

proptest! {
    #[test]
    fn diff_apply_reaches_target(a in proptest::collection::vec("[a-d]{0,3}", 0..30),
                                 b in proptest::collection::vec("[a-d]{0,3}", 0..30)) {
        let ar: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
        let br: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
        let script = diff_lines(&ar, &br);
        prop_assert_eq!(script.apply(&ar), br);
        // inversion restores the source
        let inv = script.invert(&ar);
        let b_owned = script.apply(&ar);
        let b_refs: Vec<&str> = b_owned.iter().map(|s| s.as_str()).collect();
        prop_assert_eq!(inv.apply(&b_refs), ar);
    }
}

// ---------- compressors ----------

proptest! {
    #[test]
    fn lzss_round_trips(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let c = xarch::compress::compress(&data);
        let back = xarch::compress::decompress(&c);
        prop_assert_eq!(back.as_deref(), Some(&data[..]));
    }

    #[test]
    fn lzss_round_trips_repetitive(seed in proptest::collection::vec(any::<u8>(), 1..40),
                                   reps in 1usize..60) {
        let data: Vec<u8> = seed.iter().cycle().take(seed.len() * reps).copied().collect();
        let c = xarch::compress::compress(&data);
        let back = xarch::compress::decompress(&c);
        prop_assert_eq!(back.as_deref(), Some(&data[..]));
    }
}

// ---------- archiver correctness over random version sequences ----------

/// A named builder configuration, used to parametrize the durable-reopen
/// property over every wrapped backend.
type BackendConfig = (&'static str, fn(KeySpec) -> ArchiveBuilder);

/// A generated mini database: records keyed by id, each with one mutable
/// value field and a variable tel-like multi-set keyed by content.
fn build_version(recs: &[(u8, String, Vec<u8>)]) -> Document {
    let mut doc = Document::new("db");
    for (id, val, tels) in recs {
        let r = doc.add_element(doc.root(), "rec");
        doc.add_text_element(r, "id", &id.to_string());
        doc.add_text_element(r, "val", val);
        let mut seen = std::collections::BTreeSet::new();
        for t in tels {
            if seen.insert(*t) {
                doc.add_text_element(r, "tel", &t.to_string());
            }
        }
    }
    doc
}

fn mini_spec() -> KeySpec {
    KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))\n(/db/rec, (tel, {.}))")
        .unwrap()
}

/// One version = a set of records with distinct ids.
fn version_strategy() -> impl Strategy<Value = Vec<(u8, String, Vec<u8>)>> {
    proptest::collection::btree_map(
        0u8..12,
        ("[a-c]{0,4}", proptest::collection::vec(0u8..6, 0..3)),
        0..8,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(id, (val, tels))| (id, val, tels))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn archive_retrieves_every_random_version(
        versions in proptest::collection::vec(version_strategy(), 1..8)
    ) {
        let spec = mini_spec();
        let docs: Vec<Document> = versions.iter().map(|v| build_version(v)).collect();
        let mut a = Archive::new(spec.clone());
        for d in &docs {
            a.add_version(d).unwrap();
            a.check_invariants().unwrap();
        }
        for (i, d) in docs.iter().enumerate() {
            let got = a.retrieve(i as u32 + 1).expect("archived version");
            prop_assert!(
                equiv_modulo_key_order(&got, d, &spec),
                "version {} not reconstructed", i + 1
            );
        }
        // XML round trip preserves everything too
        let xml_text = a.to_xml_pretty();
        let reparsed = parse(&xml_text).unwrap();
        let b = xarch::core::xmlrep::from_xml(&reparsed, &spec).unwrap();
        for (i, d) in docs.iter().enumerate() {
            let got = b.retrieve(i as u32 + 1).expect("archived version");
            prop_assert!(equiv_modulo_key_order(&got, d, &spec));
        }
    }

    #[test]
    fn streamed_retrieval_matches_materialized_on_every_backend(
        versions in proptest::collection::vec(version_strategy(), 1..6)
    ) {
        // retrieve_into's bytes parse back to a document equivalent
        // (modulo key order) to retrieve's output — on all three backends.
        let spec = mini_spec();
        let docs: Vec<Document> = versions.iter().map(|v| build_version(v)).collect();
        let backends: Vec<(&str, Box<dyn VersionStore>)> = vec![
            ("in-memory", ArchiveBuilder::new(spec.clone()).build()),
            ("chunked(3)", ArchiveBuilder::new(spec.clone()).chunks(3).build()),
            (
                "extmem",
                ArchiveBuilder::new(spec.clone())
                    .backend(Backend::ExtMem(IoConfig {
                        mem_bytes: 1 << 10,
                        page_bytes: 128,
                    }))
                    .build(),
            ),
        ];
        for (label, mut store) in backends {
            for d in &docs {
                store.add_version(d).unwrap();
            }
            for (i, d) in docs.iter().enumerate() {
                let v = i as u32 + 1;
                let materialized = store.retrieve(v).unwrap().expect("archived version");
                prop_assert!(
                    equiv_modulo_key_order(&materialized, d, &spec),
                    "{} v{}: materialized mismatch", label, v
                );
                let mut bytes = Vec::new();
                prop_assert!(store.retrieve_into(v, &mut bytes).unwrap());
                let reparsed = parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
                prop_assert!(
                    equiv_modulo_key_order(&reparsed, &materialized, &spec),
                    "{} v{}: streamed bytes diverged: {}",
                    label, v, String::from_utf8_lossy(&bytes)
                );
            }
        }
    }

    #[test]
    fn durable_reopen_equals_never_closed_store_on_every_backend(
        versions in proptest::collection::vec(version_strategy(), 1..5)
    ) {
        // save → drop → reopen → retrieve(v) must equal the store that
        // never left memory, byte for byte, for every version and every
        // wrapped backend.
        let spec = mini_spec();
        let docs: Vec<Document> = versions.iter().map(|v| build_version(v)).collect();
        let configs: Vec<BackendConfig> = vec![
            ("in-memory", ArchiveBuilder::new),
            ("chunked(3)", |s| ArchiveBuilder::new(s).chunks(3)),
            ("extmem", |s| {
                ArchiveBuilder::new(s).backend(Backend::ExtMem(IoConfig {
                    mem_bytes: 1 << 10,
                    page_bytes: 128,
                }))
            }),
        ];
        for (label, configure) in configs {
            let path = xarch::storage::scratch_path("prop-reopen");
            let mut live = configure(spec.clone()).build();
            {
                let mut durable = configure(spec.clone())
                    .durable(&path)
                    .try_build()
                    .unwrap();
                for d in &docs {
                    live.add_version(d).unwrap();
                    durable.add_version(d).unwrap();
                }
            } // dropped: simulates the process exiting
            let reopened = configure(spec.clone())
                .durable(&path)
                .try_build()
                .unwrap();
            prop_assert_eq!(reopened.latest(), live.latest(), "{}", label);
            for v in 1..=docs.len() as u32 {
                let mut live_bytes = Vec::new();
                let mut reopened_bytes = Vec::new();
                let live_wrote = live.retrieve_into(v, &mut live_bytes).unwrap();
                let reopened_wrote = reopened.retrieve_into(v, &mut reopened_bytes).unwrap();
                prop_assert_eq!(live_wrote, reopened_wrote, "{} v{}", label, v);
                prop_assert_eq!(
                    &live_bytes, &reopened_bytes,
                    "{} v{}: reopened bytes diverged", label, v
                );
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn checkpointed_reopen_equals_never_closed_store(
        versions in proptest::collection::vec(version_strategy(), 1..6),
        write_every in 0u32..5,
        reopen_every in 0u32..5
    ) {
        // A store written with one RANDOM checkpoint cadence and reopened
        // with another must answer byte-for-byte like the store that never
        // left memory — checkpoints are pure redundancy, so neither the
        // cadence at write time nor at reopen time may leak into answers.
        // The mmap'd cold reader over the same file must agree too.
        use xarch::StoreReader;
        let spec = mini_spec();
        let docs: Vec<Document> = versions.iter().map(|v| build_version(v)).collect();
        let path = xarch::storage::scratch_path("prop-ckpt");
        let mut live = ArchiveBuilder::new(spec.clone()).build();
        {
            let mut durable = ArchiveBuilder::new(spec.clone())
                .checkpoint_every(write_every)
                .durable(&path)
                .try_build()
                .unwrap();
            for d in &docs {
                live.add_version(d).unwrap();
                durable.add_version(d).unwrap();
            }
        } // dropped: simulates the process exiting
        {
            let reopened = ArchiveBuilder::new(spec.clone())
                .checkpoint_every(reopen_every)
                .durable(&path)
                .try_build()
                .unwrap();
            prop_assert_eq!(reopened.latest(), live.latest(), "latest diverged");
            for v in 1..=docs.len() as u32 {
                let mut live_bytes = Vec::new();
                let mut reopened_bytes = Vec::new();
                let live_wrote = live.retrieve_into(v, &mut live_bytes).unwrap();
                let reopened_wrote = reopened.retrieve_into(v, &mut reopened_bytes).unwrap();
                prop_assert_eq!(live_wrote, reopened_wrote, "v{}: presence", v);
                prop_assert_eq!(
                    &live_bytes, &reopened_bytes,
                    "v{}: reopened bytes diverged (write cadence {}, reopen cadence {})",
                    v, write_every, reopen_every
                );
            }
        } // the cold reader refuses files with a live writer — drop first
        let cold = xarch::ColdArchive::open(&path).unwrap();
        prop_assert_eq!(cold.latest(), live.latest(), "cold latest diverged");
        for (i, d) in docs.iter().enumerate() {
            // the cold reader serves each version as originally ingested
            // (it decodes the journal block, not the merged archive), so
            // the contract is value equivalence, not byte equality
            let v = i as u32 + 1;
            let got = StoreReader::retrieve(&cold, v)
                .unwrap()
                .expect("cold version present");
            prop_assert!(
                equiv_modulo_key_order(&got, d, &spec),
                "v{}: cold read diverged (write cadence {})", v, write_every
            );
        }
        drop(cold);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn temporal_queries_agree_with_filtered_retrieve_on_every_backend(
        versions in proptest::collection::vec((version_strategy(), 0u8..8), 1..6)
    ) {
        // `as_of` must equal navigating a full retrieve; `history` must
        // equal the set of versions in which the navigation succeeds;
        // `range` must enumerate exactly the children visible in the
        // window — on every backend, plain and indexed, including *empty*
        // versions (marker 0 turns one in eight versions empty) and
        // records that disappear between versions (deleted subtrees).
        use xarch::core::query::{find_in_doc, subtree_doc};
        use xarch::core::TimeSet;

        let spec = mini_spec();
        let docs: Vec<Option<Document>> = versions
            .iter()
            .map(|(recs, marker)| (*marker != 0).then(|| build_version(recs)))
            .collect();
        let queries: Vec<Vec<xarch::core::KeyQuery>> = {
            use xarch::core::KeyQuery;
            let mut qs = vec![vec![KeyQuery::new("db")]];
            for id in 0..4u8 {
                qs.push(vec![
                    KeyQuery::new("db"),
                    KeyQuery::new("rec").with_text("id", &id.to_string()),
                ]);
                qs.push(vec![
                    KeyQuery::new("db"),
                    KeyQuery::new("rec").with_text("id", &id.to_string()),
                    KeyQuery::new("val"),
                ]);
            }
            qs
        };
        let backends: Vec<(&str, Box<dyn VersionStore>)> = vec![
            ("in-memory", ArchiveBuilder::new(spec.clone()).build()),
            ("in-memory/indexed", ArchiveBuilder::new(spec.clone()).with_index().build()),
            ("chunked(3)", ArchiveBuilder::new(spec.clone()).chunks(3).build()),
            ("chunked(3)/indexed", ArchiveBuilder::new(spec.clone()).chunks(3).with_index().build()),
            (
                "extmem",
                ArchiveBuilder::new(spec.clone())
                    .backend(Backend::ExtMem(IoConfig {
                        mem_bytes: 1 << 10,
                        page_bytes: 128,
                    }))
                    .build(),
            ),
            (
                "extmem/indexed",
                ArchiveBuilder::new(spec.clone())
                    .backend(Backend::ExtMem(IoConfig {
                        mem_bytes: 1 << 10,
                        page_bytes: 128,
                    }))
                    .with_index()
                    .build(),
            ),
        ];
        for (label, mut store) in backends {
            for d in &docs {
                match d {
                    Some(doc) => {
                        store.add_version(doc).unwrap();
                    }
                    None => {
                        store.add_empty_version().unwrap();
                    }
                }
            }
            let n = docs.len() as u32;
            for q in &queries {
                // presence per version via navigation of a full retrieve
                let mut expect_presence = TimeSet::new();
                for v in 1..=n {
                    let whole = store.retrieve(v).unwrap();
                    let navigated = whole
                        .as_ref()
                        .and_then(|doc| find_in_doc(doc, &spec, q))
                        .is_some();
                    if navigated {
                        expect_presence.insert(v);
                    }
                    let got = store.as_of(q, v).unwrap();
                    prop_assert_eq!(
                        got.is_some(), navigated,
                        "{} v{}: as_of presence diverged for {:?}", label, v, q
                    );
                    if let (Some(g), Some(doc)) = (got, whole.as_ref()) {
                        let want = find_in_doc(doc, &spec, q)
                            .and_then(|id| subtree_doc(doc, id))
                            .expect("navigated");
                        prop_assert!(
                            equiv_modulo_key_order(&g, &want, &spec),
                            "{} v{}: as_of content diverged for {:?}", label, v, q
                        );
                    }
                }
                // history == presence set (None allowed iff never present)
                let hist = store.history(q).unwrap();
                match hist {
                    Some(t) => prop_assert_eq!(
                        t, expect_presence.clone(),
                        "{}: history diverged for {:?}", label, q
                    ),
                    None => prop_assert!(
                        expect_presence.is_empty(),
                        "{}: history None but element present for {:?}", label, q
                    ),
                }
            }
            // range over every window ≡ per-version enumeration of docs
            for lo in 1..=n {
                for hi in lo..=n {
                    let hits = store.range(&[xarch::core::KeyQuery::new("db")], lo..=hi).unwrap();
                    let mut expect: std::collections::BTreeMap<xarch::core::KeyQuery, TimeSet> =
                        std::collections::BTreeMap::new();
                    for v in lo..=hi {
                        if let Some(doc) = store.retrieve(v).unwrap() {
                            for step in xarch::core::query::keyed_children_in_doc(
                                &doc, &spec, &[xarch::core::KeyQuery::new("db")],
                            ) {
                                expect.entry(step).or_default().insert(v);
                            }
                        }
                    }
                    let got: Vec<(xarch::core::KeyQuery, TimeSet)> =
                        hits.into_iter().map(|e| (e.step, e.time)).collect();
                    let want: Vec<(xarch::core::KeyQuery, TimeSet)> = expect.into_iter().collect();
                    prop_assert_eq!(
                        got, want,
                        "{}: range {}..={} diverged", label, lo, hi
                    );
                }
            }
        }
    }

    #[test]
    fn batched_ingest_agrees_with_serial_on_every_backend(
        versions in proptest::collection::vec(version_strategy(), 1..7),
        cuts in proptest::collection::vec(1usize..4, 1..7)
    ) {
        // a RANDOM partition of a random document sequence into batches
        // must agree — retrieve bytes and history answers — with serial
        // one-at-a-time ingestion, on every backend the builder offers;
        // and a batched-then-reopened durable store must agree too.
        let spec = mini_spec();
        let docs: Vec<Document> = versions.iter().map(|v| build_version(v)).collect();
        // turn the random cut list into a partition of `docs`
        let mut batches: Vec<&[Document]> = Vec::new();
        let mut at = 0usize;
        let mut ci = 0usize;
        while at < docs.len() {
            let take = cuts[ci % cuts.len()].min(docs.len() - at);
            batches.push(&docs[at..at + take]);
            at += take;
            ci += 1;
        }
        let configs: Vec<BackendConfig> = vec![
            ("in-memory", ArchiveBuilder::new),
            ("in-memory/indexed", |s| ArchiveBuilder::new(s).with_index()),
            ("chunked(3)", |s| ArchiveBuilder::new(s).chunks(3)),
            ("extmem", |s| {
                ArchiveBuilder::new(s).backend(Backend::ExtMem(IoConfig {
                    mem_bytes: 1 << 10,
                    page_bytes: 128,
                }))
            }),
        ];
        let queries: Vec<Vec<xarch::core::KeyQuery>> = {
            use xarch::core::KeyQuery;
            (0..6u8)
                .map(|id| vec![
                    KeyQuery::new("db"),
                    KeyQuery::new("rec").with_text("id", &id.to_string()),
                ])
                .collect()
        };
        for (label, configure) in configs {
            let mut serial = configure(spec.clone()).build();
            let mut batched = configure(spec.clone()).build();
            let path = xarch::storage::scratch_path("prop-batch");
            let mut durable = configure(spec.clone())
                .durable(&path)
                .try_build()
                .unwrap();
            for d in &docs {
                serial.add_version(d).unwrap();
            }
            let mut assigned = Vec::new();
            for b in &batches {
                assigned.extend(batched.add_versions(b).unwrap());
                durable.add_versions(b).unwrap();
            }
            prop_assert_eq!(&assigned, &(1..=docs.len() as u32).collect::<Vec<_>>(), "{}", label);
            drop(durable); // "kill" the process; every batch is on disk
            let reopened = configure(spec.clone())
                .durable(&path)
                .try_build()
                .unwrap();
            for v in 1..=docs.len() as u32 {
                let mut want = Vec::new();
                let mut got = Vec::new();
                let mut re = Vec::new();
                let ww = serial.retrieve_into(v, &mut want).unwrap();
                let gw = batched.retrieve_into(v, &mut got).unwrap();
                let rw = reopened.retrieve_into(v, &mut re).unwrap();
                prop_assert_eq!(ww, gw, "{} v{}: presence", label, v);
                prop_assert_eq!(ww, rw, "{} v{}: reopened presence", label, v);
                prop_assert_eq!(&want, &got, "{} v{}: batched bytes diverged", label, v);
                prop_assert_eq!(&want, &re, "{} v{}: reopened bytes diverged", label, v);
            }
            for q in &queries {
                prop_assert_eq!(
                    batched.history(q).unwrap(),
                    serial.history(q).unwrap(),
                    "{}: history {:?}", label, q
                );
                prop_assert_eq!(
                    reopened.history(q).unwrap(),
                    serial.history(q).unwrap(),
                    "{}: reopened history {:?}", label, q
                );
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn canonical_equality_iff_value_equality(
        a in version_strategy(),
        b in version_strategy()
    ) {
        let da = build_version(&a);
        let db = build_version(&b);
        let ca = xarch::xml::canon::canonical(&da, da.root());
        let cb = xarch::xml::canon::canonical(&db, db.root());
        let veq = xarch::xml::value_equal(&da, da.root(), &db, db.root());
        prop_assert_eq!(ca == cb, veq);
    }
}
