//! The network service's acceptance bar, in two movements.
//!
//! **Torture** (satellite 1): a peer may send any byte sequence —
//! truncated frames, oversized length prefixes, corrupt bodies, verbs
//! that do not exist, handshakes from the future — and the server must
//! answer a structured error or drop the connection, never panic and
//! never lose a worker. After every assault, a well-behaved client must
//! still get service.
//!
//! **Differential** (satellite 2): every query verb answered over a
//! real socket must equal the same query asked of a local [`Snapshot`]
//! at the same pin — byte-compared through the *same call path* on both
//! sides (`retrieve` streams via `retrieve_into` on the server, so the
//! local side streams too; `as_of` materializes and compact-prints on
//! both sides) — across three backend configurations, including while a
//! curator ingests concurrently.
//!
//! [`Snapshot`]: xarch::Snapshot

use std::io::Write as _;
use std::net::TcpStream;

use xarch::core::KeyQuery;
use xarch::storage::scratch_path;
use xarch::xml::parse;
use xarch::StoreReader;
use xarch_proto::{
    read_frame, write_frame, Client, ClientError, ErrorCode, FrameError, Lease, Request, Response,
    MAX_FRAME_LEN,
};
use xarch_server::{RunningServer, Server, ServerConfig};

const SPEC: &str = "(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))";

fn config(extra: &str) -> ServerConfig {
    let mut text = String::from("listen = 127.0.0.1:0\nworkers = 3\nread_timeout_ms = 5000\n");
    text.push_str(extra);
    for line in SPEC.lines() {
        text.push_str(&format!("spec = {line}\n"));
    }
    ServerConfig::from_text(&text).expect("test config must validate")
}

fn start(extra: &str) -> RunningServer {
    Server::start(config(extra)).expect("server must start")
}

/// Version `i` holds records `1..=i`, each stamped with the version.
fn doc(i: u32) -> String {
    let mut s = String::from("<db>");
    for r in 1..=i {
        s.push_str(&format!("<rec><id>{r}</id><val>v{i}</val></rec>"));
    }
    s.push_str("</db>");
    s
}

fn q(id: u32) -> Vec<KeyQuery> {
    vec![
        KeyQuery::new("db"),
        KeyQuery::new("rec").with_text("id", &id.to_string()),
    ]
}

/// Raw-socket request/response for torture tests that must control the
/// exact bytes on the wire.
fn raw_call(stream: &mut TcpStream, body: &[u8]) -> Result<Response, FrameError> {
    write_frame(stream, body)?;
    let resp = read_frame(stream, MAX_FRAME_LEN)?;
    Ok(Response::decode(&resp).expect("server responses always decode"))
}

fn raw_hello(stream: &mut TcpStream) -> Response {
    raw_call(stream, &Request::Hello { min: 1, max: 1 }.encode()).expect("hello exchange")
}

fn expect_error(resp: &Response, code: ErrorCode) {
    match resp {
        Response::Error { code: got, .. } => assert_eq!(*got, code, "{resp:?}"),
        other => panic!("expected {code} error, got {other:?}"),
    }
}

// --------------------------------------------------------------------------
// torture
// --------------------------------------------------------------------------

#[test]
fn truncated_frames_never_wedge_the_server() {
    let server = start("");
    // partial header, then gone
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(&[0x05, 0x00]).unwrap();
    drop(s);
    // full header promising a body that never arrives
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(&[16, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD]).unwrap();
    drop(s);
    // the server still serves
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
}

#[test]
fn oversized_length_prefix_is_refused_with_a_structured_error() {
    let server = start("max_frame_len = 4096\n");
    let mut s = TcpStream::connect(server.addr()).unwrap();
    // header advertising a 4 GiB body; no body follows (and none is read)
    let mut header = Vec::new();
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&header).unwrap();
    let resp = read_frame(&mut s, MAX_FRAME_LEN).expect("a structured refusal");
    expect_error(&Response::decode(&resp).unwrap(), ErrorCode::FrameTooLarge);
    // the connection is dropped afterwards: the stream is desynced
    assert!(matches!(
        read_frame(&mut s, MAX_FRAME_LEN),
        Err(FrameError::Eof | FrameError::Io(_))
    ));
    // fresh clients are unaffected
    Client::connect(server.addr()).unwrap().ping().unwrap();
}

#[test]
fn corrupt_frames_fail_the_crc_and_drop_the_connection() {
    let server = start("");
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let body = Request::Hello { min: 1, max: 1 }.encode();
    let mut framed = Vec::new();
    write_frame(&mut framed, &body).unwrap();
    let last = framed.len() - 1;
    framed[last] ^= 0x20; // flip one body byte; header CRC now lies
    s.write_all(&framed).unwrap();
    let resp = read_frame(&mut s, MAX_FRAME_LEN).expect("a structured refusal");
    expect_error(&Response::decode(&resp).unwrap(), ErrorCode::BadFrame);
    assert!(matches!(
        read_frame(&mut s, MAX_FRAME_LEN),
        Err(FrameError::Eof | FrameError::Io(_))
    ));
    Client::connect(server.addr()).unwrap().ping().unwrap();
}

#[test]
fn unknown_verbs_and_bad_payloads_keep_the_connection_alive() {
    let server = start("");
    let mut s = TcpStream::connect(server.addr()).unwrap();
    assert!(matches!(raw_hello(&mut s), Response::Hello(_)));
    // an unassigned verb byte: structured error, connection survives
    let resp = raw_call(&mut s, &[0x7F]).unwrap();
    expect_error(&resp, ErrorCode::UnknownVerb);
    // a known verb with a truncated payload: same story
    let resp = raw_call(&mut s, &[0x10]).unwrap(); // RETRIEVE with no fields
    expect_error(&resp, ErrorCode::BadPayload);
    // a decoded request with trailing garbage: same story
    let mut body = Request::Ping.encode();
    body.push(0x00);
    let resp = raw_call(&mut s, &body).unwrap();
    expect_error(&resp, ErrorCode::BadPayload);
    // and the very same connection still answers real requests
    assert!(matches!(
        raw_call(&mut s, &Request::Ping.encode()).unwrap(),
        Response::Pong
    ));
}

#[test]
fn handshake_gates_and_version_mismatch() {
    let server = start("");
    // any verb before hello is refused, and the connection survives to
    // complete the handshake afterwards
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let resp = raw_call(&mut s, &Request::Ping.encode()).unwrap();
    expect_error(&resp, ErrorCode::NeedHello);
    assert!(matches!(raw_hello(&mut s), Response::Hello(_)));
    assert!(matches!(
        raw_call(&mut s, &Request::Ping.encode()).unwrap(),
        Response::Pong
    ));

    // a client from the future is refused and dropped
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let resp = raw_call(&mut s, &Request::Hello { min: 99, max: 120 }.encode()).unwrap();
    expect_error(&resp, ErrorCode::VersionMismatch);
    assert!(matches!(
        read_frame(&mut s, MAX_FRAME_LEN),
        Err(FrameError::Eof | FrameError::Io(_))
    ));

    // the Client wrapper surfaces the refusal as a handshake error
    let err = Client::connect(server.addr())
        .map(|_| ())
        .map_err(|e| e.to_string());
    assert!(err.is_ok(), "a current client must connect: {err:?}");
}

#[test]
fn a_flood_of_garbage_does_not_leak_workers() {
    let server = start("workers = 2\nmax_frame_len = 1024\n");
    // far more hostile connections than workers, several kinds of hostility
    for i in 0..12u32 {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        match i % 4 {
            0 => {
                // oversized prefix
                let _ = s.write_all(&[0xFF; 8]);
            }
            1 => {
                // truncated header
                let _ = s.write_all(&[1, 2, 3]);
            }
            2 => {
                // wrong magic in an otherwise valid frame
                let mut body = vec![0x01];
                body.extend_from_slice(b"NOPE");
                body.extend_from_slice(&[1, 1]);
                let _ = write_frame(&mut s, &body);
            }
            _ => {
                // clean close with no bytes at all
            }
        }
        drop(s);
    }
    // with only 2 workers, service is proof nothing leaked or wedged
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("server_rejected_frames"),
        "rejected-frame counter must be exposed"
    );
}

#[test]
fn lease_lifecycle_and_errors() {
    let server = start("");
    server
        .handle()
        .add_versions(&[parse(&doc(1)).unwrap()])
        .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let (lease, pinned) = client.open_snapshot().unwrap();
    assert_eq!(pinned, 1);
    // the curator moves on; the lease does not
    server
        .handle()
        .add_versions(&[parse(&doc(2)).unwrap()])
        .unwrap();
    assert_eq!(client.latest(lease).unwrap(), 1);
    assert_eq!(client.latest(Lease::FRESH).unwrap(), 2);
    assert!(
        client.retrieve(lease, 2).unwrap().is_none(),
        "beyond the pin"
    );

    client.close_snapshot(lease).unwrap();
    let err = client.latest(lease).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::NoSuchLease,
                ..
            }
        ),
        "{err}"
    );
    let err = client.close_snapshot(Lease(777)).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::NoSuchLease,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn shutdown_is_refused_unless_enabled() {
    let server = start("");
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.shutdown().unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::ShutdownRefused,
                ..
            }
        ),
        "{err}"
    );
    client.ping().unwrap();

    let server = start("allow_shutdown = true\n");
    let mut client = Client::connect(server.addr()).unwrap();
    client.shutdown().unwrap();
    server.wait(); // must return: the verb really stops the server
}

// --------------------------------------------------------------------------
// differential
// --------------------------------------------------------------------------

/// Streams `v` out of a local reader through the same `retrieve_into`
/// path the server uses, so both sides of the comparison share a code
/// path and the comparison is byte-exact.
fn local_retrieve(snap: &xarch::Snapshot, v: u32) -> Option<String> {
    let mut buf = Vec::new();
    let found = snap.retrieve_into(v, &mut buf).unwrap();
    found.then(|| String::from_utf8(buf).unwrap())
}

fn local_as_of(snap: &xarch::Snapshot, steps: &[KeyQuery], v: u32) -> Option<String> {
    snap.as_of(steps, v)
        .unwrap()
        .map(|d| xarch::xml::writer::to_compact_string(&d))
}

fn differential_for(extra: &str) {
    let server = Server::start(config(extra)).expect("server must start");
    let mut client = Client::connect(server.addr()).unwrap();

    // ingest over the wire; the server assigns consecutive versions
    let batch: Vec<String> = (1..=3).map(doc).collect();
    assert_eq!(client.ingest(&batch).unwrap(), vec![1, 2, 3]);

    // quiesced: a wire lease and a local snapshot pin the same version
    let (lease, pinned) = client.open_snapshot().unwrap();
    let snap = server.handle().snapshot();
    assert_eq!(pinned, snap.pinned(), "no curator is running");
    assert_eq!(client.latest(lease).unwrap(), snap.latest());

    // retrieve: every version, plus 0 and one past the pin
    for v in 0..=pinned + 1 {
        assert_eq!(
            client.retrieve(lease, v).unwrap(),
            local_retrieve(&snap, v),
            "retrieve({v}) [{extra:?}]"
        );
    }
    // as_of and the per-element verbs: live, dead, and absent paths
    for steps in [q(1), q(2), q(99), vec![KeyQuery::new("db")]] {
        for v in 1..=pinned {
            assert_eq!(
                client.as_of(lease, v, &steps).unwrap(),
                local_as_of(&snap, &steps, v),
                "as_of({steps:?}, {v}) [{extra:?}]"
            );
        }
        assert_eq!(
            client.history(lease, &steps).unwrap(),
            snap.history(&steps).unwrap(),
            "history({steps:?}) [{extra:?}]"
        );
        assert_eq!(
            client.history_values(lease, &steps).unwrap(),
            snap.history_values(&steps).unwrap(),
            "history_values({steps:?}) [{extra:?}]"
        );
        let delta_wire = client.diff(lease, &steps, 1, pinned).unwrap();
        let delta_local = snap.diff(&steps, 1, pinned).unwrap();
        assert_eq!(delta_wire, delta_local, "diff({steps:?}) [{extra:?}]");
    }
    assert_eq!(
        client
            .range(lease, &[KeyQuery::new("db")], 1, pinned)
            .unwrap(),
        snap.range(&[KeyQuery::new("db")], 1..=pinned).unwrap(),
        "range [{extra:?}]"
    );
    assert_eq!(
        client.stats(lease).unwrap(),
        snap.stats().unwrap(),
        "stats [{extra:?}]"
    );
    client.close_snapshot(lease).unwrap();

    // ingest-while-querying: the curator appends through the handle
    // while wire clients read. Pins must be monotone per connection and
    // already-committed versions must answer identically throughout.
    let v1_bytes = local_retrieve(&server.handle().snapshot(), 1).unwrap();
    let curator = server.handle().clone();
    let stop_flag = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop_flag;
        scope.spawn(move || {
            for i in 4..=9 {
                curator.add_versions(&[parse(&doc(i)).unwrap()]).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        let addr = server.addr();
        let v1 = v1_bytes.as_str();
        for _ in 0..2 {
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut last_pin = 0u32;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let (lease, pinned) = c.open_snapshot().unwrap();
                    assert!(pinned >= last_pin, "pins must be monotone per connection");
                    last_pin = pinned;
                    // a settled version answers identically forever
                    assert_eq!(c.retrieve(lease, 1).unwrap().as_deref(), Some(v1));
                    // the lease is self-consistent: latest == pin
                    assert_eq!(c.latest(lease).unwrap(), pinned);
                    c.close_snapshot(lease).unwrap();
                }
            });
        }
    });

    // after the dust settles, the full archive differs nowhere
    let snap = server.handle().snapshot();
    assert_eq!(snap.pinned(), 9);
    for v in 1..=9 {
        assert_eq!(
            client.retrieve(Lease::FRESH, v).unwrap(),
            local_retrieve(&snap, v),
            "post-churn retrieve({v}) [{extra:?}]"
        );
    }
}

#[test]
fn differential_in_memory() {
    differential_for("");
}

#[test]
fn differential_durable_checkpointed() {
    let path = scratch_path("service-diff");
    let extra = format!("durable = {}\ncheckpoint_every = 2\n", path.display());
    differential_for(&extra);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn differential_indexed() {
    differential_for("indexed = true\n");
}

#[test]
fn health_and_metrics_reflect_served_traffic() {
    let server = start("");
    let mut client = Client::connect(server.addr()).unwrap();
    client.ingest(&[doc(1)]).unwrap();
    client.retrieve(Lease::FRESH, 1).unwrap();
    let health = client.health().unwrap();
    assert!(health.ok);
    assert_eq!(health.latest, 1);
    assert!(health.served >= 3, "hello + ingest + retrieve: {health:?}");
    let metrics = client.metrics().unwrap();
    for needle in [
        "server_requests",
        "server_connections",
        "server_retrieve_duration_count",
        "server_ingest_duration_count",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in exposition");
    }
}
