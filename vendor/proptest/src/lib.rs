//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the surface the workspace's property tests use: the [`proptest!`] macro
//! (with the optional `#![proptest_config(..)]` header), [`Strategy`] with
//! `prop_map`, [`any`] for primitives, integer-range strategies, simple
//! `"[a-z]{m,n}"` character-class string strategies, the
//! `collection::{vec, btree_set, btree_map}` combinators, and the
//! `prop_assert*` macros.
//!
//! Cases are generated from a seed derived from the test's module path and
//! case index, so every run explores the same inputs — failures reproduce
//! without a persistence file. There is no shrinking: the failing input is
//! printed as-is by the panic message of the underlying `assert!`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Lower than upstream's 256: these run in CI's debug profile. The
        // PROPTEST_CASES variable raises it for soak runs.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// The deterministic generator behind every strategy (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test identity and case index so case k of test t is
    /// the same input on every run.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ ((case as u64) << 32 | 0x9e37),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A value generator. Unlike upstream there is no value tree or shrinking:
/// `generate` produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------- primitive strategies ----------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u8>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy yielding any value of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(width) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, usize);

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// ---------- string strategies ----------

/// A `&str` literal is a regex strategy upstream; here the supported
/// grammar is the character-class-with-repetition shape the tests use:
/// `[a-dxy]{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern `{self}`"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[<class>]{m,n}` into (alphabet, m, n).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return None;
            }
            chars.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    (lo <= hi).then_some((chars, lo, hi))
}

// ---------- tuple strategies ----------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

// ---------- collection strategies ----------

pub mod collection {
    use super::*;

    /// Size ranges accepted by the collection combinators.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub lo: usize,
        /// Exclusive.
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set(element, size)`. As upstream, the
    /// set may come out smaller than requested when elements collide.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `proptest::collection::btree_map(key, value, size)`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

// ---------- macros ----------

/// The test harness macro. Supports the two shapes the workspace uses:
/// with and without a `#![proptest_config(..)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain assertion in this shim (panics, no rejection).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain equality assertion in this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain inequality assertion in this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = parse_class_pattern("[a-d]{0,3}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', 'd']);
        assert_eq!((lo, hi), (0, 3));
        let (chars, lo, hi) = parse_class_pattern("[xy]{2}").unwrap();
        assert_eq!(chars, vec!['x', 'y']);
        assert_eq!((lo, hi), (2, 2));
        assert!(parse_class_pattern("plain").is_none());
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..200 {
            let s = "[a-c]{0,4}".generate(&mut rng);
            assert!(s.len() <= 4);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let gen_once = || {
            let mut rng = TestRng::for_case("det", 3);
            collection::vec(0u32..100, 0..20).generate(&mut rng)
        };
        assert_eq!(gen_once(), gen_once());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_shape_compiles(v in collection::vec((0u32..10, any::<bool>()), 0..5),
                                s in "[a-b]{1,2}") {
            prop_assert!(v.len() < 5);
            prop_assert!(!s.is_empty());
        }
    }
}
