//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this workspace vendors
//! the exact surface its generators use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! and [`Rng::gen_bool`]. The generator is splitmix64 — deterministic and
//! seeded, which is all `xarch_datagen` requires ("everything is seeded; no
//! generator touches wall-clock or global state"). Streams differ from the
//! real `StdRng` (ChaCha12), so seeds reproduce *within* this workspace
//! only.

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding from a `u64`, as in rand 0.8.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types [`Rng::gen_range`] can sample. `i128` comfortably holds
/// every supported type, signed or unsigned.
pub trait SampleUniform: Copy {
    fn from_i128(v: i128) -> Self;
    fn to_i128(self) -> i128;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_width<T: SampleUniform, R: RngCore + ?Sized>(lo: i128, width: u128, rng: &mut R) -> T {
    T::from_i128(lo + (rng.next_u64() as u128 % width) as i128)
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        sample_width(lo, (hi - lo) as u128, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        sample_width(lo, (hi - lo) as u128 + 1, rng)
    }
}

/// A uniform draw from `[0, 1)` with 53 mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / ((1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, as rand does
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A seeded deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1u32..=28);
            assert!((1..=28).contains(&w));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
