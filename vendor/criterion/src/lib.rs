//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the benchmark-harness surface `microbench.rs` uses: groups, per-group
//! sample sizes, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros. Timing is a
//! plain mean over `sample_size` timed batches — enough to compare the
//! relative cost of operations, with none of upstream's statistics.

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
        }
    }
}

/// A named parameter for `bench_with_input`.
#[derive(Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<D: Display>(p: D) -> Self {
        Self(p.to_string())
    }

    pub fn new<D: Display>(name: &str, p: D) -> Self {
        Self(format!("{name}/{p}"))
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher { nanos: Vec::new() };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = if b.nanos.is_empty() {
            0
        } else {
            b.nanos.iter().sum::<u128>() / b.nanos.len() as u128
        };
        println!("  {name}: {} ns/iter (mean of {})", mean, b.nanos.len());
    }

    pub fn finish(&mut self) {}
}

/// Runs and times the measured closure.
pub struct Bencher {
    nanos: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.nanos.push(start.elapsed().as_nanos());
    }
}

/// Builds a function running each benchmark in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Builds the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
