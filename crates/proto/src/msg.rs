//! Request/response messages and their body codecs.
//!
//! Every frame body is one message: a tag byte (a *verb* for requests,
//! a *response tag* for responses) followed by a verb-specific payload
//! built from the workspace's shared wire primitives
//! ([`xarch_core::wire`]: LEB128 varints, length-prefixed strings and
//! byte slices). The grammar is specified byte-for-byte in
//! `docs/PROTOCOL.md`; the [`verbs`], [`tags`] and [`ErrorCode`]
//! constants here are what the docs golden test pins.
//!
//! Decoding is total: malformed bytes produce a positioned
//! [`WireError`] (wrapped in [`DecodeError`]), an unassigned tag byte
//! produces [`DecodeError::UnknownTag`], and bytes left over after a
//! complete message produce [`DecodeError::Trailing`] — nothing panics,
//! nothing is silently ignored.

use xarch_core::wire::{get_bytes, get_str, get_varint, put_bytes, put_str, put_varint, WireError};
use xarch_core::{ElementHistory, KeyQuery, RangeEntry, StoreStats, TimeSet, VersionDelta};

use crate::{MIN_PROTO_VERSION, PROTO_MAGIC, PROTO_VERSION};

/// Request verb bytes — the first body byte of every request frame.
pub mod verbs {
    /// Handshake: magic, then the client's supported version range.
    pub const HELLO: u8 = 0x01;
    /// Liveness probe; answered with [`super::tags::PONG`].
    pub const PING: u8 = 0x02;
    /// Whole-version retrieval at a pin.
    pub const RETRIEVE: u8 = 0x10;
    /// Partial subtree retrieval (`as_of`).
    pub const AS_OF: u8 = 0x11;
    /// Element existence history.
    pub const HISTORY: u8 = 0x12;
    /// Existence plus distinct contents over time.
    pub const HISTORY_VALUES: u8 = 0x13;
    /// Keyed-children range scan over a version window.
    pub const RANGE: u8 = 0x14;
    /// Line diff of one element between two versions.
    pub const DIFF: u8 = 0x15;
    /// Aggregate store statistics.
    pub const STATS: u8 = 0x16;
    /// The latest archived version number.
    pub const LATEST: u8 = 0x17;
    /// Batched ingest: documents to merge as consecutive versions.
    pub const INGEST: u8 = 0x20;
    /// Pin a server-held snapshot lease.
    pub const SNAP_OPEN: u8 = 0x28;
    /// Release a snapshot lease.
    pub const SNAP_CLOSE: u8 = 0x29;
    /// Prometheus-text metrics exposition.
    pub const METRICS: u8 = 0x30;
    /// Service health summary.
    pub const HEALTH: u8 = 0x31;
    /// Begin graceful shutdown (when the server allows it).
    pub const SHUTDOWN: u8 = 0x32;
}

/// Response tag bytes — the first body byte of every response frame.
/// The high bit distinguishes responses from request verbs on the wire.
pub mod tags {
    /// Handshake accepted: negotiated version, key spec, latest version.
    pub const HELLO_OK: u8 = 0x81;
    /// Answer to [`super::verbs::PING`].
    pub const PONG: u8 = 0x82;
    /// An optional document (retrieve / as_of answers).
    pub const DOCUMENT: u8 = 0x83;
    /// An optional existence time set.
    pub const HISTORY: u8 = 0x84;
    /// An optional full element history.
    pub const HISTORY_VALUES: u8 = 0x85;
    /// Range-scan hits.
    pub const RANGE: u8 = 0x86;
    /// A version delta.
    pub const DIFF: u8 = 0x87;
    /// Aggregate statistics.
    pub const STATS: u8 = 0x88;
    /// The latest version number at the answering pin.
    pub const LATEST: u8 = 0x89;
    /// Version numbers assigned to an ingested batch.
    pub const INGESTED: u8 = 0x8A;
    /// A snapshot lease was pinned.
    pub const SNAP_OPENED: u8 = 0x8B;
    /// A snapshot lease was released.
    pub const SNAP_CLOSED: u8 = 0x8C;
    /// Prometheus-text metrics.
    pub const METRICS: u8 = 0x8D;
    /// Health summary.
    pub const HEALTH: u8 = 0x8E;
    /// Graceful shutdown acknowledged.
    pub const SHUTTING_DOWN: u8 = 0x8F;
    /// A structured error.
    pub const ERROR: u8 = 0xEE;
}

/// Structured error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame envelope was malformed (bad CRC, truncated body).
    BadFrame = 1,
    /// The request's verb byte is not assigned.
    UnknownVerb = 2,
    /// The verb is known but its payload failed to decode.
    BadPayload = 3,
    /// Handshake version ranges do not intersect, or the magic is wrong.
    VersionMismatch = 4,
    /// A non-`Hello` request arrived before the handshake completed.
    NeedHello = 5,
    /// The archive backend failed to answer (`StoreError` text attached).
    Store = 6,
    /// The frame's advertised length exceeds the receiver's limit.
    FrameTooLarge = 7,
    /// The request named a snapshot lease this connection does not hold.
    NoSuchLease = 8,
    /// The server is shutting down, or shutdown was requested but the
    /// configuration forbids remote shutdown.
    ShutdownRefused = 9,
}

impl ErrorCode {
    /// The wire byte for this code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte back into a code.
    pub fn from_code(byte: u8) -> Option<ErrorCode> {
        match byte {
            1 => Some(ErrorCode::BadFrame),
            2 => Some(ErrorCode::UnknownVerb),
            3 => Some(ErrorCode::BadPayload),
            4 => Some(ErrorCode::VersionMismatch),
            5 => Some(ErrorCode::NeedHello),
            6 => Some(ErrorCode::Store),
            7 => Some(ErrorCode::FrameTooLarge),
            8 => Some(ErrorCode::NoSuchLease),
            9 => Some(ErrorCode::ShutdownRefused),
            _ => None,
        }
    }

    /// The code's stable name, as used in diagnostics and the spec.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::BadPayload => "bad-payload",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::NeedHello => "need-hello",
            ErrorCode::Store => "store",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::NoSuchLease => "no-such-lease",
            ErrorCode::ShutdownRefused => "shutdown-refused",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Why a message body failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The first body byte is not an assigned verb / response tag.
    UnknownTag(u8),
    /// A payload field failed to decode (positioned).
    Wire(WireError),
    /// The message decoded completely but bytes remain after it.
    Trailing {
        /// Offset of the first unconsumed byte.
        at: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownTag(b) => write!(f, "unassigned message tag {b:#04x}"),
            DecodeError::Wire(e) => write!(f, "malformed payload: {e}"),
            DecodeError::Trailing { at } => {
                write!(f, "trailing bytes after a complete message (offset {at})")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<WireError> for DecodeError {
    fn from(e: WireError) -> Self {
        DecodeError::Wire(e)
    }
}

fn wire_err<T>(offset: usize, reason: &'static str) -> Result<T, WireError> {
    Err(WireError { offset, reason })
}

// ---- field codecs ---------------------------------------------------------

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, WireError> {
    let at = *pos;
    let v = get_varint(buf, pos)?;
    u32::try_from(v).map_err(|_| WireError {
        offset: at,
        reason: "varint exceeds u32",
    })
}

fn get_usize(buf: &[u8], pos: &mut usize) -> Result<usize, WireError> {
    let at = *pos;
    let v = get_varint(buf, pos)?;
    usize::try_from(v).map_err(|_| WireError {
        offset: at,
        reason: "varint exceeds usize",
    })
}

fn get_flag(buf: &[u8], pos: &mut usize) -> Result<bool, WireError> {
    let at = *pos;
    match buf.get(*pos) {
        Some(0) => {
            *pos += 1;
            Ok(false)
        }
        Some(1) => {
            *pos += 1;
            Ok(true)
        }
        Some(_) => wire_err(at, "flag byte must be 0 or 1"),
        None => wire_err(at, "truncated flag byte"),
    }
}

fn get_string(buf: &[u8], pos: &mut usize) -> Result<String, WireError> {
    get_str(buf, pos)
}

fn put_steps(out: &mut Vec<u8>, steps: &[KeyQuery]) {
    put_varint(out, steps.len() as u64);
    for s in steps {
        put_str(out, &s.tag);
        put_varint(out, s.parts.len() as u64);
        for (path, value) in &s.parts {
            put_str(out, path);
            put_str(out, value);
        }
    }
}

fn get_steps(buf: &[u8], pos: &mut usize) -> Result<Vec<KeyQuery>, WireError> {
    let n = get_varint(buf, pos)?;
    let mut steps = Vec::new();
    for _ in 0..n {
        let tag = get_string(buf, pos)?;
        let parts_n = get_varint(buf, pos)?;
        let mut parts = Vec::new();
        for _ in 0..parts_n {
            let path = get_string(buf, pos)?;
            let value = get_string(buf, pos)?;
            parts.push((path, value));
        }
        steps.push(KeyQuery { tag, parts });
    }
    Ok(steps)
}

fn put_timeset(out: &mut Vec<u8>, t: &TimeSet) {
    let runs = t.intervals();
    put_varint(out, runs.len() as u64);
    for (lo, hi) in runs {
        put_varint(out, u64::from(*lo));
        put_varint(out, u64::from(*hi));
    }
}

fn get_timeset(buf: &[u8], pos: &mut usize) -> Result<TimeSet, WireError> {
    let n = get_varint(buf, pos)?;
    let mut t = TimeSet::new();
    for _ in 0..n {
        let at = *pos;
        let lo = get_u32(buf, pos)?;
        let hi = get_u32(buf, pos)?;
        if lo == 0 || lo > hi {
            return wire_err(at, "invalid time interval");
        }
        t = t.union(&TimeSet::from_range(lo, hi));
    }
    Ok(t)
}

fn put_opt_doc(out: &mut Vec<u8>, doc: Option<&str>) {
    match doc {
        None => out.push(0),
        Some(xml) => {
            out.push(1);
            put_bytes(out, xml.as_bytes());
        }
    }
}

fn get_opt_doc(buf: &[u8], pos: &mut usize) -> Result<Option<String>, WireError> {
    if !get_flag(buf, pos)? {
        return Ok(None);
    }
    let at = *pos;
    let bytes = get_bytes(buf, pos)?;
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(Some(s.to_owned())),
        Err(_) => wire_err(at, "document is not utf-8"),
    }
}

// ---- requests -------------------------------------------------------------

/// A decoded request. `lease` selects the answering snapshot: `0` pins
/// a fresh snapshot for this request alone; a nonzero id names a lease
/// previously opened on this connection with [`Request::SnapOpen`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake: the client's supported protocol version range.
    Hello {
        /// Oldest protocol revision the client accepts.
        min: u32,
        /// Newest protocol revision the client accepts.
        max: u32,
    },
    /// Liveness probe.
    Ping,
    /// Whole-version retrieval.
    Retrieve {
        /// Answering snapshot (0 = fresh pin).
        lease: u64,
        /// Version to reconstruct.
        v: u32,
    },
    /// Partial subtree retrieval at a version.
    AsOf {
        /// Answering snapshot (0 = fresh pin).
        lease: u64,
        /// Version to answer at.
        v: u32,
        /// Key-query path addressing the element.
        steps: Vec<KeyQuery>,
    },
    /// Element existence history.
    History {
        /// Answering snapshot (0 = fresh pin).
        lease: u64,
        /// Key-query path addressing the element.
        steps: Vec<KeyQuery>,
    },
    /// Existence plus distinct contents over time.
    HistoryValues {
        /// Answering snapshot (0 = fresh pin).
        lease: u64,
        /// Key-query path addressing the element.
        steps: Vec<KeyQuery>,
    },
    /// Keyed-children scan over a version window.
    Range {
        /// Answering snapshot (0 = fresh pin).
        lease: u64,
        /// First version of the window (inclusive).
        lo: u32,
        /// Last version of the window (inclusive).
        hi: u32,
        /// Key-query path addressing the parent element.
        prefix: Vec<KeyQuery>,
    },
    /// Line diff of one element between two versions.
    Diff {
        /// Answering snapshot (0 = fresh pin).
        lease: u64,
        /// Earlier version.
        v1: u32,
        /// Later version.
        v2: u32,
        /// Key-query path addressing the element.
        steps: Vec<KeyQuery>,
    },
    /// Aggregate statistics.
    Stats {
        /// Answering snapshot (0 = fresh pin).
        lease: u64,
    },
    /// The latest archived version.
    Latest {
        /// Answering snapshot (0 = fresh pin).
        lease: u64,
    },
    /// Batched ingest: each entry is one document as XML text, merged
    /// as consecutive versions under the server's group-commit path.
    Ingest {
        /// The documents, in merge order.
        docs: Vec<String>,
    },
    /// Pin a snapshot lease held by the server for this connection.
    SnapOpen,
    /// Release a snapshot lease.
    SnapClose {
        /// The lease to release.
        lease: u64,
    },
    /// Prometheus-text metrics exposition.
    Metrics,
    /// Health summary.
    Health,
    /// Request graceful shutdown.
    Shutdown,
}

impl Request {
    /// Encodes the request as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { min, max } => {
                out.push(verbs::HELLO);
                out.extend_from_slice(&PROTO_MAGIC);
                put_varint(&mut out, u64::from(*min));
                put_varint(&mut out, u64::from(*max));
            }
            Request::Ping => out.push(verbs::PING),
            Request::Retrieve { lease, v } => {
                out.push(verbs::RETRIEVE);
                put_varint(&mut out, *lease);
                put_varint(&mut out, u64::from(*v));
            }
            Request::AsOf { lease, v, steps } => {
                out.push(verbs::AS_OF);
                put_varint(&mut out, *lease);
                put_varint(&mut out, u64::from(*v));
                put_steps(&mut out, steps);
            }
            Request::History { lease, steps } => {
                out.push(verbs::HISTORY);
                put_varint(&mut out, *lease);
                put_steps(&mut out, steps);
            }
            Request::HistoryValues { lease, steps } => {
                out.push(verbs::HISTORY_VALUES);
                put_varint(&mut out, *lease);
                put_steps(&mut out, steps);
            }
            Request::Range {
                lease,
                lo,
                hi,
                prefix,
            } => {
                out.push(verbs::RANGE);
                put_varint(&mut out, *lease);
                put_varint(&mut out, u64::from(*lo));
                put_varint(&mut out, u64::from(*hi));
                put_steps(&mut out, prefix);
            }
            Request::Diff {
                lease,
                v1,
                v2,
                steps,
            } => {
                out.push(verbs::DIFF);
                put_varint(&mut out, *lease);
                put_varint(&mut out, u64::from(*v1));
                put_varint(&mut out, u64::from(*v2));
                put_steps(&mut out, steps);
            }
            Request::Stats { lease } => {
                out.push(verbs::STATS);
                put_varint(&mut out, *lease);
            }
            Request::Latest { lease } => {
                out.push(verbs::LATEST);
                put_varint(&mut out, *lease);
            }
            Request::Ingest { docs } => {
                out.push(verbs::INGEST);
                put_varint(&mut out, docs.len() as u64);
                for d in docs {
                    put_bytes(&mut out, d.as_bytes());
                }
            }
            Request::SnapOpen => out.push(verbs::SNAP_OPEN),
            Request::SnapClose { lease } => {
                out.push(verbs::SNAP_CLOSE);
                put_varint(&mut out, *lease);
            }
            Request::Metrics => out.push(verbs::METRICS),
            Request::Health => out.push(verbs::HEALTH),
            Request::Shutdown => out.push(verbs::SHUTDOWN),
        }
        out
    }

    /// Decodes a frame body as a request. Total: every malformed input
    /// is a typed error, and trailing bytes are rejected.
    pub fn decode(body: &[u8]) -> Result<Request, DecodeError> {
        let Some(&verb) = body.first() else {
            return Err(DecodeError::Wire(WireError {
                offset: 0,
                reason: "empty message body",
            }));
        };
        let buf = body;
        let mut pos = 1usize;
        let p = &mut pos;
        let req = match verb {
            verbs::HELLO => {
                let at = *p;
                let end = at.checked_add(PROTO_MAGIC.len());
                let magic = end.and_then(|e| buf.get(at..e));
                match magic {
                    Some(m) if m == PROTO_MAGIC => {}
                    Some(_) => {
                        return Err(DecodeError::Wire(WireError {
                            offset: at,
                            reason: "bad handshake magic",
                        }))
                    }
                    None => {
                        return Err(DecodeError::Wire(WireError {
                            offset: at,
                            reason: "truncated handshake magic",
                        }))
                    }
                }
                *p += PROTO_MAGIC.len();
                let min = get_u32(buf, p)?;
                let max = get_u32(buf, p)?;
                Request::Hello { min, max }
            }
            verbs::PING => Request::Ping,
            verbs::RETRIEVE => Request::Retrieve {
                lease: get_varint(buf, p)?,
                v: get_u32(buf, p)?,
            },
            verbs::AS_OF => Request::AsOf {
                lease: get_varint(buf, p)?,
                v: get_u32(buf, p)?,
                steps: get_steps(buf, p)?,
            },
            verbs::HISTORY => Request::History {
                lease: get_varint(buf, p)?,
                steps: get_steps(buf, p)?,
            },
            verbs::HISTORY_VALUES => Request::HistoryValues {
                lease: get_varint(buf, p)?,
                steps: get_steps(buf, p)?,
            },
            verbs::RANGE => Request::Range {
                lease: get_varint(buf, p)?,
                lo: get_u32(buf, p)?,
                hi: get_u32(buf, p)?,
                prefix: get_steps(buf, p)?,
            },
            verbs::DIFF => Request::Diff {
                lease: get_varint(buf, p)?,
                v1: get_u32(buf, p)?,
                v2: get_u32(buf, p)?,
                steps: get_steps(buf, p)?,
            },
            verbs::STATS => Request::Stats {
                lease: get_varint(buf, p)?,
            },
            verbs::LATEST => Request::Latest {
                lease: get_varint(buf, p)?,
            },
            verbs::INGEST => {
                let n = get_varint(buf, p)?;
                let mut docs = Vec::new();
                for _ in 0..n {
                    let at = *p;
                    let bytes = get_bytes(buf, p)?;
                    match std::str::from_utf8(bytes) {
                        Ok(s) => docs.push(s.to_owned()),
                        Err(_) => {
                            return Err(DecodeError::Wire(WireError {
                                offset: at,
                                reason: "ingest document is not utf-8",
                            }))
                        }
                    }
                }
                Request::Ingest { docs }
            }
            verbs::SNAP_OPEN => Request::SnapOpen,
            verbs::SNAP_CLOSE => Request::SnapClose {
                lease: get_varint(buf, p)?,
            },
            verbs::METRICS => Request::Metrics,
            verbs::HEALTH => Request::Health,
            verbs::SHUTDOWN => Request::Shutdown,
            other => return Err(DecodeError::UnknownTag(other)),
        };
        if pos != body.len() {
            return Err(DecodeError::Trailing { at: pos });
        }
        Ok(req)
    }

    /// The canonical lower-case verb name (metric labels, diagnostics).
    pub fn verb_name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Ping => "ping",
            Request::Retrieve { .. } => "retrieve",
            Request::AsOf { .. } => "as_of",
            Request::History { .. } => "history",
            Request::HistoryValues { .. } => "history_values",
            Request::Range { .. } => "range",
            Request::Diff { .. } => "diff",
            Request::Stats { .. } => "stats",
            Request::Latest { .. } => "latest",
            Request::Ingest { .. } => "ingest",
            Request::SnapOpen => "snap_open",
            Request::SnapClose { .. } => "snap_close",
            Request::Metrics => "metrics",
            Request::Health => "health",
            Request::Shutdown => "shutdown",
        }
    }
}

// ---- responses ------------------------------------------------------------

/// The handshake acceptance payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The protocol revision the server selected from the client's range.
    pub version: u32,
    /// The archive's governing key specification, in `KeySpec::parse`
    /// text form — clients build [`KeyQuery`] paths against it.
    pub spec: String,
    /// The latest archived version at handshake time.
    pub latest: u32,
}

/// The health summary payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// Whether the service is accepting and answering requests.
    pub ok: bool,
    /// The latest archived version.
    pub latest: u32,
    /// Requests currently being served.
    pub in_flight: u64,
    /// Snapshot leases currently held open across all connections.
    pub leases: u64,
    /// Requests served since startup.
    pub served: u64,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    Hello(Hello),
    /// Answer to a ping.
    Pong,
    /// An optional document as compact XML (retrieve / as_of).
    Document(Option<String>),
    /// An optional existence history (`None` = never archived).
    History(Option<TimeSet>),
    /// An optional full element history.
    HistoryValues(Option<ElementHistory>),
    /// Range-scan hits in label order.
    Range(Vec<RangeEntry>),
    /// What changed between two versions.
    Diff(VersionDelta),
    /// Aggregate statistics.
    Stats(StoreStats),
    /// The latest version at the answering pin.
    Latest(u32),
    /// Versions assigned to an ingested batch, in order.
    Ingested(Vec<u32>),
    /// A snapshot lease was pinned.
    SnapOpened {
        /// The lease id to pass in subsequent requests.
        lease: u64,
        /// The version the lease is pinned at.
        pinned: u32,
    },
    /// A snapshot lease was released.
    SnapClosed,
    /// Prometheus-text metrics exposition.
    Metrics(String),
    /// Health summary.
    Health(Health),
    /// The server acknowledged a shutdown request and is draining.
    ShuttingDown,
    /// A structured error.
    Error {
        /// What class of failure this is.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes the response as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Hello(h) => {
                out.push(tags::HELLO_OK);
                put_varint(&mut out, u64::from(h.version));
                put_str(&mut out, &h.spec);
                put_varint(&mut out, u64::from(h.latest));
            }
            Response::Pong => out.push(tags::PONG),
            Response::Document(doc) => {
                out.push(tags::DOCUMENT);
                put_opt_doc(&mut out, doc.as_deref());
            }
            Response::History(t) => {
                out.push(tags::HISTORY);
                match t {
                    None => out.push(0),
                    Some(t) => {
                        out.push(1);
                        put_timeset(&mut out, t);
                    }
                }
            }
            Response::HistoryValues(h) => {
                out.push(tags::HISTORY_VALUES);
                match h {
                    None => out.push(0),
                    Some(h) => {
                        out.push(1);
                        put_timeset(&mut out, &h.existence);
                        put_varint(&mut out, h.values.len() as u64);
                        for (t, content) in &h.values {
                            put_timeset(&mut out, t);
                            put_str(&mut out, content);
                        }
                    }
                }
            }
            Response::Range(entries) => {
                out.push(tags::RANGE);
                put_varint(&mut out, entries.len() as u64);
                for e in entries {
                    put_steps(&mut out, std::slice::from_ref(&e.step));
                    put_timeset(&mut out, &e.time);
                }
            }
            Response::Diff(d) => {
                out.push(tags::DIFF);
                put_varint(&mut out, u64::from(d.v1));
                put_varint(&mut out, u64::from(d.v2));
                out.push(u8::from(d.present.0));
                out.push(u8::from(d.present.1));
                put_varint(&mut out, d.removed as u64);
                put_varint(&mut out, d.added as u64);
                put_str(&mut out, &d.script);
            }
            Response::Stats(s) => {
                out.push(tags::STATS);
                put_varint(&mut out, u64::from(s.versions));
                put_varint(&mut out, s.elements as u64);
                put_varint(&mut out, s.texts as u64);
                put_varint(&mut out, s.stamps as u64);
                put_varint(&mut out, s.size_bytes as u64);
            }
            Response::Latest(v) => {
                out.push(tags::LATEST);
                put_varint(&mut out, u64::from(*v));
            }
            Response::Ingested(versions) => {
                out.push(tags::INGESTED);
                put_varint(&mut out, versions.len() as u64);
                for v in versions {
                    put_varint(&mut out, u64::from(*v));
                }
            }
            Response::SnapOpened { lease, pinned } => {
                out.push(tags::SNAP_OPENED);
                put_varint(&mut out, *lease);
                put_varint(&mut out, u64::from(*pinned));
            }
            Response::SnapClosed => out.push(tags::SNAP_CLOSED),
            Response::Metrics(text) => {
                out.push(tags::METRICS);
                put_str(&mut out, text);
            }
            Response::Health(h) => {
                out.push(tags::HEALTH);
                out.push(u8::from(h.ok));
                put_varint(&mut out, u64::from(h.latest));
                put_varint(&mut out, h.in_flight);
                put_varint(&mut out, h.leases);
                put_varint(&mut out, h.served);
            }
            Response::ShuttingDown => out.push(tags::SHUTTING_DOWN),
            Response::Error { code, message } => {
                out.push(tags::ERROR);
                out.push(code.code());
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decodes a frame body as a response — the same totality contract
    /// as [`Request::decode`].
    pub fn decode(body: &[u8]) -> Result<Response, DecodeError> {
        let Some(&tag) = body.first() else {
            return Err(DecodeError::Wire(WireError {
                offset: 0,
                reason: "empty message body",
            }));
        };
        let buf = body;
        let mut pos = 1usize;
        let p = &mut pos;
        let resp = match tag {
            tags::HELLO_OK => Response::Hello(Hello {
                version: get_u32(buf, p)?,
                spec: get_string(buf, p)?,
                latest: get_u32(buf, p)?,
            }),
            tags::PONG => Response::Pong,
            tags::DOCUMENT => Response::Document(get_opt_doc(buf, p)?),
            tags::HISTORY => {
                if get_flag(buf, p)? {
                    Response::History(Some(get_timeset(buf, p)?))
                } else {
                    Response::History(None)
                }
            }
            tags::HISTORY_VALUES => {
                if get_flag(buf, p)? {
                    let existence = get_timeset(buf, p)?;
                    let n = get_varint(buf, p)?;
                    let mut values = Vec::new();
                    for _ in 0..n {
                        let t = get_timeset(buf, p)?;
                        let content = get_string(buf, p)?;
                        values.push((t, content));
                    }
                    Response::HistoryValues(Some(ElementHistory { existence, values }))
                } else {
                    Response::HistoryValues(None)
                }
            }
            tags::RANGE => {
                let n = get_varint(buf, p)?;
                let mut entries = Vec::new();
                for _ in 0..n {
                    let at = *p;
                    let mut steps = get_steps(buf, p)?;
                    let step = match (steps.pop(), steps.is_empty()) {
                        (Some(step), true) => step,
                        _ => {
                            return Err(DecodeError::Wire(WireError {
                                offset: at,
                                reason: "range entry must carry exactly one step",
                            }))
                        }
                    };
                    let time = get_timeset(buf, p)?;
                    entries.push(RangeEntry { step, time });
                }
                Response::Range(entries)
            }
            tags::DIFF => Response::Diff(VersionDelta {
                v1: get_u32(buf, p)?,
                v2: get_u32(buf, p)?,
                present: (get_flag(buf, p)?, get_flag(buf, p)?),
                removed: get_usize(buf, p)?,
                added: get_usize(buf, p)?,
                script: get_string(buf, p)?,
            }),
            tags::STATS => Response::Stats(StoreStats {
                versions: get_u32(buf, p)?,
                elements: get_usize(buf, p)?,
                texts: get_usize(buf, p)?,
                stamps: get_usize(buf, p)?,
                size_bytes: get_usize(buf, p)?,
            }),
            tags::LATEST => Response::Latest(get_u32(buf, p)?),
            tags::INGESTED => {
                let n = get_varint(buf, p)?;
                let mut versions = Vec::new();
                for _ in 0..n {
                    versions.push(get_u32(buf, p)?);
                }
                Response::Ingested(versions)
            }
            tags::SNAP_OPENED => Response::SnapOpened {
                lease: get_varint(buf, p)?,
                pinned: get_u32(buf, p)?,
            },
            tags::SNAP_CLOSED => Response::SnapClosed,
            tags::METRICS => Response::Metrics(get_string(buf, p)?),
            tags::HEALTH => Response::Health(Health {
                ok: get_flag(buf, p)?,
                latest: get_u32(buf, p)?,
                in_flight: get_varint(buf, p)?,
                leases: get_varint(buf, p)?,
                served: get_varint(buf, p)?,
            }),
            tags::SHUTTING_DOWN => Response::ShuttingDown,
            tags::ERROR => {
                let at = *p;
                let code_byte = match buf.get(*p) {
                    Some(&b) => {
                        *p += 1;
                        b
                    }
                    None => {
                        return Err(DecodeError::Wire(WireError {
                            offset: at,
                            reason: "truncated error code",
                        }))
                    }
                };
                let Some(code) = ErrorCode::from_code(code_byte) else {
                    return Err(DecodeError::Wire(WireError {
                        offset: at,
                        reason: "unassigned error code",
                    }));
                };
                Response::Error {
                    code,
                    message: get_string(buf, p)?,
                }
            }
            other => return Err(DecodeError::UnknownTag(other)),
        };
        if pos != body.len() {
            return Err(DecodeError::Trailing { at: pos });
        }
        Ok(resp)
    }
}

/// The version-negotiation rule both sides apply: the highest revision
/// inside both `[client_min, client_max]` and
/// `[`[`MIN_PROTO_VERSION`]`, `[`PROTO_VERSION`]`]`, or `None` when the
/// ranges do not intersect.
pub fn negotiate(client_min: u32, client_max: u32) -> Option<u32> {
    let lo = client_min.max(MIN_PROTO_VERSION);
    let hi = client_max.min(PROTO_VERSION);
    (lo <= hi).then_some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps() -> Vec<KeyQuery> {
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "42"),
        ]
    }

    fn timeset() -> TimeSet {
        let mut t = TimeSet::from_range(1, 3);
        t.insert(7);
        t
    }

    #[test]
    fn every_request_round_trips() {
        let requests = vec![
            Request::Hello { min: 1, max: 9 },
            Request::Ping,
            Request::Retrieve { lease: 0, v: 3 },
            Request::AsOf {
                lease: 5,
                v: 2,
                steps: steps(),
            },
            Request::History {
                lease: 0,
                steps: steps(),
            },
            Request::HistoryValues {
                lease: 1,
                steps: vec![],
            },
            Request::Range {
                lease: 0,
                lo: 1,
                hi: 9,
                prefix: steps(),
            },
            Request::Diff {
                lease: 2,
                v1: 1,
                v2: 2,
                steps: steps(),
            },
            Request::Stats { lease: 0 },
            Request::Latest { lease: 3 },
            Request::Ingest {
                docs: vec!["<db/>".into(), "<db><rec><id>1</id></rec></db>".into()],
            },
            Request::SnapOpen,
            Request::SnapClose { lease: 4 },
            Request::Metrics,
            Request::Health,
            Request::Shutdown,
        ];
        for req in requests {
            let body = req.encode();
            assert_eq!(Request::decode(&body).unwrap(), req, "{}", req.verb_name());
        }
    }

    #[test]
    fn every_response_round_trips() {
        let responses = vec![
            Response::Hello(Hello {
                version: 1,
                spec: "(/, (db, {}))".into(),
                latest: 12,
            }),
            Response::Pong,
            Response::Document(None),
            Response::Document(Some("<db/>".into())),
            Response::History(None),
            Response::History(Some(timeset())),
            Response::History(Some(TimeSet::new())),
            Response::HistoryValues(None),
            Response::HistoryValues(Some(ElementHistory {
                existence: timeset(),
                values: vec![(TimeSet::from_range(1, 3), "<rec/>".into())],
            })),
            Response::Range(vec![RangeEntry {
                step: KeyQuery::new("rec").with_text("id", "1"),
                time: timeset(),
            }]),
            Response::Diff(VersionDelta {
                v1: 1,
                v2: 2,
                present: (true, false),
                removed: 3,
                added: 0,
                script: "3d2\n< x".into(),
            }),
            Response::Stats(StoreStats {
                versions: 2,
                elements: 10,
                texts: 5,
                stamps: 1,
                size_bytes: 4096,
            }),
            Response::Latest(7),
            Response::Ingested(vec![3, 4, 5]),
            Response::SnapOpened {
                lease: 9,
                pinned: 4,
            },
            Response::SnapClosed,
            Response::Metrics("# TYPE x counter\nx 1\n".into()),
            Response::Health(Health {
                ok: true,
                latest: 3,
                in_flight: 1,
                leases: 2,
                served: 99,
            }),
            Response::ShuttingDown,
            Response::Error {
                code: ErrorCode::NoSuchLease,
                message: "lease 9 is not held by this connection".into(),
            },
        ];
        for resp in responses {
            let body = resp.encode();
            assert_eq!(Response::decode(&body).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn unknown_tags_and_empty_bodies_are_typed_errors() {
        assert!(matches!(
            Request::decode(&[0x7F]),
            Err(DecodeError::UnknownTag(0x7F))
        ));
        assert!(matches!(
            Response::decode(&[0x01]),
            Err(DecodeError::UnknownTag(0x01))
        ));
        assert!(matches!(Request::decode(&[]), Err(DecodeError::Wire(_))));
        assert!(matches!(Response::decode(&[]), Err(DecodeError::Wire(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::Ping.encode();
        body.push(0);
        assert!(matches!(
            Request::decode(&body),
            Err(DecodeError::Trailing { at: 1 })
        ));
        let mut body = Response::Pong.encode();
        body.push(9);
        assert!(matches!(
            Response::decode(&body),
            Err(DecodeError::Trailing { at: 1 })
        ));
    }

    #[test]
    fn every_truncation_of_every_message_is_a_clean_error() {
        // decode(prefix) must never panic and never succeed with
        // different meaning — for every strict prefix of realistic bodies
        let bodies = vec![
            Request::Hello { min: 1, max: 1 }.encode(),
            Request::Diff {
                lease: 1,
                v1: 1,
                v2: 2,
                steps: steps(),
            }
            .encode(),
            Request::Ingest {
                docs: vec!["<db/>".into()],
            }
            .encode(),
            Response::HistoryValues(Some(ElementHistory {
                existence: timeset(),
                values: vec![(timeset(), "<x/>".into())],
            }))
            .encode(),
            Response::Range(vec![RangeEntry {
                step: KeyQuery::new("rec").with_text("id", "1"),
                time: timeset(),
            }])
            .encode(),
            Response::Error {
                code: ErrorCode::Store,
                message: "backend error".into(),
            }
            .encode(),
        ];
        for body in bodies {
            for cut in 0..body.len() {
                let prefix = &body[..cut];
                let req = Request::decode(prefix);
                let resp = Response::decode(prefix);
                assert!(
                    req.is_err() || resp.is_err(),
                    "a strict prefix decoded as both a request and a response"
                );
            }
        }
    }

    #[test]
    fn hostile_payloads_error_instead_of_allocating_or_looping() {
        // a count far larger than the buffer: must fail fast, not reserve
        let mut body = vec![verbs::INGEST];
        put_varint(&mut body, u64::MAX);
        assert!(Request::decode(&body).is_err());
        // an interval with lo > hi, and one with lo = 0
        for (lo, hi) in [(5u64, 2u64), (0, 3)] {
            let mut body = vec![tags::HISTORY, 1];
            put_varint(&mut body, 1);
            put_varint(&mut body, lo);
            put_varint(&mut body, hi);
            let err = Response::decode(&body).unwrap_err();
            assert!(matches!(err, DecodeError::Wire(_)), "{err}");
        }
        // a flag byte that is neither 0 nor 1
        let body = vec![tags::DOCUMENT, 2];
        assert!(Response::decode(&body).is_err());
        // bad handshake magic
        let mut body = vec![verbs::HELLO];
        body.extend_from_slice(b"NOPE");
        put_varint(&mut body, 1);
        put_varint(&mut body, 1);
        let err = Request::decode(&body).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // non-utf8 ingest document
        let mut body = vec![verbs::INGEST];
        put_varint(&mut body, 1);
        put_bytes(&mut body, &[0xFF, 0xFE]);
        assert!(Request::decode(&body).is_err());
    }

    #[test]
    fn version_negotiation() {
        assert_eq!(negotiate(1, 1), Some(PROTO_VERSION.min(1)));
        assert_eq!(negotiate(1, 99), Some(PROTO_VERSION));
        assert_eq!(negotiate(PROTO_VERSION + 1, PROTO_VERSION + 5), None);
        assert_eq!(negotiate(0, 0), None);
    }

    #[test]
    fn error_codes_round_trip_and_name_themselves() {
        for byte in 1..=9u8 {
            let code = ErrorCode::from_code(byte).expect("assigned");
            assert_eq!(code.code(), byte);
            assert!(!code.name().is_empty());
        }
        assert!(ErrorCode::from_code(0).is_none());
        assert!(ErrorCode::from_code(10).is_none());
    }
}
