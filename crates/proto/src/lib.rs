//! # xarch_proto — the archive service wire protocol
//!
//! A dependency-free, length-prefixed, CRC-framed binary protocol
//! covering the full `StoreReader` query surface (retrieve, as_of,
//! history, history_values, range, diff, stats, latest) plus batched
//! ingest, snapshot leases, and the admin verbs an operations surface
//! needs (ping, metrics, health, shutdown) — the network face of the
//! paper's "archive as an always-on query service" deployment shape.
//!
//! The byte-level grammar is specified normatively in
//! `docs/PROTOCOL.md` (golden-tested against the constants in this
//! crate), and deliberately reuses machinery the workspace already
//! trusts: varints and length-prefixed strings come from
//! `xarch_core::wire` (the same primitives the on-disk checkpoint
//! format uses), and frame integrity uses the storage layer's CRC-32
//! ([`xarch_storage::crc32`]).
//!
//! Three layers:
//!
//! * [`frame`] — the outermost envelope: `len · crc · body`, with
//!   panic-free reads that distinguish a clean close ([`FrameError::Eof`])
//!   from truncation, oversize, and corruption;
//! * [`msg`] — [`Request`]/[`Response`] values and their body codecs.
//!   Decoding never panics: every failure is a positioned
//!   [`xarch_core::wire::WireError`] or a typed [`DecodeError`];
//! * [`client`] — a small blocking [`Client`] over `std::net::TcpStream`
//!   so tests, examples, and the bench harness drive a server over real
//!   sockets.
//!
//! ```no_run
//! use xarch_proto::{Client, Lease};
//!
//! let mut client = Client::connect("127.0.0.1:7440")?;
//! let latest = client.latest(Lease::FRESH)?;
//! let xml = client.retrieve(Lease::FRESH, latest)?;
//! println!("version {latest}: {} bytes", xml.map_or(0, |s| s.len()));
//! # Ok::<(), xarch_proto::ClientError>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod msg;

pub use client::{Client, ClientError, Lease};
pub use frame::{read_frame, write_frame, FrameError, FRAME_HEADER_LEN, MAX_FRAME_LEN};
pub use msg::{negotiate, DecodeError, ErrorCode, Health, Hello, Request, Response};

/// The handshake magic: the first four body bytes of every `Hello`
/// request. A peer that opens with anything else is not speaking this
/// protocol and is answered with a structured error, never garbage.
pub const PROTO_MAGIC: [u8; 4] = *b"XAPR";

/// The protocol revision this build speaks.
pub const PROTO_VERSION: u32 = 1;

/// The oldest protocol revision this build still accepts in a
/// handshake. Servers negotiate the highest version inside the client's
/// offered `min..=max` range that they themselves support; an empty
/// intersection is a [`ErrorCode::VersionMismatch`].
pub const MIN_PROTO_VERSION: u32 = 1;
