//! The frame envelope: every message travels as `len · crc · body`.
//!
//! ```text
//! ┌───────────────┬───────────────┬──────────────────┐
//! │ len: u32 LE   │ crc: u32 LE   │ body (len bytes) │
//! └───────────────┴───────────────┴──────────────────┘
//! ```
//!
//! `len` counts the body bytes only; `crc` is the CRC-32 (IEEE, the
//! storage layer's [`xarch_storage::crc32`]) of the body. The header is
//! fixed at [`FRAME_HEADER_LEN`] bytes, and no frame body may exceed
//! [`MAX_FRAME_LEN`] — receivers additionally enforce their own
//! (possibly tighter) configured ceiling and reject the frame *before*
//! reading its body, so an advertised 4 GiB length costs an attacker a
//! connection, not the server an allocation.
//!
//! Reads are panic-free: every failure mode is a typed [`FrameError`],
//! and a connection closed cleanly *between* frames is the distinct
//! [`FrameError::Eof`] — the one "error" that is not an error.

use std::io::{self, Read, Write};

use xarch_storage::crc32;

/// Bytes in the fixed frame header: a `u32` length plus a `u32` CRC.
pub const FRAME_HEADER_LEN: usize = 8;

/// The protocol-level ceiling on a frame body's length, in bytes.
/// Receivers may configure a tighter limit; they never accept more.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
    /// The connection failed or was truncated mid-frame (includes
    /// read timeouts surfacing as `WouldBlock`/`TimedOut`).
    Io(io::Error),
    /// The header advertised a body longer than the receiver's limit.
    TooLarge {
        /// The advertised body length.
        len: u32,
        /// The receiver's configured ceiling.
        max: u32,
    },
    /// The body's checksum did not match the header's CRC.
    BadCrc {
        /// The checksum the header carried.
        expected: u32,
        /// The checksum of the bytes actually received.
        found: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed at frame boundary"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::BadCrc { expected, found } => write!(
                f,
                "frame checksum mismatch: header says {expected:#010x}, body hashes to {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Decodes a little-endian `u32` at `at`, if the bytes are there.
fn le_u32(buf: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let bytes: [u8; 4] = buf.get(at..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// Writes `body` as one frame: header (length + CRC) then the body.
///
/// Fails with `InvalidInput` when `body` exceeds [`MAX_FRAME_LEN`] —
/// oversized messages must be rejected at the sender, not shipped to be
/// rejected at the receiver.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame body of {} bytes exceeds MAX_FRAME_LEN", body.len()),
            )
        })?;
    let mut header = [0u8; FRAME_HEADER_LEN];
    let (len_bytes, crc_bytes) = header.split_at_mut(4);
    len_bytes.copy_from_slice(&len.to_le_bytes());
    crc_bytes.copy_from_slice(&crc32(body).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body, enforcing `max_len` (clamped to
/// [`MAX_FRAME_LEN`]) *before* the body is read or allocated.
///
/// A connection closed before the first header byte is a clean
/// [`FrameError::Eof`]; closed anywhere after that, a truncation
/// ([`FrameError::Io`] with `UnexpectedEof`).
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < FRAME_HEADER_LEN {
        let n = match header.get_mut(filled..) {
            Some(rest) => r.read(rest)?,
            None => 0,
        };
        if n == 0 {
            if filled == 0 {
                return Err(FrameError::Eof);
            }
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid frame header",
            )));
        }
        filled += n;
    }
    let len = le_u32(&header, 0).unwrap_or(0);
    let expected = le_u32(&header, 4).unwrap_or(0);
    let max = max_len.min(MAX_FRAME_LEN);
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let found = crc32(&body);
    if found != expected {
        return Err(FrameError::BadCrc { expected, found });
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(body: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, body).unwrap();
        out
    }

    #[test]
    fn round_trip() {
        for body in [&b""[..], b"x", b"hello frame", &[0u8; 1024][..]] {
            let bytes = frame_bytes(body);
            assert_eq!(bytes.len(), FRAME_HEADER_LEN + body.len());
            let got = read_frame(&mut bytes.as_slice(), MAX_FRAME_LEN).unwrap();
            assert_eq!(got, body);
        }
    }

    #[test]
    fn clean_close_is_eof_truncation_is_io() {
        // nothing at all: clean close
        assert!(matches!(
            read_frame(&mut [].as_slice(), MAX_FRAME_LEN),
            Err(FrameError::Eof)
        ));
        let bytes = frame_bytes(b"payload");
        // every strictly-partial prefix is a truncation, never Eof, never
        // a success, never a panic
        for cut in 1..bytes.len() {
            let err = read_frame(&mut &bytes[..cut], MAX_FRAME_LEN).unwrap_err();
            assert!(
                matches!(err, FrameError::Io(_)),
                "cut at {cut}: expected Io, got {err}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = vec![0u8; FRAME_HEADER_LEN];
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut bytes.as_slice(), MAX_FRAME_LEN).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { .. }), "{err}");
        // a receiver-configured limit tightens the protocol ceiling
        let bytes = frame_bytes(&[7u8; 100]);
        let err = read_frame(&mut bytes.as_slice(), 64).unwrap_err();
        assert!(
            matches!(err, FrameError::TooLarge { len: 100, max: 64 }),
            "{err}"
        );
    }

    #[test]
    fn corrupt_bodies_fail_the_crc() {
        let reference = frame_bytes(b"check me");
        for i in FRAME_HEADER_LEN..reference.len() {
            let mut bytes = reference.clone();
            bytes[i] ^= 0x40;
            let err = read_frame(&mut bytes.as_slice(), MAX_FRAME_LEN).unwrap_err();
            assert!(
                matches!(err, FrameError::BadCrc { .. }),
                "flip at {i}: {err}"
            );
        }
        // a flipped CRC byte also fails
        let mut bytes = frame_bytes(b"check me");
        bytes[5] ^= 1;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), MAX_FRAME_LEN),
            Err(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn sender_refuses_oversized_bodies() {
        let body = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut out = Vec::new();
        let err = write_frame(&mut out, &body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty(), "nothing may hit the wire");
    }

    #[test]
    fn errors_render() {
        assert!(FrameError::Eof.to_string().contains("closed"));
        let e = FrameError::TooLarge { len: 9, max: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = FrameError::BadCrc {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("mismatch"));
    }
}
