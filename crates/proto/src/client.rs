//! A blocking client over `std::net::TcpStream`.
//!
//! [`Client::connect`] dials, performs the versioned handshake, and
//! then exposes one method per protocol verb. Every query method takes
//! a [`Lease`]: pass [`Lease::FRESH`] to have the server pin a fresh
//! snapshot for that one request, or hold a lease from
//! [`Client::open_snapshot`] to ask many questions of one frozen
//! version of history.
//!
//! Query answers deliberately stay in wire form where it matters for
//! testing: [`Client::retrieve`] and [`Client::as_of`] return the
//! document as the *compact XML text the server sent*, so differential
//! tests can byte-compare a socket answer against a local snapshot
//! without a parse/reserialize step in between.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use xarch_core::wire::WireError;
use xarch_core::{ElementHistory, KeyQuery, RangeEntry, StoreStats, TimeSet, VersionDelta};

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use crate::msg::{ErrorCode, Health, Hello, Request, Response};
use crate::{MIN_PROTO_VERSION, PROTO_VERSION};

/// A snapshot lease id, as issued by the server.
///
/// [`Lease::FRESH`] (the zero lease) is special: it names no held
/// snapshot, and instructs the server to pin a fresh one for the single
/// request carrying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lease(pub u64);

impl Lease {
    /// The per-request lease: pin a fresh snapshot, answer, release.
    pub const FRESH: Lease = Lease(0);
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or configuring the socket failed.
    Io(std::io::Error),
    /// The frame envelope could not be read or written.
    Frame(FrameError),
    /// The server's response body failed to decode.
    Wire(WireError),
    /// The server answered with a structured error.
    Server {
        /// The error class.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server answered with the wrong response kind for the verb.
    Unexpected(&'static str),
    /// The handshake failed (magic, version negotiation, or transport).
    Handshake(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Wire(e) => write!(f, "malformed response: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            ClientError::Unexpected(what) => {
                write!(f, "unexpected response kind (wanted {what})")
            }
            ClientError::Handshake(why) => write!(f, "handshake failed: {why}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<crate::msg::DecodeError> for ClientError {
    fn from(e: crate::msg::DecodeError) -> Self {
        match e {
            crate::msg::DecodeError::Wire(w) => ClientError::Wire(w),
            crate::msg::DecodeError::UnknownTag(_) => ClientError::Unexpected("a known tag"),
            crate::msg::DecodeError::Trailing { at } => ClientError::Wire(WireError {
                offset: at,
                reason: "trailing bytes after response",
            }),
        }
    }
}

/// A blocking connection to an archive server, post-handshake.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    hello: Hello,
}

impl Client {
    /// Dials `addr`, performs the handshake, and returns a ready client.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::over(stream)
    }

    /// Performs the handshake over an already-connected stream.
    pub fn over(stream: TcpStream) -> Result<Client, ClientError> {
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            hello: Hello {
                version: 0,
                spec: String::new(),
                latest: 0,
            },
        };
        let resp = client.call(&Request::Hello {
            min: MIN_PROTO_VERSION,
            max: PROTO_VERSION,
        });
        match resp {
            Ok(Response::Hello(h)) => {
                client.hello = h;
                Ok(client)
            }
            Ok(Response::Error { code, message }) => Err(ClientError::Handshake(format!(
                "server refused [{code}]: {message}"
            ))),
            Ok(_) => Err(ClientError::Handshake(
                "server answered hello with the wrong response kind".into(),
            )),
            Err(e) => Err(ClientError::Handshake(e.to_string())),
        }
    }

    /// Sets (or clears) the socket read timeout for responses.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// What the server said about itself at handshake time.
    pub fn hello(&self) -> &Hello {
        &self.hello
    }

    /// One request/response exchange; the protocol is strictly
    /// call-and-answer, so this is the only transport primitive.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        let body = read_frame(&mut self.reader, MAX_FRAME_LEN)?;
        Ok(Response::decode(&body)?)
    }

    /// Like [`Client::call`], but lifts a [`Response::Error`] into
    /// [`ClientError::Server`] so verb wrappers only match success kinds.
    fn call_ok(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.call(req)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    /// Round-trip liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call_ok(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("pong")),
        }
    }

    /// Retrieves whole version `v` as compact XML text.
    pub fn retrieve(&mut self, lease: Lease, v: u32) -> Result<Option<String>, ClientError> {
        let req = Request::Retrieve { lease: lease.0, v };
        match self.call_ok(&req)? {
            Response::Document(doc) => Ok(doc),
            _ => Err(ClientError::Unexpected("document")),
        }
    }

    /// Retrieves the subtree at `steps` as it stood in version `v`.
    pub fn as_of(
        &mut self,
        lease: Lease,
        v: u32,
        steps: &[KeyQuery],
    ) -> Result<Option<String>, ClientError> {
        let req = Request::AsOf {
            lease: lease.0,
            v,
            steps: steps.to_vec(),
        };
        match self.call_ok(&req)? {
            Response::Document(doc) => Ok(doc),
            _ => Err(ClientError::Unexpected("document")),
        }
    }

    /// The versions in which the element at `steps` exists.
    pub fn history(
        &mut self,
        lease: Lease,
        steps: &[KeyQuery],
    ) -> Result<Option<TimeSet>, ClientError> {
        let req = Request::History {
            lease: lease.0,
            steps: steps.to_vec(),
        };
        match self.call_ok(&req)? {
            Response::History(h) => Ok(h),
            _ => Err(ClientError::Unexpected("history")),
        }
    }

    /// Existence plus distinct contents over time for one element.
    pub fn history_values(
        &mut self,
        lease: Lease,
        steps: &[KeyQuery],
    ) -> Result<Option<ElementHistory>, ClientError> {
        let req = Request::HistoryValues {
            lease: lease.0,
            steps: steps.to_vec(),
        };
        match self.call_ok(&req)? {
            Response::HistoryValues(h) => Ok(h),
            _ => Err(ClientError::Unexpected("history values")),
        }
    }

    /// Keyed children of the element at `prefix` over versions
    /// `lo..=hi`.
    pub fn range(
        &mut self,
        lease: Lease,
        prefix: &[KeyQuery],
        lo: u32,
        hi: u32,
    ) -> Result<Vec<RangeEntry>, ClientError> {
        let req = Request::Range {
            lease: lease.0,
            lo,
            hi,
            prefix: prefix.to_vec(),
        };
        match self.call_ok(&req)? {
            Response::Range(entries) => Ok(entries),
            _ => Err(ClientError::Unexpected("range")),
        }
    }

    /// What changed in the element at `steps` between `v1` and `v2`.
    pub fn diff(
        &mut self,
        lease: Lease,
        steps: &[KeyQuery],
        v1: u32,
        v2: u32,
    ) -> Result<VersionDelta, ClientError> {
        let req = Request::Diff {
            lease: lease.0,
            v1,
            v2,
            steps: steps.to_vec(),
        };
        match self.call_ok(&req)? {
            Response::Diff(d) => Ok(d),
            _ => Err(ClientError::Unexpected("diff")),
        }
    }

    /// Aggregate statistics at the answering pin.
    pub fn stats(&mut self, lease: Lease) -> Result<StoreStats, ClientError> {
        match self.call_ok(&Request::Stats { lease: lease.0 })? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// The latest version at the answering pin.
    pub fn latest(&mut self, lease: Lease) -> Result<u32, ClientError> {
        match self.call_ok(&Request::Latest { lease: lease.0 })? {
            Response::Latest(v) => Ok(v),
            _ => Err(ClientError::Unexpected("latest")),
        }
    }

    /// Merges `docs` (compact XML texts) as consecutive new versions in
    /// one group-committed batch; returns the assigned version numbers.
    pub fn ingest(&mut self, docs: &[String]) -> Result<Vec<u32>, ClientError> {
        let req = Request::Ingest {
            docs: docs.to_vec(),
        };
        match self.call_ok(&req)? {
            Response::Ingested(versions) => Ok(versions),
            _ => Err(ClientError::Unexpected("ingested")),
        }
    }

    /// Pins a server-held snapshot; returns the lease and its pinned
    /// version. The lease lives until closed or the connection drops.
    pub fn open_snapshot(&mut self) -> Result<(Lease, u32), ClientError> {
        match self.call_ok(&Request::SnapOpen)? {
            Response::SnapOpened { lease, pinned } => Ok((Lease(lease), pinned)),
            _ => Err(ClientError::Unexpected("snapshot lease")),
        }
    }

    /// Releases a snapshot lease.
    pub fn close_snapshot(&mut self, lease: Lease) -> Result<(), ClientError> {
        let req = Request::SnapClose { lease: lease.0 };
        match self.call_ok(&req)? {
            Response::SnapClosed => Ok(()),
            _ => Err(ClientError::Unexpected("snapshot close")),
        }
    }

    /// The server's metrics in Prometheus text exposition format.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call_ok(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            _ => Err(ClientError::Unexpected("metrics")),
        }
    }

    /// The server's health summary.
    pub fn health(&mut self) -> Result<Health, ClientError> {
        match self.call_ok(&Request::Health)? {
            Response::Health(h) => Ok(h),
            _ => Err(ClientError::Unexpected("health")),
        }
    }

    /// Asks the server to shut down gracefully. Succeeds only when the
    /// server's configuration allows remote shutdown.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call_ok(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected("shutdown ack")),
        }
    }
}
