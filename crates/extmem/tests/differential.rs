//! Differential testing: the external archiver must produce, version for
//! version, the same database as the in-memory archiver — under memory
//! budgets small enough to force spines, runs and multi-pass merges.

use xarch_core::{equiv_modulo_key_order, Archive};
use xarch_datagen::omim::{omim_spec, OmimGen};
use xarch_extmem::{ExtArchive, IoConfig, IoStats};
use xarch_keys::KeySpec;
use xarch_xml::parse;

fn small_cfg() -> IoConfig {
    IoConfig {
        mem_bytes: 2 << 10, // 2 KiB: forces the record list to stream
        page_bytes: 256,
    }
}

#[test]
fn external_matches_in_memory_on_company() {
    let spec = xarch_datagen::company::company_spec();
    let versions = xarch_datagen::company_versions();
    let mut mem = Archive::new(spec.clone());
    let mut ext = ExtArchive::new(spec.clone(), small_cfg());
    for d in &versions {
        mem.add_version(d).unwrap();
        ext.add_version(d).unwrap();
    }
    for (i, _) in versions.iter().enumerate() {
        let v = i as u32 + 1;
        let a = mem.retrieve(v).unwrap();
        let b = ext.retrieve(v).unwrap().unwrap();
        assert!(equiv_modulo_key_order(&a, &b, &spec), "version {v}");
    }
}

#[test]
fn external_matches_in_memory_on_omim() {
    let spec = omim_spec();
    let mut g = OmimGen::new(77);
    // crank up the change ratios so all code paths fire
    g.del_ratio = 0.05;
    g.ins_ratio = 0.10;
    g.mod_ratio = 0.05;
    let versions = g.sequence(40, 6);
    let mut mem = Archive::new(spec.clone());
    let mut ext = ExtArchive::new(spec.clone(), small_cfg());
    for d in &versions {
        mem.add_version(d).unwrap();
        ext.add_version(d).unwrap();
    }
    assert_eq!(ext.latest(), 6);
    for v in 1..=6u32 {
        let a = mem.retrieve(v).unwrap();
        let b = ext.retrieve(v).unwrap().unwrap();
        assert!(equiv_modulo_key_order(&a, &b, &spec), "version {v}");
    }
    // real I/O was charged
    let s: IoStats = ext.io_stats();
    assert!(s.page_reads > 10, "{s:?}");
    assert!(s.page_writes > 10, "{s:?}");
}

#[test]
fn io_scales_with_page_size() {
    let spec = omim_spec();
    let versions = OmimGen::new(5).sequence(60, 3);
    let run = |page: usize| -> u64 {
        let cfg = IoConfig {
            mem_bytes: 4 << 10,
            page_bytes: page,
        };
        let mut ext = ExtArchive::new(spec.clone(), cfg);
        for d in &versions {
            ext.add_version(d).unwrap();
        }
        ext.io_stats().total()
    };
    let io_small_pages = run(128);
    let io_big_pages = run(2048);
    assert!(
        io_big_pages < io_small_pages,
        "bigger pages mean fewer I/Os: {io_big_pages} vs {io_small_pages}"
    );
}

#[test]
fn element_reappearance_round_trips() {
    let spec = KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap();
    let v1 = parse("<db><rec><id>1</id><val>a</val></rec><rec><id>2</id><val>b</val></rec></db>")
        .unwrap();
    let v2 = parse("<db><rec><id>2</id><val>b</val></rec></db>").unwrap();
    let v3 = parse("<db><rec><id>1</id><val>a2</val></rec><rec><id>2</id><val>b</val></rec></db>")
        .unwrap();
    let mut mem = Archive::new(spec.clone());
    let mut ext = ExtArchive::new(spec.clone(), small_cfg());
    for d in [&v1, &v2, &v3] {
        mem.add_version(d).unwrap();
        ext.add_version(d).unwrap();
    }
    for v in 1..=3u32 {
        let a = mem.retrieve(v).unwrap();
        let b = ext.retrieve(v).unwrap().unwrap();
        assert!(equiv_modulo_key_order(&a, &b, &spec), "version {v}");
    }
}

#[test]
fn invalid_version_is_none() {
    let spec = omim_spec();
    let ext = ExtArchive::new(spec, small_cfg());
    assert!(ext.retrieve(0).unwrap().is_none());
    assert!(ext.retrieve(1).unwrap().is_none());
}

#[test]
fn empty_version_reported_like_in_memory() {
    let spec = KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))").unwrap();
    let doc = parse("<db><rec><id>1</id></rec></db>").unwrap();
    let mut mem = Archive::new(spec.clone());
    let mut ext = ExtArchive::new(spec.clone(), small_cfg());
    mem.add_version(&doc).unwrap();
    ext.add_version(&doc).unwrap();
    mem.add_empty_version();
    ext.add_empty_version().unwrap();

    assert!(ext.has_version(2));
    assert!(!ext.has_version(3));
    // archived-but-empty: the version exists yet yields no document…
    assert!(ext.retrieve(2).unwrap().is_none());
    let mut bytes = Vec::new();
    assert!(!ext.retrieve_into(2, &mut bytes).unwrap());
    assert!(bytes.is_empty());
    // …and the archive keeps working afterwards, like the in-memory one.
    mem.add_version(&doc).unwrap();
    ext.add_version(&doc).unwrap();
    let a = mem.retrieve(3).unwrap();
    let b = ext.retrieve(3).unwrap().unwrap();
    assert!(equiv_modulo_key_order(&a, &b, &spec));
}

#[test]
fn streaming_retrieval_matches_materialized() {
    let spec = omim_spec();
    let mut g = OmimGen::new(91);
    g.del_ratio = 0.05;
    g.ins_ratio = 0.10;
    g.mod_ratio = 0.05;
    let versions = g.sequence(30, 4);
    let mut ext = ExtArchive::new(spec.clone(), small_cfg());
    for d in &versions {
        ext.add_version(d).unwrap();
    }
    for v in 1..=4u32 {
        let materialized = ext.retrieve(v).unwrap().unwrap();
        let mut bytes = Vec::new();
        assert!(ext.retrieve_into(v, &mut bytes).unwrap());
        let reparsed = parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert!(
            equiv_modulo_key_order(&reparsed, &materialized, &spec),
            "streamed v{v} diverged"
        );
    }
}

#[test]
fn history_matches_in_memory() {
    use xarch_core::KeyQuery;

    let spec = KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap();
    let v1 = parse("<db><rec><id>1</id><val>a</val></rec><rec><id>2</id><val>b</val></rec></db>")
        .unwrap();
    let v2 = parse("<db><rec><id>2</id><val>b</val></rec></db>").unwrap();
    let v3 = parse("<db><rec><id>1</id><val>a</val></rec><rec><id>2</id><val>b</val></rec></db>")
        .unwrap();
    let mut mem = Archive::new(spec.clone());
    let mut ext = ExtArchive::new(spec.clone(), small_cfg());
    for d in [&v1, &v2, &v3] {
        mem.add_version(d).unwrap();
        ext.add_version(d).unwrap();
    }
    let queries = [
        vec![KeyQuery::new("db")],
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ],
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "2"),
        ],
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "9"),
        ],
        vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
            KeyQuery::new("val"),
        ],
    ];
    for q in &queries {
        assert_eq!(mem.history(q), ext.history(q).unwrap(), "query {q:?}");
    }
    // spine-forcing workload too
    let spec = omim_spec();
    let versions = OmimGen::new(13).sequence(25, 3);
    let mut mem = Archive::new(spec.clone());
    let mut ext = ExtArchive::new(spec, small_cfg());
    for d in &versions {
        mem.add_version(d).unwrap();
        ext.add_version(d).unwrap();
    }
    let d0 = &versions[0];
    let rec = d0.child_elements(d0.root(), "Record").next().unwrap();
    let num = d0.text_content(d0.first_child_element(rec, "Num").unwrap());
    let q = vec![
        KeyQuery::new("ROOT"),
        KeyQuery::new("Record").with_text("Num", &num),
    ];
    assert_eq!(mem.history(&q), ext.history(&q).unwrap());
}

#[test]
fn store_stats_reflect_stream() {
    let spec = omim_spec();
    let versions = OmimGen::new(17).sequence(15, 3);
    let mut ext = ExtArchive::new(spec, small_cfg());
    for d in &versions {
        ext.add_version(d).unwrap();
    }
    let s = ext.store_stats().unwrap();
    assert_eq!(s.versions, 3);
    assert!(s.elements > 15, "{s:?}");
    assert!(s.texts > 0, "{s:?}");
    assert_eq!(s.size_bytes, ext.size_bytes());
}

#[test]
fn batch_ingest_matches_serial_streaming_passes() {
    // add_versions folds the batch into a single archive pass; the stream
    // it produces must answer retrieval/history identically to one serial
    // pass per version — under a memory budget small enough that records
    // stream as spines, so every representation case (spine×spine,
    // spine×small, batch-only subtrees shared by several versions) fires.
    let spec = omim_spec();
    let mut g = OmimGen::new(991);
    g.del_ratio = 0.08;
    g.ins_ratio = 0.12;
    g.mod_ratio = 0.08;
    let versions = g.sequence(30, 8);
    for split in [1usize, 3, 8] {
        let mut serial = ExtArchive::new(spec.clone(), small_cfg());
        let mut batched = ExtArchive::new(spec.clone(), small_cfg());
        for d in &versions {
            serial.add_version(d).unwrap();
        }
        let mut assigned = Vec::new();
        for chunk in versions.chunks(split) {
            assigned.extend(batched.add_versions(chunk).unwrap());
        }
        assert_eq!(assigned, (1..=versions.len() as u32).collect::<Vec<_>>());
        assert_eq!(batched.latest(), serial.latest());
        for v in 1..=versions.len() as u32 {
            let mut want = Vec::new();
            let mut got = Vec::new();
            assert!(serial.retrieve_into(v, &mut want).unwrap());
            assert!(batched.retrieve_into(v, &mut got).unwrap());
            assert_eq!(want, got, "split {split}: streamed v{v} diverged");
        }
    }
}

#[test]
fn batch_ingest_reads_the_archive_once() {
    // the point of the fold: a k-document batch pays ONE archive-sized
    // pass, not k. The saving is the (k−1) avoided archive passes, so it
    // shows when the archive outweighs a single version — the curated-
    // archive shape: a churny history accumulates every record that ever
    // lived, while each incoming version stays snapshot-sized.
    let spec = omim_spec();
    let mut g = OmimGen::new(313);
    g.del_ratio = 0.20; // heavy churn: the archive keeps what versions drop
    g.ins_ratio = 0.20;
    let versions = g.sequence(60, 28);
    let (warmup, batch) = versions.split_at(20);
    let mut serial = ExtArchive::new(spec.clone(), small_cfg());
    let mut batched = ExtArchive::new(spec.clone(), small_cfg());
    // identical warm-up so both start from the same (large) archive
    for d in warmup {
        serial.add_version(d).unwrap();
        batched.add_version(d).unwrap();
    }
    let serial_before = serial.io_stats().total();
    let batched_before = batched.io_stats().total();
    for d in batch {
        serial.add_version(d).unwrap();
    }
    batched.add_versions(batch).unwrap();
    let serial_io = serial.io_stats().total() - serial_before;
    let batched_io = batched.io_stats().total() - batched_before;
    assert!(
        batched_io * 2 < serial_io,
        "batched ingest should cost well under half the serial I/O: {batched_io} vs {serial_io}"
    );
}

#[test]
fn empty_batch_is_a_noop_on_the_stream() {
    let spec = omim_spec();
    let mut ext = ExtArchive::new(spec, small_cfg());
    assert_eq!(ext.add_versions(&[]).unwrap(), Vec::<u32>::new());
    assert_eq!(ext.latest(), 0);
    let before = ext.raw().to_vec();
    assert_eq!(ext.add_versions(&[]).unwrap(), Vec::<u32>::new());
    assert_eq!(ext.raw(), &before[..]);
}
