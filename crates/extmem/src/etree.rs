//! The in-memory tree fragments the external archiver works with.
//!
//! The external pipeline never materializes a whole document: it streams
//! *spine* nodes (nodes whose subtree exceeds the memory budget) and loads
//! only bounded-size fragments — records, in the datasets' terms — as
//! [`ETree`]s. This mirrors the paper's working assumption that "every
//! root-to-leaf path (including all key values of nodes along the path)
//! can fit in one page"; here the unit is the record subtree.
//!
//! `ETree` carries exactly what Nested Merge needs: the label sort key
//! (tag + key value, §6.2's sort order), the frontier flag, and the
//! timestamp. [`merge_tree`] is the in-memory §6.3 merge applied to a pair
//! of corresponding fragments.

use xarch_core::TimeSet;
use xarch_keys::{Annotations, NodeClass};
use xarch_xml::escape::{escape_attr_into, escape_text_into};
use xarch_xml::{Document, NodeId, NodeKind};

/// Node kinds of an external-archive fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EKind {
    Element {
        tag: String,
        attrs: Vec<(String, String)>,
    },
    Text(String),
    /// A `<T>` alternative beneath a frontier node.
    Stamp,
}

/// One node of a fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ETree {
    pub kind: EKind,
    /// Label sort key for keyed elements: `tag \x00 (path \x01 canon \x02)*`.
    pub sort_key: Option<String>,
    pub frontier: bool,
    pub time: Option<TimeSet>,
    pub children: Vec<ETree>,
}

impl ETree {
    /// Builds a fragment from an annotated document subtree.
    pub fn from_doc(doc: &Document, ann: &Annotations, id: NodeId) -> ETree {
        match &doc.node(id).kind {
            NodeKind::Text(t) => ETree {
                kind: EKind::Text(t.clone()),
                sort_key: None,
                frontier: false,
                time: None,
                children: Vec::new(),
            },
            NodeKind::Element(s) => {
                let tag = doc.syms().resolve(*s).to_owned();
                let attrs = doc
                    .attrs(id)
                    .iter()
                    .map(|(a, v)| (doc.syms().resolve(*a).to_owned(), v.clone()))
                    .collect();
                let sort_key = ann.key(id).map(|k| {
                    let mut s = tag.clone();
                    s.push('\u{0}');
                    for p in &k.parts {
                        s.push_str(&p.path);
                        s.push('\u{1}');
                        s.push_str(&p.canon);
                        s.push('\u{2}');
                    }
                    s
                });
                ETree {
                    kind: EKind::Element { tag, attrs },
                    sort_key,
                    frontier: ann.class(id) == NodeClass::Frontier,
                    time: None,
                    children: doc
                        .children(id)
                        .iter()
                        .map(|&c| ETree::from_doc(doc, ann, c))
                        .collect(),
                }
            }
        }
    }

    /// Recursively sorts keyed children by sort key (unkeyed children keep
    /// their relative order after the keyed ones). No sorting happens at or
    /// beneath frontier nodes, where order carries meaning.
    pub fn sort(&mut self) {
        if self.frontier || !matches!(self.kind, EKind::Element { .. }) {
            return;
        }
        self.children
            .sort_by(|a, b| match (&a.sort_key, &b.sort_key) {
                (Some(x), Some(y)) => x.cmp(y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            });
        for c in &mut self.children {
            c.sort();
        }
    }

    /// Canonical form of this subtree (stamps are not canonicalizable).
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.canonical_into(&mut out);
        out
    }

    fn canonical_into(&self, out: &mut String) {
        match &self.kind {
            EKind::Text(t) => escape_text_into(t, out),
            EKind::Stamp => debug_assert!(false, "stamp has no canonical form"),
            EKind::Element { tag, attrs } => {
                out.push('<');
                out.push_str(tag);
                let mut sorted: Vec<&(String, String)> = attrs.iter().collect();
                sorted.sort();
                for (a, v) in sorted {
                    out.push(' ');
                    out.push_str(a);
                    out.push_str("=\"");
                    escape_attr_into(v, out);
                    out.push('"');
                }
                out.push('>');
                for c in &self.children {
                    c.canonical_into(out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }

    fn content_canonical(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            c.canonical_into(&mut out);
        }
        out
    }
}

/// Merges version fragment `y` into archive fragment `x` (labels equal).
/// `inherited` is the parent's effective timestamp *including* `i`.
pub fn merge_tree(x: &mut ETree, y: &ETree, inherited: &TimeSet, i: u32) {
    let t_cur = match x.time.as_mut() {
        Some(t) => {
            t.insert(i);
            t.clone()
        }
        None => inherited.clone(),
    };
    if y.frontier {
        merge_frontier(x, y, &t_cur, i);
        return;
    }
    // Partition children (they are sorted by sort key on both sides).
    let mut out: Vec<ETree> = Vec::with_capacity(x.children.len().max(y.children.len()));
    let old: Vec<ETree> = std::mem::take(&mut x.children);
    let mut unkeyed_x: Vec<ETree> = Vec::new();
    let mut kx: Vec<ETree> = Vec::new();
    for c in old {
        if c.sort_key.is_some() {
            kx.push(c);
        } else {
            unkeyed_x.push(c);
        }
    }
    let mut ky: Vec<&ETree> = Vec::new();
    let mut unkeyed_y: Vec<&ETree> = Vec::new();
    for c in &y.children {
        if c.sort_key.is_some() {
            ky.push(c);
        } else {
            unkeyed_y.push(c);
        }
    }
    let mut xi = kx.into_iter().peekable();
    let mut yi = ky.into_iter().peekable();
    loop {
        match (xi.peek(), yi.peek()) {
            (Some(xc), Some(yc)) => {
                let ord = xc
                    .sort_key
                    .as_ref()
                    .unwrap()
                    .cmp(yc.sort_key.as_ref().unwrap());
                match ord {
                    std::cmp::Ordering::Equal => {
                        let mut xc = xi.next().unwrap();
                        let yc = yi.next().unwrap();
                        merge_tree(&mut xc, yc, &t_cur, i);
                        out.push(xc);
                    }
                    std::cmp::Ordering::Less => {
                        let mut xc = xi.next().unwrap();
                        terminate(&mut xc, &t_cur, i);
                        out.push(xc);
                    }
                    std::cmp::Ordering::Greater => {
                        let yc = yi.next().unwrap();
                        out.push(insert_new(yc, i));
                    }
                }
            }
            (Some(_), None) => {
                let mut xc = xi.next().unwrap();
                terminate(&mut xc, &t_cur, i);
                out.push(xc);
            }
            (None, Some(_)) => {
                let yc = yi.next().unwrap();
                out.push(insert_new(yc, i));
            }
            (None, None) => break,
        }
    }
    // Unkeyed fallback: value matching on canonical forms.
    let mut remaining: Vec<(String, ETree)> =
        unkeyed_x.into_iter().map(|c| (c.canonical(), c)).collect();
    for yc in unkeyed_y {
        let cy = yc.canonical();
        if let Some(pos) = remaining.iter().position(|(c, _)| *c == cy) {
            let (_, mut xc) = remaining.remove(pos);
            if let Some(t) = xc.time.as_mut() {
                t.insert(i);
            }
            out.push(xc);
        } else {
            out.push(insert_new(yc, i));
        }
    }
    for (_, mut xc) in remaining {
        terminate(&mut xc, &t_cur, i);
        out.push(xc);
    }
    x.children = out;
}

/// Terminates an archive-only fragment at version `i`.
pub fn terminate(x: &mut ETree, t_cur: &TimeSet, i: u32) {
    if x.time.is_none() {
        let mut t = t_cur.clone();
        t.remove(i);
        x.time = Some(t);
    }
}

/// Copies a version fragment into the archive with timestamp `{i}`.
pub fn insert_new(y: &ETree, i: u32) -> ETree {
    let mut c = y.clone();
    c.time = Some(TimeSet::from_version(i));
    c
}

fn merge_frontier(x: &mut ETree, y: &ETree, t_cur: &TimeSet, i: u32) {
    let has_stamps = x.children.iter().any(|c| matches!(c.kind, EKind::Stamp));
    let y_content = y.content_canonical();
    if !has_stamps {
        if x.content_canonical() != y_content {
            let old = std::mem::take(&mut x.children);
            let mut t_old = t_cur.clone();
            t_old.remove(i);
            let t1 = ETree {
                kind: EKind::Stamp,
                sort_key: None,
                frontier: false,
                time: Some(t_old),
                children: old,
            };
            let t2 = ETree {
                kind: EKind::Stamp,
                sort_key: None,
                frontier: false,
                time: Some(TimeSet::from_version(i)),
                children: y.children.clone(),
            };
            x.children = vec![t1, t2];
        }
    } else if let Some(sc) = x
        .children
        .iter_mut()
        .find(|c| matches!(c.kind, EKind::Stamp) && c.content_canonical() == y_content)
    {
        sc.time.as_mut().expect("stamp time").insert(i);
    } else {
        x.children.push(ETree {
            kind: EKind::Stamp,
            sort_key: None,
            frontier: false,
            time: Some(TimeSet::from_version(i)),
            children: y.children.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_keys::{annotate, KeySpec};
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    fn tree(src: &str) -> ETree {
        let doc = parse(src).unwrap();
        let ann = annotate(&doc, &spec()).unwrap();
        let mut t = ETree::from_doc(&doc, &ann, doc.root());
        t.sort();
        t
    }

    #[test]
    fn from_doc_captures_keys_and_frontier() {
        let t = tree("<db><rec><id>2</id><val>x</val></rec><rec><id>1</id><val>y</val></rec></db>");
        assert_eq!(t.children.len(), 2);
        // sorted by key: rec{1} before rec{2}
        assert!(
            t.children[0].sort_key.as_ref().unwrap() < t.children[1].sort_key.as_ref().unwrap()
        );
        let rec = &t.children[0];
        let val = rec
            .children
            .iter()
            .find(|c| matches!(&c.kind, EKind::Element{tag,..} if tag=="val"))
            .unwrap();
        assert!(val.frontier);
    }

    #[test]
    fn merge_tree_matches_expectations() {
        let mut a = tree("<db><rec><id>1</id><val>x</val></rec></db>");
        a.time = Some(TimeSet::from_version(1));
        let v2 =
            tree("<db><rec><id>1</id><val>y</val></rec><rec><id>2</id><val>z</val></rec></db>");
        let inherited = TimeSet::from_range(1, 2);
        merge_tree(&mut a, &v2, &inherited, 2);
        assert_eq!(a.time.clone().unwrap().to_string(), "1-2");
        // rec{1} persists, its val split into two stamps
        let rec1 = &a.children[0];
        assert!(rec1.time.is_none(), "rec1 inherits");
        let val = rec1
            .children
            .iter()
            .find(|c| matches!(&c.kind, EKind::Element{tag,..} if tag=="val"))
            .unwrap();
        assert_eq!(val.children.len(), 2);
        assert!(matches!(val.children[0].kind, EKind::Stamp));
        // rec{2} is new with time {2}
        let rec2 = &a.children[1];
        assert_eq!(rec2.time.clone().unwrap().to_string(), "2");
    }

    #[test]
    fn terminate_sets_explicit_time() {
        let mut a = tree("<db><rec><id>1</id><val>x</val></rec></db>");
        a.time = Some(TimeSet::from_version(1));
        let v2 = tree("<db></db>");
        merge_tree(&mut a, &v2, &TimeSet::from_range(1, 2), 2);
        assert_eq!(a.children[0].time.clone().unwrap().to_string(), "1");
    }

    #[test]
    fn canonical_is_stable_under_attr_order() {
        let x = ETree {
            kind: EKind::Element {
                tag: "a".into(),
                attrs: vec![("z".into(), "1".into()), ("b".into(), "2".into())],
            },
            sort_key: None,
            frontier: false,
            time: None,
            children: Vec::new(),
        };
        let y = ETree {
            kind: EKind::Element {
                tag: "a".into(),
                attrs: vec![("b".into(), "2".into()), ("z".into(), "1".into())],
            },
            ..x.clone()
        };
        assert_eq!(x.canonical(), y.canonical());
    }
}
