//! # xarch-extmem
//!
//! The external-memory archiver of §6 of *Archiving Scientific Data*.
//! The in-memory Nested Merge cannot hold a 436 MB Swiss-Prot release on a
//! 256 MB machine; §6 replaces it with a three-step pipeline over
//! *serialized event streams*:
//!
//! 1. **Annotate** — documents become token streams with key values
//!    attached to keyed nodes (§6.1's internal representation with a tag
//!    dictionary and key files; our [`events`] module fuses these into one
//!    self-describing stream);
//! 2. **Sort** — sibling groups are sorted by key value using bounded
//!    memory: in-memory runs of at most `M` bytes, then `(M/B − 1)`-way
//!    merge passes ([`sort`]);
//! 3. **Merge** — a single synchronized pass over the sorted archive and
//!    sorted version emits the new archive (§6.3, [`archiver`]).
//!
//! The "disk" is simulated by [`io::PagedWriter`]/[`io::PagedReader`],
//! which charge one I/O per `B`-byte page touched, so the I/O complexity
//! claims of §6 are measurable quantities (`O(N/B · log_{M/B} N/B)` for the
//! sort, `O(N/B)` for the merge pass). Differential tests verify the
//! external archiver produces version-for-version the same database as the
//! in-memory [`xarch_core::Archive`].

pub mod archiver;
pub mod etree;
pub mod events;
pub mod io;
pub mod sort;

pub use archiver::ExtArchive;
pub use etree::{EKind, ETree};
pub use events::{decode_small, encode_small, get_varint, put_varint, StreamError};
pub use io::{IoConfig, IoStats, SharedIoStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archiver_is_shareable_across_threads() {
        // read passes take `&self` and charge their page accounting
        // through `SharedIoStats` atomics, so one archive can serve
        // concurrent readers
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExtArchive>();
        assert_send_sync::<SharedIoStats>();
    }
}
