//! Simulated paged I/O with cost accounting.
//!
//! Files are byte vectors; the unit of cost is one *page* of `B` bytes
//! (§6's block size). A writer charges one write per completed page (plus
//! the final partial page); a reader charges one read per distinct page it
//! touches while advancing.

/// External-memory parameters: `M` (memory budget, bytes) and `B` (page
/// size, bytes).
#[derive(Debug, Clone, Copy)]
pub struct IoConfig {
    /// Total memory size `M` in bytes.
    pub mem_bytes: usize,
    /// Page (disk block) size `B` in bytes.
    pub page_bytes: usize,
}

impl Default for IoConfig {
    fn default() -> Self {
        Self {
            mem_bytes: 1 << 20,  // 1 MiB
            page_bytes: 4 << 10, // 4 KiB
        }
    }
}

impl IoConfig {
    /// Merge fan-in `(M/B) − 1`, clamped to at least 2.
    pub fn fan_in(&self) -> usize {
        (self.mem_bytes / self.page_bytes).saturating_sub(1).max(2)
    }
}

/// Cumulative I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    pub page_reads: u64,
    pub page_writes: u64,
}

impl IoStats {
    pub fn total(&self) -> u64 {
        self.page_reads + self.page_writes
    }

    pub fn add(&mut self, other: IoStats) {
        self.page_reads += other.page_reads;
        self.page_writes += other.page_writes;
    }
}

/// [`IoStats`] behind [`xarch_obs::Counter`] handles: the archiver's
/// cumulative accounting, charged from `&self` read passes so queries can
/// run concurrently.
///
/// Counters are monotone sums backed by relaxed atomics — the totals
/// never order other memory, and charging never takes a lock. By default
/// the handles are detached (per-archive accounting, exactly the old
/// `AtomicU64` behavior); [`SharedIoStats::registered`] binds them to an
/// observability registry under the canonical `extmem.*` names instead.
#[derive(Debug, Clone, Default)]
pub struct SharedIoStats {
    page_reads: xarch_obs::Counter,
    page_writes: xarch_obs::Counter,
}

impl SharedIoStats {
    /// Counters registered under `extmem.page_reads` / `extmem.page_writes`.
    pub fn registered(registry: &xarch_obs::Registry) -> Self {
        Self {
            page_reads: registry.counter(
                "extmem.page_reads",
                "pages",
                "pages charged by external-memory read passes",
            ),
            page_writes: registry.counter(
                "extmem.page_writes",
                "pages",
                "pages charged by external-memory write passes",
            ),
        }
    }

    /// Charges `n` page reads.
    pub fn add_reads(&self, n: u64) {
        self.page_reads.add(n);
    }

    /// Charges `n` page writes.
    pub fn add_writes(&self, n: u64) {
        self.page_writes.add(n);
    }

    /// Folds a pass's counters into the cumulative totals.
    pub fn add(&self, other: IoStats) {
        self.add_reads(other.page_reads);
        self.add_writes(other.page_writes);
    }

    /// A plain-value snapshot of the totals.
    pub fn get(&self) -> IoStats {
        IoStats {
            page_reads: self.page_reads.get(),
            page_writes: self.page_writes.get(),
        }
    }
}

/// A write-only paged file.
#[derive(Debug)]
pub struct PagedWriter {
    buf: Vec<u8>,
    page: usize,
    pages_written: u64,
}

impl PagedWriter {
    pub fn new(page: usize) -> Self {
        Self {
            buf: Vec::new(),
            page: page.max(1),
            pages_written: 0,
        }
    }

    pub fn write(&mut self, bytes: &[u8]) {
        let before = self.buf.len() / self.page;
        self.buf.extend_from_slice(bytes);
        let after = self.buf.len() / self.page;
        self.pages_written += (after - before) as u64;
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes the file, charging the final partial page.
    pub fn finish(mut self) -> (Vec<u8>, u64) {
        if !self.buf.len().is_multiple_of(self.page)
            || (self.buf.is_empty() && self.pages_written == 0)
        {
            self.pages_written += 1;
        }
        (self.buf, self.pages_written)
    }
}

/// A read-only paged file cursor.
#[derive(Debug)]
pub struct PagedReader<'a> {
    buf: &'a [u8],
    pos: usize,
    page: usize,
    last_page: Option<usize>,
    pages_read: u64,
}

impl<'a> PagedReader<'a> {
    pub fn new(buf: &'a [u8], page: usize) -> Self {
        Self {
            buf,
            pos: 0,
            page: page.max(1),
            last_page: None,
            pages_read: 0,
        }
    }

    fn touch(&mut self, from: usize, to: usize) {
        if to > from {
            let first = from / self.page;
            let last = (to - 1) / self.page;
            let start = match self.last_page {
                Some(lp) if lp >= first => lp + 1,
                _ => first,
            };
            if last >= start {
                self.pages_read += (last - start + 1) as u64;
            }
            self.last_page = Some(self.last_page.map_or(last, |lp| lp.max(last)));
        }
    }

    /// Reads exactly `n` bytes, or `None` at EOF.
    pub fn read(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.touch(self.pos, self.pos + n);
        self.pos += n;
        Some(out)
    }

    /// Peeks one byte without consuming (charges the page on first touch).
    pub fn peek_byte(&mut self) -> Option<u8> {
        if self.pos >= self.buf.len() {
            return None;
        }
        self.touch(self.pos, self.pos + 1);
        Some(self.buf[self.pos])
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn is_eof(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_charges_per_page() {
        let mut w = PagedWriter::new(4);
        w.write(&[0; 3]);
        let (buf, pages) = w.finish();
        assert_eq!(buf.len(), 3);
        assert_eq!(pages, 1);

        let mut w = PagedWriter::new(4);
        w.write(&[0; 9]); // 2 full pages + 1 partial
        let (_, pages) = w.finish();
        assert_eq!(pages, 3);
    }

    #[test]
    fn reader_charges_each_page_once() {
        let data = vec![0u8; 10];
        let mut r = PagedReader::new(&data, 4);
        assert!(r.read(2).is_some()); // page 0
        assert!(r.read(2).is_some()); // still page 0
        assert!(r.read(4).is_some()); // pages 1
        assert!(r.read(2).is_some()); // page 2
        assert!(r.read(1).is_none());
        assert_eq!(r.pages_read(), 3);
    }

    #[test]
    fn sequential_peek_then_read_charges_once() {
        let data = vec![0u8; 4];
        let mut r = PagedReader::new(&data, 4);
        assert_eq!(r.peek_byte(), Some(0));
        assert!(r.read(4).is_some());
        assert_eq!(r.pages_read(), 1);
    }

    #[test]
    fn fan_in_clamped() {
        let cfg = IoConfig {
            mem_bytes: 100,
            page_bytes: 100,
        };
        assert_eq!(cfg.fan_in(), 2);
        let cfg = IoConfig {
            mem_bytes: 1 << 20,
            page_bytes: 4 << 10,
        };
        assert_eq!(cfg.fan_in(), 255);
    }
}
