//! The external-memory archiver facade and the streaming merge of §6.3.
//!
//! "This step is very much like [the sort] except that frontier nodes are
//! handled differently ... Initially x is the root of A′ and y is a virtual
//! root of D′ with the same key as x, and x and y proceed through A′ and D′
//! in document order. If label(x) < label(y), we output x and its entire
//! subtree and attach the current timestamp ... If label(x) > label(y) we
//! output y and its entire subtree and attach timestamp i ... Otherwise we
//! output x [with i added] ... Since this step makes one pass through the
//! archive and version, it incurs O(N/B) I/Os."

use std::io::Write;

use xarch_core::store::{StoreError, StoreReader, StoreStats, VersionStore};
use xarch_core::{KeyQuery, RangeEntry, TimeSet};
use xarch_keys::{annotate, KeySpec};
use xarch_xml::escape::{escape_attr, escape_text};
use xarch_xml::Document;

use crate::etree::{insert_new, merge_tree, terminate, EKind, ETree};
use crate::events::{
    encode_small, encode_spine_close, encode_spine_open, Peeked, SpineHeader, StreamCursor,
    StreamError,
};
use crate::io::{IoConfig, IoStats, PagedWriter, SharedIoStats};
use crate::sort::write_sorted_version;

type Result<T> = std::result::Result<T, StreamError>;

/// The external-memory archive: a sorted event stream plus I/O accounting.
///
/// All query passes take `&self`: the stream is immutable between merges,
/// and the per-pass page accounting is charged through atomics
/// ([`SharedIoStats`]), so concurrent readers never contend.
#[derive(Debug)]
pub struct ExtArchive {
    spec: KeySpec,
    cfg: IoConfig,
    data: Vec<u8>,
    latest: u32,
    stats: SharedIoStats,
}

impl ExtArchive {
    /// Creates an empty external archive.
    pub fn new(spec: KeySpec, cfg: IoConfig) -> Self {
        Self::with_stats(spec, cfg, SharedIoStats::default())
    }

    /// Creates an empty external archive charging its paged I/O into
    /// counters registered under the canonical `extmem.*` names.
    pub fn observed(spec: KeySpec, cfg: IoConfig, registry: &xarch_obs::Registry) -> Self {
        Self::with_stats(spec, cfg, SharedIoStats::registered(registry))
    }

    fn with_stats(spec: KeySpec, cfg: IoConfig, stats: SharedIoStats) -> Self {
        // the empty archive: a root spine with an empty timestamp
        let mut data = Vec::new();
        encode_spine_open(
            &SpineHeader {
                tag: "root".into(),
                attrs: Vec::new(),
                sort_key: Some("root\u{0}".into()),
                time: Some(TimeSet::new()),
            },
            &mut data,
        );
        encode_spine_close(&mut data);
        Self {
            spec,
            cfg,
            data,
            latest: 0,
            stats,
        }
    }

    /// The governing key specification.
    pub fn spec(&self) -> &KeySpec {
        &self.spec
    }

    /// Number of archived versions.
    pub fn latest(&self) -> u32 {
        self.latest
    }

    /// True if version `v` has been archived (it may still be an *empty*
    /// version) — the same contract as the in-memory archiver.
    pub fn has_version(&self, v: u32) -> bool {
        v >= 1 && v <= self.latest
    }

    /// Size of the archive stream in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Cumulative I/O statistics across all operations.
    pub fn io_stats(&self) -> IoStats {
        self.stats.get()
    }

    /// The raw archive stream (diagnostics).
    pub fn raw(&self) -> &[u8] {
        &self.data
    }

    /// Archives the next version: annotate → external sort → one merge pass.
    pub fn add_version(&mut self, doc: &Document) -> Result<u32> {
        let ann = annotate(doc, &self.spec).map_err(|e| StreamError::new(e.to_string()))?;
        // Same contract as the in-memory archiver: an unkeyed document root
        // is rejected up front (the merge would otherwise fail mid-stream
        // with an opaque decode error).
        if !ann.is_keyed(doc.root()) {
            return Err(StreamError::new(format!(
                "document root <{}> has no root-level key in the spec",
                doc.tag_name(doc.root())
            )));
        }
        let (sorted, sort_stats) = write_sorted_version(doc, &ann, &self.cfg)?;
        self.stats.add(sort_stats);
        let i = self.latest + 1;

        let mut ar = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let mut vr = StreamCursor::new(&sorted, self.cfg.page_bytes);
        let mut out = PagedWriter::new(self.cfg.page_bytes);
        merge_spines(&mut ar, &mut vr, &mut out, &TimeSet::new(), i)?;
        self.stats.add_reads(ar.pages_read() + vr.pages_read());
        let (bytes, writes) = out.finish();
        self.stats.add_writes(writes);
        self.data = bytes;
        self.latest = i;
        Ok(i)
    }

    /// Bulk ingest: archives `docs` as consecutive versions by folding the
    /// whole batch into a **single streaming pass** over the archive.
    ///
    /// Each document still pays its own annotate + external sort (those
    /// are version-sized), but the archive-sized merge — the cost that
    /// dominates bulk loads, `O(N/B)` per version when applied serially —
    /// runs once for the whole batch: a (k+1)-way synchronized walk over
    /// the archive stream and all `k` sorted version streams. Per-entry
    /// semantics reconstruct exactly what `k` serial passes would emit
    /// (see `batch_merge_level` in this module), so the resulting stream
    /// answers every query identically to a one-at-a-time replay.
    ///
    /// All documents are annotated and sorted *before* the archive stream
    /// is touched and the new stream is swapped in atomically at the end,
    /// so a rejected batch leaves the archive unchanged.
    pub fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let mut sorted: Vec<Vec<u8>> = Vec::with_capacity(docs.len());
        for doc in docs {
            let ann = annotate(doc, &self.spec).map_err(|e| StreamError::new(e.to_string()))?;
            if !ann.is_keyed(doc.root()) {
                return Err(StreamError::new(format!(
                    "document root <{}> has no root-level key in the spec",
                    doc.tag_name(doc.root())
                )));
            }
            let (bytes, sort_stats) = write_sorted_version(doc, &ann, &self.cfg)?;
            self.stats.add(sort_stats);
            sorted.push(bytes);
        }
        let assigned: Vec<u32> = (1..=docs.len() as u32).map(|k| self.latest + k).collect();

        let mut ar = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let mut vcur: Vec<BatchCursor<'_>> = sorted
            .iter()
            .zip(&assigned)
            .map(|(bytes, &v)| BatchCursor {
                cur: StreamCursor::new(bytes, self.cfg.page_bytes),
                v,
            })
            .collect();
        let mut out = PagedWriter::new(self.cfg.page_bytes);

        // Every stream wraps its contents in the same synthetic root
        // spine; the root is present in every version, so its timestamp
        // simply gains the whole batch.
        let mut rh = ar.take_spine_open()?;
        let eff0 = rh.time.clone().unwrap_or_else(TimeSet::new);
        for bc in &mut vcur {
            bc.cur.take_spine_open()?;
        }
        {
            let t = rh.time.get_or_insert_with(TimeSet::new);
            for &v in &assigned {
                t.insert(v);
            }
        }
        let mut header = Vec::new();
        encode_spine_open(&rh, &mut header);
        out.write(&header);
        let active: Vec<usize> = (0..vcur.len()).collect();
        batch_merge_level(Some(&mut ar), &mut vcur, &active, &eff0, &mut out)?;
        let mut close = Vec::new();
        encode_spine_close(&mut close);
        out.write(&close);

        self.stats
            .add_reads(ar.pages_read() + vcur.iter().map(|c| c.cur.pages_read()).sum::<u64>());
        let (bytes, writes) = out.finish();
        self.stats.add_writes(writes);
        self.data = bytes;
        self.latest += docs.len() as u32;
        Ok(assigned)
    }

    /// Archives an *empty* database as the next version: one merge pass
    /// against a version stream holding only the virtual root, so every
    /// archived element is terminated while the root keeps ticking —
    /// `has_version` then answers `true` and `retrieve` answers `None`,
    /// matching the in-memory archiver's contract.
    pub fn add_empty_version(&mut self) -> Result<u32> {
        let i = self.latest + 1;
        let mut version = Vec::new();
        encode_spine_open(
            &SpineHeader {
                tag: "root".into(),
                attrs: Vec::new(),
                sort_key: Some("root\u{0}".into()),
                time: None,
            },
            &mut version,
        );
        encode_spine_close(&mut version);
        let mut ar = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let mut vr = StreamCursor::new(&version, self.cfg.page_bytes);
        let mut out = PagedWriter::new(self.cfg.page_bytes);
        merge_spines(&mut ar, &mut vr, &mut out, &TimeSet::new(), i)?;
        self.stats.add_reads(ar.pages_read() + vr.pages_read());
        let (bytes, writes) = out.finish();
        self.stats.add_writes(writes);
        self.data = bytes;
        self.latest = i;
        Ok(i)
    }

    /// Streaming retrieval: one pass over the event stream writing the
    /// nodes visible at `v` directly into `out` as compact XML — no
    /// [`Document`] and no whole-archive [`ETree`] are materialized (small
    /// entries are decoded one record at a time). Returns `true` iff a
    /// document was written.
    pub fn retrieve_into<W: Write + ?Sized>(
        &self,
        v: u32,
        out: &mut W,
    ) -> std::result::Result<bool, StoreError> {
        if !self.has_version(v) {
            return Ok(false);
        }
        let mut cur = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let result = Self::emit_root(&mut cur, v, out);
        self.stats.add_reads(cur.pages_read());
        result
    }

    /// Consumes the synthetic root spine, emitting the first visible
    /// document root (mirrors [`ExtArchive::retrieve`]'s selection).
    fn emit_root<W: Write + ?Sized>(
        cur: &mut StreamCursor<'_>,
        v: u32,
        out: &mut W,
    ) -> std::result::Result<bool, StoreError> {
        let _root = cur.take_spine_open()?;
        let mut wrote = false;
        loop {
            match cur.peek()? {
                Peeked::Close => {
                    cur.take_spine_close()?;
                    return Ok(wrote);
                }
                Peeked::Eof => return Err(StreamError::new("unterminated root spine").into()),
                Peeked::Small(_) => {
                    let t = cur.take_small()?;
                    if !wrote {
                        if let Some(ft) = filter_tree(&t, v, true) {
                            if matches!(ft.kind, EKind::Element { .. }) {
                                write_etree(&ft, out)?;
                                wrote = true;
                            }
                        }
                    }
                }
                Peeked::Spine(_) => {
                    let h = cur.take_spine_open()?;
                    let visible = h.time.as_ref().is_none_or(|t| t.contains(v));
                    if visible && !wrote {
                        emit_spine(cur, &h, v, out)?;
                        wrote = true;
                    } else {
                        skip_spine(cur)?;
                    }
                }
            }
        }
    }

    /// The temporal history of the element addressed by `steps` (§7.2),
    /// answered with one partial scan of the event stream: each level is
    /// scanned until the step's label sort key matches, then the walk
    /// descends (into the spine, or in memory once a small record is
    /// reached). Timestamp inheritance follows the spine headers.
    pub fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>> {
        let mut cur = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let root = cur.take_spine_open()?;
        let root_time = root.time.clone().unwrap_or_else(TimeSet::new);
        let result = if steps.is_empty() {
            Ok(Some(root_time))
        } else {
            history_in_spine(&mut cur, steps, 0, &root_time)
        };
        self.stats.add_reads(cur.pages_read());
        result
    }

    /// Partial retrieval with a partial scan: the walk descends the key
    /// path by sort-key comparison — skipping every non-matching sibling
    /// spine — and materializes only the addressed subtree, filtered to
    /// version `v`. An empty path addresses the whole document.
    pub fn as_of(
        &self,
        steps: &[KeyQuery],
        v: u32,
    ) -> std::result::Result<Option<xarch_xml::Document>, StoreError> {
        if !self.has_version(v) {
            return Ok(None);
        }
        if steps.is_empty() {
            return Ok(self.retrieve(v)?);
        }
        let mut cur = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let root = cur.take_spine_open()?;
        let root_time = root.time.clone().unwrap_or_else(TimeSet::new);
        let found = find_in_spine(&mut cur, steps, 0, &root_time)?;
        self.stats.add_reads(cur.pages_read());
        let Some((tree, eff)) = found else {
            return Ok(None);
        };
        if !eff.contains(v) {
            return Ok(None);
        }
        let Some(filtered) = filter_tree(&tree, v, true) else {
            return Ok(None);
        };
        if !matches!(filtered.kind, EKind::Element { .. }) {
            return Ok(None);
        }
        Ok(Some(tree_to_doc(&filtered)))
    }

    /// Range scan with a partial scan: descends to the prefix node, then
    /// enumerates its immediate children — reading each child spine's
    /// *header only* and skipping its body — clamping lifetimes to the
    /// queried window. An empty prefix addresses the synthetic root.
    pub fn range(
        &self,
        prefix: &[KeyQuery],
        versions: std::ops::RangeInclusive<u32>,
    ) -> std::result::Result<Vec<RangeEntry>, StoreError> {
        let lo = (*versions.start()).max(1);
        let hi = (*versions.end()).min(self.latest);
        let mut cur = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let root = cur.take_spine_open()?;
        let root_time = root.time.clone().unwrap_or_else(TimeSet::new);
        let mut out: Vec<RangeEntry> = Vec::new();
        let located = if prefix.is_empty() {
            // the cursor already sits inside the synthetic root's spine
            Some(LocatedLevel::Spine(root_time.clone()))
        } else {
            locate_level(&mut cur, prefix, 0, &root_time)?
        };
        match located {
            None => {}
            Some(LocatedLevel::Spine(eff)) => {
                // enumerate this spine's children from their headers
                loop {
                    match cur.peek()? {
                        Peeked::Close | Peeked::Eof => break,
                        Peeked::Small(_) => {
                            let t = cur.take_small()?;
                            push_range_entry(
                                &mut out,
                                t.sort_key.as_deref(),
                                matches!(t.kind, EKind::Element { .. }),
                                t.time.as_ref(),
                                &eff,
                                lo,
                                hi,
                            );
                        }
                        Peeked::Spine(_) => {
                            let h = cur.take_spine_open()?;
                            push_range_entry(
                                &mut out,
                                h.sort_key.as_deref(),
                                true,
                                h.time.as_ref(),
                                &eff,
                                lo,
                                hi,
                            );
                            skip_spine(&mut cur)?;
                        }
                    }
                }
            }
            Some(LocatedLevel::Tree(tree, eff)) => {
                for c in &tree.children {
                    push_range_entry(
                        &mut out,
                        c.sort_key.as_deref(),
                        matches!(c.kind, EKind::Element { .. }),
                        c.time.as_ref(),
                        &eff,
                        lo,
                        hi,
                    );
                }
            }
        }
        self.stats.add_reads(cur.pages_read());
        out.sort_by(|a, b| a.step.cmp(&b.step));
        Ok(out)
    }

    /// Aggregate statistics, computed with one pass over the stream.
    pub fn store_stats(&self) -> Result<StoreStats> {
        let mut cur = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let mut s = StoreStats {
            versions: self.latest,
            size_bytes: self.data.len(),
            ..StoreStats::default()
        };
        loop {
            match cur.peek()? {
                Peeked::Eof => break,
                Peeked::Close => {
                    cur.take_spine_close()?;
                }
                Peeked::Spine(_) => {
                    cur.take_spine_open()?;
                    s.elements += 1;
                }
                Peeked::Small(_) => {
                    let t = cur.take_small()?;
                    count_tree(&t, &mut s);
                }
            }
        }
        self.stats.add_reads(cur.pages_read());
        Ok(s)
    }

    /// Aggregate statistics of the archive *as it stood* after version
    /// `v` merged, computed with one pass over the stream: an entry
    /// counts iff its effective timestamp intersects `1..=v`, and
    /// `size_bytes` is the length of the canonical clamped re-encoding
    /// (explicit timestamps survive iff their clamp differs from the
    /// parent's clamped effective time). Append-only merges never change
    /// either, so the answer stays fixed while the live archive grows.
    pub fn store_stats_at(&self, v: u32) -> Result<StoreStats> {
        let v = v.min(self.latest);
        let mut cur = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let mut s = StoreStats {
            versions: v,
            ..StoreStats::default()
        };
        let mut size = 0usize;
        let mut scratch = Vec::new();
        // clamped effective timestamps of the currently-open spines
        let mut stack: Vec<TimeSet> = Vec::new();
        loop {
            match cur.peek()? {
                Peeked::Eof => break,
                Peeked::Close => {
                    cur.take_spine_close()?;
                    stack.pop();
                    scratch.clear();
                    encode_spine_close(&mut scratch);
                    size += scratch.len();
                }
                Peeked::Spine(_) => {
                    let h = cur.take_spine_open()?;
                    let clamped = match (&h.time, stack.last()) {
                        (Some(t), _) => t.clamp_range(1, v),
                        (None, Some(p)) => p.clone(),
                        (None, None) => TimeSet::new(),
                    };
                    // the root spine always renders — even clamped empty
                    // (the empty archive at v = 0); any other spine whose
                    // clamped time is empty joined after v, subtree and all
                    if clamped.is_empty() && !stack.is_empty() {
                        skip_spine(&mut cur)?;
                        continue;
                    }
                    s.elements += 1;
                    let explicit = match stack.last() {
                        None => true,
                        Some(p) => h.time.is_some() && clamped != *p,
                    };
                    scratch.clear();
                    encode_spine_open(
                        &SpineHeader {
                            tag: h.tag,
                            attrs: h.attrs,
                            sort_key: h.sort_key,
                            time: explicit.then(|| clamped.clone()),
                        },
                        &mut scratch,
                    );
                    size += scratch.len();
                    stack.push(clamped);
                }
                Peeked::Small(_) => {
                    let t = cur.take_small()?;
                    let parent = stack.last().cloned().unwrap_or_default();
                    let mut survivors = Vec::new();
                    clamp_tree(&t, v, &parent, &mut survivors);
                    for ct in &survivors {
                        count_tree(ct, &mut s);
                        scratch.clear();
                        encode_small(ct, &mut scratch);
                        size += scratch.len();
                    }
                }
            }
        }
        self.stats.add_reads(cur.pages_read());
        s.size_bytes = size;
        Ok(s)
    }

    /// Retrieves version `v` with one streaming pass.
    pub fn retrieve(&self, v: u32) -> Result<Option<Document>> {
        if v == 0 || v > self.latest {
            return Ok(None);
        }
        let mut cur = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let root = read_visible(&mut cur, v, None)?;
        self.stats.add_reads(cur.pages_read());
        // root is the synthetic "root"; its children hold the document root
        let Some(root) = root else {
            return Ok(None);
        };
        let doc_root = root
            .children
            .into_iter()
            .find(|c| matches!(c.kind, EKind::Element { .. }));
        let Some(tree) = doc_root else {
            return Ok(None); // empty version
        };
        Ok(Some(tree_to_doc(&tree)))
    }
}

impl StoreReader for ExtArchive {
    fn spec(&self) -> &KeySpec {
        ExtArchive::spec(self)
    }

    fn latest(&self) -> u32 {
        ExtArchive::latest(self)
    }

    fn has_version(&self, v: u32) -> bool {
        ExtArchive::has_version(self, v)
    }

    fn retrieve(&self, v: u32) -> std::result::Result<Option<Document>, StoreError> {
        Ok(ExtArchive::retrieve(self, v)?)
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> std::result::Result<bool, StoreError> {
        ExtArchive::retrieve_into(self, v, out)
    }

    fn history(&self, steps: &[KeyQuery]) -> std::result::Result<Option<TimeSet>, StoreError> {
        Ok(ExtArchive::history(self, steps)?)
    }

    fn stats(&self) -> std::result::Result<StoreStats, StoreError> {
        Ok(ExtArchive::store_stats(self)?)
    }

    fn stats_at(&self, v: u32) -> std::result::Result<StoreStats, StoreError> {
        Ok(ExtArchive::store_stats_at(self, v)?)
    }

    fn as_of(
        &self,
        steps: &[KeyQuery],
        v: u32,
    ) -> std::result::Result<Option<Document>, StoreError> {
        ExtArchive::as_of(self, steps, v)
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: std::ops::RangeInclusive<u32>,
    ) -> std::result::Result<Vec<RangeEntry>, StoreError> {
        ExtArchive::range(self, prefix, versions)
    }
}

impl VersionStore for ExtArchive {
    fn add_version(&mut self, doc: &Document) -> std::result::Result<u32, StoreError> {
        Ok(ExtArchive::add_version(self, doc)?)
    }

    fn add_empty_version(&mut self) -> std::result::Result<u32, StoreError> {
        Ok(ExtArchive::add_empty_version(self)?)
    }

    fn add_versions(&mut self, docs: &[Document]) -> std::result::Result<Vec<u32>, StoreError> {
        Ok(ExtArchive::add_versions(self, docs)?)
    }

    fn checkpoint_state(&self) -> std::result::Result<Option<Vec<u8>>, StoreError> {
        // the external archive's materialized state IS its event stream —
        // the checkpoint payload is the stream plus enough framing to
        // verify it belongs to this configuration
        let mut out = vec![xarch_core::state::STATE_EXTMEM];
        xarch_core::wire::put_varint(&mut out, self.latest as u64);
        xarch_core::wire::put_str(&mut out, &xarch_core::state::spec_source(&self.spec));
        xarch_core::wire::put_bytes(&mut out, &self.data);
        Ok(Some(out))
    }

    fn restore_checkpoint(&mut self, state: &[u8]) -> std::result::Result<bool, StoreError> {
        use xarch_core::wire::{get_bytes, get_str, get_varint};
        if self.latest != 0 {
            return Err(StoreError::Backend(
                "restore_checkpoint requires an empty store".into(),
            ));
        }
        if state.first() != Some(&xarch_core::state::STATE_EXTMEM) {
            return Ok(false);
        }
        let mut pos = 1;
        let latest = get_varint(state, &mut pos).map_err(xarch_core::state::corrupt)?;
        let latest = u32::try_from(latest).map_err(|_| StoreError::Corrupt {
            offset: pos as u64,
            reason: "checkpoint state: version overflow".into(),
        })?;
        let spec_src = get_str(state, &mut pos).map_err(xarch_core::state::corrupt)?;
        let spec = KeySpec::parse(&spec_src).map_err(|e| StoreError::Corrupt {
            offset: pos as u64,
            reason: format!("checkpoint state: bad key spec: {e}"),
        })?;
        if spec != self.spec {
            return Ok(false);
        }
        let data = get_bytes(state, &mut pos).map_err(xarch_core::state::corrupt)?;
        if pos != state.len() {
            return Err(StoreError::Corrupt {
                offset: pos as u64,
                reason: "checkpoint state: trailing bytes".into(),
            });
        }
        // a structural sanity pass over the restored stream: every entry
        // must decode, so a damaged-but-checksummed payload fails loudly
        // here instead of mid-query
        validate_stream(data)?;
        self.data = data.to_vec();
        self.latest = latest;
        Ok(true)
    }

    fn fork(&self) -> std::result::Result<Box<dyn VersionStore>, StoreError> {
        // the replica shares the I/O counters (its passes are real paged
        // I/O charged to the same archive) and copies the event stream,
        // so it answers every read byte-identically
        Ok(Box::new(ExtArchive {
            spec: self.spec.clone(),
            cfg: self.cfg,
            data: self.data.clone(),
            latest: self.latest,
            stats: self.stats.clone(),
        }))
    }
}

/// Walks every entry of an event stream, erroring (positioned, loud) on
/// the first undecodable entry or unbalanced spine — the structural
/// sanity gate for checkpoint restore, so a damaged payload fails at
/// restore time instead of mid-query.
fn validate_stream(data: &[u8]) -> std::result::Result<(), StoreError> {
    use crate::events::{Peeked, StreamCursor};
    let mut cur = StreamCursor::new(data, 4096);
    let mut depth = 0u64;
    loop {
        match cur.peek().map_err(StoreError::from)? {
            Peeked::Eof => break,
            Peeked::Small(_) => {
                cur.take_small().map_err(StoreError::from)?;
            }
            Peeked::Spine(_) => {
                cur.take_spine_open().map_err(StoreError::from)?;
                depth += 1;
            }
            Peeked::Close => {
                cur.take_spine_close().map_err(StoreError::from)?;
                depth = depth.checked_sub(1).ok_or_else(|| StoreError::Corrupt {
                    offset: 0,
                    reason: "checkpoint state: unbalanced spine close".into(),
                })?;
            }
        }
    }
    if depth != 0 {
        return Err(StoreError::Corrupt {
            offset: data.len() as u64,
            reason: "checkpoint state: unclosed spine".into(),
        });
    }
    Ok(())
}

/// The label sort key a [`KeyQuery`] step addresses — the same encoding
/// [`ETree::from_doc`] attaches to keyed elements:
/// `tag \x00 (path \x01 canon \x02)*`.
fn sort_key_of(step: &KeyQuery) -> String {
    let mut s = step.tag.clone();
    s.push('\u{0}');
    for (path, canon) in &step.parts {
        s.push_str(path);
        s.push('\u{1}');
        s.push_str(canon);
        s.push('\u{2}');
    }
    s
}

/// Scans the current spine's children for `steps[depth]`, descending when
/// found. `inherited` is the enclosing spine's effective timestamp.
fn history_in_spine(
    cur: &mut StreamCursor<'_>,
    steps: &[KeyQuery],
    depth: usize,
    inherited: &TimeSet,
) -> Result<Option<TimeSet>> {
    let want = sort_key_of(&steps[depth]);
    loop {
        match cur.peek()? {
            Peeked::Close => {
                cur.take_spine_close()?;
                return Ok(None);
            }
            Peeked::Eof => return Err(StreamError::new("unterminated spine")),
            Peeked::Small(k) => {
                let matched = k.as_deref() == Some(want.as_str());
                let t = cur.take_small()?;
                if matched {
                    return Ok(history_in_tree(&t, steps, depth, inherited));
                }
            }
            Peeked::Spine(k) => {
                let matched = k.as_deref() == Some(want.as_str());
                let h = cur.take_spine_open()?;
                if matched {
                    let eff = h.time.clone().unwrap_or_else(|| inherited.clone());
                    if depth + 1 == steps.len() {
                        return Ok(Some(eff));
                    }
                    return history_in_spine(cur, steps, depth + 1, &eff);
                }
                skip_spine(cur)?;
            }
        }
    }
}

/// Decodes a label sort key (`tag \x00 (path \x01 canon \x02)*`) back
/// into the [`KeyQuery`] step it addresses.
fn step_of_sort_key(key: &str) -> Option<KeyQuery> {
    let (tag, rest) = key.split_once('\u{0}')?;
    let mut parts = Vec::new();
    let mut rest = rest;
    while !rest.is_empty() {
        let (part, tail) = rest.split_once('\u{2}')?;
        let (path, canon) = part.split_once('\u{1}')?;
        parts.push((path.to_owned(), canon.to_owned()));
        rest = tail;
    }
    Some(KeyQuery {
        tag: tag.to_owned(),
        parts,
    })
}

/// Appends one range hit if the entry is a keyed element whose lifetime
/// intersects the window.
fn push_range_entry(
    out: &mut Vec<RangeEntry>,
    sort_key: Option<&str>,
    is_element: bool,
    time: Option<&TimeSet>,
    inherited: &TimeSet,
    lo: u32,
    hi: u32,
) {
    if !is_element {
        return;
    }
    let Some(step) = sort_key.and_then(step_of_sort_key) else {
        return;
    };
    let eff = time.cloned().unwrap_or_else(|| inherited.clone());
    let clamped = eff.clamp_range(lo, hi);
    if !clamped.is_empty() {
        out.push(RangeEntry {
            step,
            time: clamped,
        });
    }
}

/// Where a key-path descent ended up: still positioned inside a spine
/// (with the spine's effective timestamp), or at an in-memory fragment.
enum LocatedLevel {
    Spine(TimeSet),
    Tree(ETree, TimeSet),
}

/// Descends to the node addressed by `steps`, leaving the cursor *inside*
/// its spine when the node is spine-encoded. Used by range scans, which
/// enumerate the children of the located node.
fn locate_level(
    cur: &mut StreamCursor<'_>,
    steps: &[KeyQuery],
    depth: usize,
    inherited: &TimeSet,
) -> Result<Option<LocatedLevel>> {
    let want = sort_key_of(&steps[depth]);
    loop {
        match cur.peek()? {
            Peeked::Close | Peeked::Eof => return Ok(None),
            Peeked::Small(k) => {
                let matched = k.as_deref() == Some(want.as_str());
                let t = cur.take_small()?;
                if matched {
                    let eff = t.time.clone().unwrap_or_else(|| inherited.clone());
                    return Ok(locate_in_tree(t, steps, depth, &eff));
                }
            }
            Peeked::Spine(k) => {
                let matched = k.as_deref() == Some(want.as_str());
                let h = cur.take_spine_open()?;
                if matched {
                    let eff = h.time.clone().unwrap_or_else(|| inherited.clone());
                    if depth + 1 == steps.len() {
                        return Ok(Some(LocatedLevel::Spine(eff)));
                    }
                    return locate_level(cur, steps, depth + 1, &eff);
                }
                skip_spine(cur)?;
            }
        }
    }
}

/// Finishes a locate inside an in-memory fragment (`t` matches
/// `steps[depth]`; `eff` is its effective timestamp).
fn locate_in_tree(
    t: ETree,
    steps: &[KeyQuery],
    depth: usize,
    eff: &TimeSet,
) -> Option<LocatedLevel> {
    if depth + 1 == steps.len() {
        return Some(LocatedLevel::Tree(t, eff.clone()));
    }
    let want = sort_key_of(&steps[depth + 1]);
    let child = t
        .children
        .into_iter()
        .find(|c| c.sort_key.as_deref() == Some(want.as_str()))?;
    let ceff = child.time.clone().unwrap_or_else(|| eff.clone());
    locate_in_tree(child, steps, depth + 1, &ceff)
}

/// Descends to the node addressed by `steps` and materializes it (plus
/// its effective timestamp). Used by `as_of`, which then filters the
/// subtree to one version.
fn find_in_spine(
    cur: &mut StreamCursor<'_>,
    steps: &[KeyQuery],
    depth: usize,
    inherited: &TimeSet,
) -> Result<Option<(ETree, TimeSet)>> {
    let want = sort_key_of(&steps[depth]);
    loop {
        match cur.peek()? {
            Peeked::Close | Peeked::Eof => return Ok(None),
            Peeked::Small(k) => {
                let matched = k.as_deref() == Some(want.as_str());
                let t = cur.take_small()?;
                if matched {
                    let eff = t.time.clone().unwrap_or_else(|| inherited.clone());
                    return Ok(find_in_tree(t, steps, depth, &eff));
                }
            }
            Peeked::Spine(k) => {
                let matched = k.as_deref() == Some(want.as_str());
                if matched {
                    if depth + 1 == steps.len() {
                        let t = materialize_spine(cur)?;
                        let eff = t.time.clone().unwrap_or_else(|| inherited.clone());
                        return Ok(Some((t, eff)));
                    }
                    let h = cur.take_spine_open()?;
                    let eff = h.time.clone().unwrap_or_else(|| inherited.clone());
                    return find_in_spine(cur, steps, depth + 1, &eff);
                }
                cur.take_spine_open()?;
                skip_spine(cur)?;
            }
        }
    }
}

/// Finishes a find inside an in-memory fragment.
fn find_in_tree(
    t: ETree,
    steps: &[KeyQuery],
    depth: usize,
    eff: &TimeSet,
) -> Option<(ETree, TimeSet)> {
    if depth + 1 == steps.len() {
        return Some((t, eff.clone()));
    }
    let want = sort_key_of(&steps[depth + 1]);
    let child = t
        .children
        .into_iter()
        .find(|c| c.sort_key.as_deref() == Some(want.as_str()))?;
    let ceff = child.time.clone().unwrap_or_else(|| eff.clone());
    find_in_tree(child, steps, depth + 1, &ceff)
}

/// Finishes a history walk inside an in-memory fragment.
fn history_in_tree(
    t: &ETree,
    steps: &[KeyQuery],
    depth: usize,
    inherited: &TimeSet,
) -> Option<TimeSet> {
    let eff = t.time.clone().unwrap_or_else(|| inherited.clone());
    if depth + 1 == steps.len() {
        return Some(eff);
    }
    let want = sort_key_of(&steps[depth + 1]);
    t.children
        .iter()
        .find(|c| c.sort_key.as_deref() == Some(want.as_str()))
        .and_then(|c| history_in_tree(c, steps, depth + 1, &eff))
}

/// Consumes a spine's remaining children and its close marker, discarding
/// everything.
fn skip_spine(cur: &mut StreamCursor<'_>) -> Result<()> {
    loop {
        match cur.peek()? {
            Peeked::Close => {
                cur.take_spine_close()?;
                return Ok(());
            }
            Peeked::Eof => return Err(StreamError::new("unterminated spine")),
            Peeked::Small(_) => {
                cur.take_small()?;
            }
            Peeked::Spine(_) => {
                cur.take_spine_open()?;
                skip_spine(cur)?;
            }
        }
    }
}

/// Streams one visible spine: open tag, visible children, close tag. The
/// open marker has already been consumed into `h`.
fn emit_spine<W: Write + ?Sized>(
    cur: &mut StreamCursor<'_>,
    h: &SpineHeader,
    v: u32,
    out: &mut W,
) -> std::result::Result<(), StoreError> {
    write!(out, "<{}", h.tag).map_err(StoreError::Io)?;
    for (a, val) in &h.attrs {
        write!(out, " {}=\"{}\"", a, escape_attr(val)).map_err(StoreError::Io)?;
    }
    write!(out, ">").map_err(StoreError::Io)?;
    loop {
        match cur.peek()? {
            Peeked::Close => {
                cur.take_spine_close()?;
                write!(out, "</{}>", h.tag).map_err(StoreError::Io)?;
                return Ok(());
            }
            Peeked::Eof => return Err(StreamError::new("unterminated spine").into()),
            Peeked::Small(_) => {
                let t = cur.take_small()?;
                if let Some(ft) = filter_tree(&t, v, true) {
                    write_etree(&ft, out)?;
                }
            }
            Peeked::Spine(_) => {
                let ch = cur.take_spine_open()?;
                let visible = ch.time.as_ref().is_none_or(|t| t.contains(v));
                if visible {
                    emit_spine(cur, &ch, v, out)?;
                } else {
                    skip_spine(cur)?;
                }
            }
        }
    }
}

/// Writes an already-filtered fragment as compact XML (stamps are
/// transparent).
fn write_etree<W: Write + ?Sized>(t: &ETree, out: &mut W) -> std::io::Result<()> {
    match &t.kind {
        EKind::Text(s) => write!(out, "{}", escape_text(s)),
        EKind::Stamp => {
            for c in &t.children {
                write_etree(c, out)?;
            }
            Ok(())
        }
        EKind::Element { tag, attrs } => {
            write!(out, "<{tag}")?;
            for (a, val) in attrs {
                write!(out, " {}=\"{}\"", a, escape_attr(val))?;
            }
            if t.children.is_empty() {
                write!(out, "/>")
            } else {
                write!(out, ">")?;
                for c in &t.children {
                    write_etree(c, out)?;
                }
                write!(out, "</{tag}>")
            }
        }
    }
}

/// Clamps a fragment to the versions ≤ `v`, canonically, appending the
/// surviving nodes to `out`: nodes whose clamped effective timestamp is
/// empty vanish with their subtrees; a stamp whose clamped time equals
/// the parent's whole clamped lifetime is *elided* (its children splice
/// up unwrapped — exactly what a serial replay of `1..=v` would have
/// stored); any other surviving node keeps an explicit timestamp iff its
/// clamp differs from the parent's clamped effective time. Used by
/// [`ExtArchive::store_stats_at`] so pinned statistics are a pure
/// function of the first `v` versions.
fn clamp_tree(t: &ETree, v: u32, parent_eff: &TimeSet, out: &mut Vec<ETree>) {
    let clamped = match &t.time {
        Some(ts) => ts.clamp_range(1, v),
        None => parent_eff.clone(),
    };
    if clamped.is_empty() {
        return;
    }
    if matches!(t.kind, EKind::Stamp) && clamped == *parent_eff {
        for c in &t.children {
            clamp_tree(c, v, parent_eff, out);
        }
        return;
    }
    let mut children = Vec::new();
    for c in &t.children {
        clamp_tree(c, v, &clamped, &mut children);
    }
    let explicit = matches!(t.kind, EKind::Stamp) || (t.time.is_some() && clamped != *parent_eff);
    out.push(ETree {
        kind: t.kind.clone(),
        sort_key: t.sort_key.clone(),
        frontier: t.frontier,
        time: explicit.then_some(clamped),
        children,
    });
}

/// Counts one fragment's nodes into the unified statistics.
fn count_tree(t: &ETree, s: &mut StoreStats) {
    match &t.kind {
        EKind::Element { .. } => s.elements += 1,
        EKind::Text(_) => s.texts += 1,
        EKind::Stamp => s.stamps += 1,
    }
    for c in &t.children {
        count_tree(c, s);
    }
}

/// Reads the next entry (spine or small) as a *version-v* filtered ETree.
/// Returns `None` when the entry is not visible at `v`.
fn read_visible(
    cur: &mut StreamCursor<'_>,
    v: u32,
    _inherited: Option<&TimeSet>,
) -> Result<Option<ETree>> {
    match cur.peek()? {
        Peeked::Small(_) => {
            let t = cur.take_small()?;
            Ok(filter_tree(&t, v, true))
        }
        Peeked::Spine(_) => {
            let h = cur.take_spine_open()?;
            let visible = h.time.as_ref().is_none_or(|t| t.contains(v));
            let mut children = Vec::new();
            loop {
                match cur.peek()? {
                    Peeked::Close => {
                        cur.take_spine_close()?;
                        break;
                    }
                    Peeked::Eof => return Err(StreamError::new("unterminated spine")),
                    _ => {
                        if let Some(c) = read_visible(cur, v, None)? {
                            if visible {
                                children.push(c);
                            }
                        }
                    }
                }
            }
            if !visible {
                return Ok(None);
            }
            Ok(Some(ETree {
                kind: EKind::Element {
                    tag: h.tag,
                    attrs: h.attrs,
                },
                sort_key: h.sort_key,
                frontier: false,
                time: h.time,
                children,
            }))
        }
        Peeked::Close | Peeked::Eof => Err(StreamError::new("expected an entry")),
    }
}

/// Filters an in-memory fragment to the content visible at version `v`.
/// `parent_visible` reflects timestamp inheritance.
fn filter_tree(t: &ETree, v: u32, parent_visible: bool) -> Option<ETree> {
    let visible = match &t.time {
        Some(ts) => ts.contains(v),
        None => parent_visible,
    };
    if !visible {
        return None;
    }
    match &t.kind {
        EKind::Stamp => {
            // transparent: hoist the alternative's children
            let children: Vec<ETree> = t
                .children
                .iter()
                .filter_map(|c| filter_tree(c, v, true))
                .collect();
            Some(ETree {
                kind: EKind::Stamp,
                sort_key: None,
                frontier: false,
                time: None,
                children,
            })
        }
        _ => {
            let mut children = Vec::new();
            for c in &t.children {
                if let Some(fc) = filter_tree(c, v, true) {
                    if matches!(fc.kind, EKind::Stamp) {
                        children.extend(fc.children);
                    } else {
                        children.push(fc);
                    }
                }
            }
            Some(ETree {
                kind: t.kind.clone(),
                sort_key: t.sort_key.clone(),
                frontier: t.frontier,
                time: None,
                children,
            })
        }
    }
}

fn tree_to_doc(t: &ETree) -> Document {
    let EKind::Element { tag, attrs } = &t.kind else {
        panic!("document root must be an element");
    };
    let mut doc = Document::new(tag);
    let root = doc.root();
    for (a, v) in attrs {
        doc.set_attr(root, a, v);
    }
    for c in &t.children {
        add_tree(&mut doc, root, c);
    }
    doc
}

fn add_tree(doc: &mut Document, parent: xarch_xml::NodeId, t: &ETree) {
    match &t.kind {
        EKind::Text(s) => {
            doc.add_text(parent, s);
        }
        EKind::Stamp => {
            for c in &t.children {
                add_tree(doc, parent, c);
            }
        }
        EKind::Element { tag, attrs } => {
            let e = doc.add_element(parent, tag);
            for (a, v) in attrs {
                doc.set_attr(e, a, v);
            }
            for c in &t.children {
                add_tree(doc, e, c);
            }
        }
    }
}

/// The streaming merge: both cursors are positioned at spine-open markers
/// with equal labels.
fn merge_spines(
    ar: &mut StreamCursor<'_>,
    vr: &mut StreamCursor<'_>,
    out: &mut PagedWriter,
    inherited: &TimeSet,
    i: u32,
) -> Result<()> {
    let mut ah = ar.take_spine_open()?;
    let vh = vr.take_spine_open()?;
    debug_assert_eq!(ah.sort_key, vh.sort_key, "spine labels must match");
    let t_cur = match ah.time.as_mut() {
        Some(t) => {
            t.insert(i);
            t.clone()
        }
        None => inherited.clone(),
    };
    let mut header = Vec::new();
    encode_spine_open(&ah, &mut header);
    out.write(&header);

    let mut t_term = t_cur.clone();
    t_term.remove(i);
    let t_new = TimeSet::from_version(i);

    loop {
        let pa = ar.peek()?;
        let pv = vr.peek()?;
        let ka = match &pa {
            Peeked::Small(Some(k)) | Peeked::Spine(Some(k)) => Some(k.clone()),
            Peeked::Close => None,
            _ => return Err(StreamError::new("unexpected entry in archive spine")),
        };
        let kv = match &pv {
            Peeked::Small(Some(k)) | Peeked::Spine(Some(k)) => Some(k.clone()),
            Peeked::Close => None,
            _ => return Err(StreamError::new("unexpected entry in version spine")),
        };
        match (ka, kv) {
            (None, None) => {
                ar.take_spine_close()?;
                vr.take_spine_close()?;
                let mut close = Vec::new();
                encode_spine_close(&mut close);
                out.write(&close);
                return Ok(());
            }
            (Some(_), None) => {
                // archive-only: output with terminated timestamp
                ar.copy_entry(out, Some(&t_term))?;
            }
            (None, Some(_)) => {
                // version-only: output with timestamp {i}
                vr.copy_entry(out, Some(&t_new))?;
            }
            (Some(a_key), Some(v_key)) => match a_key.cmp(&v_key) {
                std::cmp::Ordering::Less => {
                    ar.copy_entry(out, Some(&t_term))?;
                }
                std::cmp::Ordering::Greater => {
                    vr.copy_entry(out, Some(&t_new))?;
                }
                std::cmp::Ordering::Equal => {
                    match (
                        matches!(pa, Peeked::Spine(_)),
                        matches!(pv, Peeked::Spine(_)),
                    ) {
                        (true, true) => merge_spines(ar, vr, out, &t_cur, i)?,
                        (false, false) => {
                            let mut x = ar.take_small()?;
                            let y = vr.take_small()?;
                            merge_tree(&mut x, &y, &t_cur, i);
                            let mut bytes = Vec::new();
                            encode_small(&x, &mut bytes);
                            out.write(&bytes);
                        }
                        // A node crossed the size threshold between
                        // versions: materialize both sides (rare; bounded
                        // by one subtree).
                        (a_spine, _) => {
                            let mut x = if a_spine {
                                materialize_spine(ar)?
                            } else {
                                ar.take_small()?
                            };
                            let y = if a_spine {
                                vr.take_small()?
                            } else {
                                materialize_spine(vr)?
                            };
                            merge_tree(&mut x, &y, &t_cur, i);
                            let mut bytes = Vec::new();
                            encode_small(&x, &mut bytes);
                            out.write(&bytes);
                        }
                    }
                }
            },
        }
    }
}

/// One version stream of a batch: its cursor and absolute version number.
struct BatchCursor<'a> {
    cur: StreamCursor<'a>,
    v: u32,
}

/// What a cursor's front looks like at the current spine level.
enum Front {
    Key(String, bool), // sort key + whether the entry is a spine
    Close,
}

fn peek_front(cur: &StreamCursor<'_>, side: &str) -> Result<Front> {
    match cur.peek()? {
        Peeked::Close => Ok(Front::Close),
        Peeked::Small(Some(k)) => Ok(Front::Key(k, false)),
        Peeked::Spine(Some(k)) => Ok(Front::Key(k, true)),
        Peeked::Eof => Err(StreamError::new(format!("unterminated {side} spine"))),
        _ => Err(StreamError::new(format!(
            "unexpected entry in {side} spine"
        ))),
    }
}

/// The batch streaming merge: a (k+1)-way synchronized walk over one
/// archive spine and the matching spine of every version stream in
/// `active` (all cursors positioned just past their spine-open markers;
/// the walk consumes each spine's children and its close marker — the
/// caller writes the output open/close markers).
///
/// `eff0` is the current spine's **pre-batch** effective timestamp. Per
/// label, the walk reconstructs what `k` serial passes would emit:
///
/// * archive-only entries are copied with `set_time = eff0` — a serial
///   replay terminates them at the batch's first version `v₁` with
///   `t_cur(v₁) − {v₁} = eff0`, and `copy_entry` only stamps entries
///   that were inheriting, exactly like serial termination;
/// * entries matched in versions `P` recurse (spine × spines) or are
///   materialized and replayed serially in version order (any mix of
///   representations), with `t_cur(p) = eff0 ∪ {v ∈ present : v ≤ p}`;
///   a matched spine's header timestamp follows the same closed form as
///   the in-memory batch merge: `pre ∪ P` when explicit, still inherited
///   when `P` covers every present version, `eff0 ∪ P` otherwise;
/// * version-only entries are copied with timestamp `{v}` (one version)
///   or built by insert-then-merge in version order (several versions) —
///   the exact serial sequence.
fn batch_merge_level(
    mut ar: Option<&mut StreamCursor<'_>>,
    vs: &mut [BatchCursor<'_>],
    active: &[usize],
    eff0: &TimeSet,
    out: &mut PagedWriter,
) -> Result<()> {
    // versions present at this level, ascending (cursor order = version order)
    let present: Vec<u32> = active.iter().map(|&i| vs[i].v).collect();
    let t_cur = |upto: u32| {
        let mut t = eff0.clone();
        for &v in &present {
            if v <= upto {
                t.insert(v);
            }
        }
        t
    };
    loop {
        let a_front = match ar.as_deref() {
            Some(c) => Some(peek_front(c, "archive")?),
            None => None,
        };
        let ka = match &a_front {
            Some(Front::Key(k, sp)) => Some((k.clone(), *sp)),
            _ => None,
        };
        let mut fronts: Vec<(usize, String, bool)> = Vec::new();
        for &i in active {
            if let Front::Key(k, sp) = peek_front(&vs[i].cur, "version")? {
                fronts.push((i, k, sp));
            }
        }
        let min = fronts
            .iter()
            .map(|(_, k, _)| k.clone())
            .chain(ka.as_ref().map(|(k, _)| k.clone()))
            .min();
        let Some(min) = min else {
            // every cursor sits at its close marker: this level is done
            if let Some(c) = ar.as_deref_mut() {
                c.take_spine_close()?;
            }
            for &i in active {
                vs[i].cur.take_spine_close()?;
            }
            return Ok(());
        };
        let archive_here = ka.as_ref().filter(|(k, _)| *k == min).map(|&(_, sp)| sp);
        let parts: Vec<(usize, bool)> = fronts
            .iter()
            .filter(|(_, k, _)| *k == min)
            .map(|&(i, _, sp)| (i, sp))
            .collect();
        match archive_here {
            // archive-only: one serial termination at the batch's first
            // version, which resolves to the pre-batch effective time
            Some(_) if parts.is_empty() => {
                ar.as_deref_mut()
                    .expect("archive front")
                    .copy_entry(out, Some(eff0))?;
            }
            // matched, spine on every side: stay streaming
            Some(true) if parts.iter().all(|&(_, sp)| sp) => {
                let a_cur = ar.as_deref_mut().expect("archive front");
                let mut h = a_cur.take_spine_open()?;
                for &(i, _) in &parts {
                    vs[i].cur.take_spine_open()?;
                }
                let part_versions: Vec<u32> = parts.iter().map(|&(i, _)| vs[i].v).collect();
                let pre = h.time.clone();
                let eff0_child = pre.clone().unwrap_or_else(|| eff0.clone());
                h.time = match pre {
                    Some(mut t) => {
                        for &v in &part_versions {
                            t.insert(v);
                        }
                        Some(t)
                    }
                    None if part_versions == present => None,
                    None => {
                        let mut t = eff0.clone();
                        for &v in &part_versions {
                            t.insert(v);
                        }
                        Some(t)
                    }
                };
                let mut hb = Vec::new();
                encode_spine_open(&h, &mut hb);
                out.write(&hb);
                let sub: Vec<usize> = parts.iter().map(|&(i, _)| i).collect();
                batch_merge_level(ar.as_deref_mut(), vs, &sub, &eff0_child, out)?;
                let mut cb = Vec::new();
                encode_spine_close(&mut cb);
                out.write(&cb);
            }
            // matched, mixed representations (a node crossed the spine
            // threshold between versions): materialize once, then replay
            // the serial merge/terminate sequence in version order
            Some(a_spine) => {
                let a_cur = ar.as_deref_mut().expect("archive front");
                let mut x = if a_spine {
                    materialize_spine(a_cur)?
                } else {
                    a_cur.take_small()?
                };
                let mut pi = 0usize;
                for &v in &present {
                    if pi < parts.len() && vs[parts[pi].0].v == v {
                        let (i, sp) = parts[pi];
                        let y = if sp {
                            materialize_spine(&mut vs[i].cur)?
                        } else {
                            vs[i].cur.take_small()?
                        };
                        merge_tree(&mut x, &y, &t_cur(v), v);
                        pi += 1;
                    } else {
                        terminate(&mut x, &t_cur(v), v);
                    }
                }
                let mut bytes = Vec::new();
                encode_small(&x, &mut bytes);
                out.write(&bytes);
            }
            None => match parts.as_slice() {
                [] => unreachable!("min key came from some cursor"),
                // one version only: the serial copy with timestamp {v}
                [(i, _)] => {
                    let t_new = TimeSet::from_version(vs[*i].v);
                    vs[*i].cur.copy_entry(out, Some(&t_new))?;
                }
                // several versions, spine everywhere: the new spine's
                // timestamp is its presence set; children merge beneath it
                // with eff0 = ∅ (it has no pre-batch life)
                _ if parts.iter().all(|&(_, sp)| sp) => {
                    let (i0, _) = parts[0];
                    let mut h = vs[i0].cur.take_spine_open()?;
                    for &(i, _) in &parts[1..] {
                        vs[i].cur.take_spine_open()?;
                    }
                    let mut t = TimeSet::new();
                    for &(i, _) in &parts {
                        t.insert(vs[i].v);
                    }
                    h.time = Some(t);
                    let mut hb = Vec::new();
                    encode_spine_open(&h, &mut hb);
                    out.write(&hb);
                    let sub: Vec<usize> = parts.iter().map(|&(i, _)| i).collect();
                    batch_merge_level(None, vs, &sub, &TimeSet::new(), out)?;
                    let mut cb = Vec::new();
                    encode_spine_close(&mut cb);
                    out.write(&cb);
                }
                // several versions, mixed representations: insert at the
                // first version, merge the rest in — the serial sequence
                _ => {
                    let (i0, sp0) = parts[0];
                    let y0 = if sp0 {
                        materialize_spine(&mut vs[i0].cur)?
                    } else {
                        vs[i0].cur.take_small()?
                    };
                    let mut x = insert_new(&y0, vs[i0].v);
                    for &(i, sp) in &parts[1..] {
                        let y = if sp {
                            materialize_spine(&mut vs[i].cur)?
                        } else {
                            vs[i].cur.take_small()?
                        };
                        merge_tree(&mut x, &y, &t_cur(vs[i].v), vs[i].v);
                    }
                    let mut bytes = Vec::new();
                    encode_small(&x, &mut bytes);
                    out.write(&bytes);
                }
            },
        }
    }
}

/// Loads a whole spine into memory (only for size-threshold crossings).
fn materialize_spine(cur: &mut StreamCursor<'_>) -> Result<ETree> {
    let h = cur.take_spine_open()?;
    let mut children = Vec::new();
    loop {
        match cur.peek()? {
            Peeked::Close => {
                cur.take_spine_close()?;
                break;
            }
            Peeked::Eof => return Err(StreamError::new("unterminated spine")),
            Peeked::Small(_) => children.push(cur.take_small()?),
            Peeked::Spine(_) => children.push(materialize_spine(cur)?),
        }
    }
    Ok(ETree {
        kind: EKind::Element {
            tag: h.tag,
            attrs: h.attrs,
        },
        sort_key: h.sort_key,
        frontier: false,
        time: h.time,
        children,
    })
}
