//! The external-memory archiver facade and the streaming merge of §6.3.
//!
//! "This step is very much like [the sort] except that frontier nodes are
//! handled differently ... Initially x is the root of A′ and y is a virtual
//! root of D′ with the same key as x, and x and y proceed through A′ and D′
//! in document order. If label(x) < label(y), we output x and its entire
//! subtree and attach the current timestamp ... If label(x) > label(y) we
//! output y and its entire subtree and attach timestamp i ... Otherwise we
//! output x [with i added] ... Since this step makes one pass through the
//! archive and version, it incurs O(N/B) I/Os."

use xarch_core::TimeSet;
use xarch_keys::{annotate, KeySpec};
use xarch_xml::Document;

use crate::etree::{insert_new, merge_tree, terminate, EKind, ETree};
use crate::events::{
    encode_small, encode_spine_close, encode_spine_open, Peeked, SpineHeader, StreamCursor,
    StreamError,
};
use crate::io::{IoConfig, IoStats, PagedWriter};
use crate::sort::write_sorted_version;

type Result<T> = std::result::Result<T, StreamError>;

/// The external-memory archive: a sorted event stream plus I/O accounting.
#[derive(Debug)]
pub struct ExtArchive {
    spec: KeySpec,
    cfg: IoConfig,
    data: Vec<u8>,
    latest: u32,
    stats: IoStats,
}

impl ExtArchive {
    /// Creates an empty external archive.
    pub fn new(spec: KeySpec, cfg: IoConfig) -> Self {
        // the empty archive: a root spine with an empty timestamp
        let mut data = Vec::new();
        encode_spine_open(
            &SpineHeader {
                tag: "root".into(),
                attrs: Vec::new(),
                sort_key: Some("root\u{0}".into()),
                time: Some(TimeSet::new()),
            },
            &mut data,
        );
        encode_spine_close(&mut data);
        Self {
            spec,
            cfg,
            data,
            latest: 0,
            stats: IoStats::default(),
        }
    }

    /// Number of archived versions.
    pub fn latest(&self) -> u32 {
        self.latest
    }

    /// Size of the archive stream in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Cumulative I/O statistics across all operations.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The raw archive stream (diagnostics).
    pub fn raw(&self) -> &[u8] {
        &self.data
    }

    /// Archives the next version: annotate → external sort → one merge pass.
    pub fn add_version(&mut self, doc: &Document) -> Result<u32> {
        let ann = annotate(doc, &self.spec).map_err(|e| StreamError(e.to_string()))?;
        let (sorted, sort_stats) = write_sorted_version(doc, &ann, &self.cfg)?;
        self.stats.add(sort_stats);
        let i = self.latest + 1;

        let mut ar = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let mut vr = StreamCursor::new(&sorted, self.cfg.page_bytes);
        let mut out = PagedWriter::new(self.cfg.page_bytes);
        merge_spines(&mut ar, &mut vr, &mut out, &TimeSet::new(), i)?;
        self.stats.page_reads += ar.pages_read() + vr.pages_read();
        let (bytes, writes) = out.finish();
        self.stats.page_writes += writes;
        self.data = bytes;
        self.latest = i;
        Ok(i)
    }

    /// Retrieves version `v` with one streaming pass.
    pub fn retrieve(&mut self, v: u32) -> Result<Option<Document>> {
        if v == 0 || v > self.latest {
            return Ok(None);
        }
        let mut cur = StreamCursor::new(&self.data, self.cfg.page_bytes);
        let root = read_visible(&mut cur, v, None)?;
        self.stats.page_reads += cur.pages_read();
        // root is the synthetic "root"; its children hold the document root
        let Some(root) = root else {
            return Ok(None);
        };
        let doc_root = root.children.into_iter().find(|c| {
            matches!(c.kind, EKind::Element { .. })
        });
        let Some(tree) = doc_root else {
            return Ok(None); // empty version
        };
        Ok(Some(tree_to_doc(&tree)))
    }
}

/// Reads the next entry (spine or small) as a *version-v* filtered ETree.
/// Returns `None` when the entry is not visible at `v`.
fn read_visible(cur: &mut StreamCursor<'_>, v: u32, _inherited: Option<&TimeSet>) -> Result<Option<ETree>> {
    match cur.peek()? {
        Peeked::Small(_) => {
            let t = cur.take_small()?;
            Ok(filter_tree(&t, v, true))
        }
        Peeked::Spine(_) => {
            let h = cur.take_spine_open()?;
            let visible = h.time.as_ref().map_or(true, |t| t.contains(v));
            let mut children = Vec::new();
            loop {
                match cur.peek()? {
                    Peeked::Close => {
                        cur.take_spine_close()?;
                        break;
                    }
                    Peeked::Eof => return Err(StreamError("unterminated spine".into())),
                    _ => {
                        if let Some(c) = read_visible(cur, v, None)? {
                            if visible {
                                children.push(c);
                            }
                        }
                    }
                }
            }
            if !visible {
                return Ok(None);
            }
            Ok(Some(ETree {
                kind: EKind::Element {
                    tag: h.tag,
                    attrs: h.attrs,
                },
                sort_key: h.sort_key,
                frontier: false,
                time: h.time,
                children,
            }))
        }
        Peeked::Close | Peeked::Eof => Err(StreamError("expected an entry".into())),
    }
}

/// Filters an in-memory fragment to the content visible at version `v`.
/// `parent_visible` reflects timestamp inheritance.
fn filter_tree(t: &ETree, v: u32, parent_visible: bool) -> Option<ETree> {
    let visible = match &t.time {
        Some(ts) => ts.contains(v),
        None => parent_visible,
    };
    if !visible {
        return None;
    }
    match &t.kind {
        EKind::Stamp => {
            // transparent: hoist the alternative's children
            let children: Vec<ETree> = t
                .children
                .iter()
                .filter_map(|c| filter_tree(c, v, true))
                .collect();
            Some(ETree {
                kind: EKind::Stamp,
                sort_key: None,
                frontier: false,
                time: None,
                children,
            })
        }
        _ => {
            let mut children = Vec::new();
            for c in &t.children {
                if let Some(fc) = filter_tree(c, v, true) {
                    if matches!(fc.kind, EKind::Stamp) {
                        children.extend(fc.children);
                    } else {
                        children.push(fc);
                    }
                }
            }
            Some(ETree {
                kind: t.kind.clone(),
                sort_key: t.sort_key.clone(),
                frontier: t.frontier,
                time: None,
                children,
            })
        }
    }
}

fn tree_to_doc(t: &ETree) -> Document {
    let EKind::Element { tag, attrs } = &t.kind else {
        panic!("document root must be an element");
    };
    let mut doc = Document::new(tag);
    let root = doc.root();
    for (a, v) in attrs {
        doc.set_attr(root, a, v);
    }
    for c in &t.children {
        add_tree(&mut doc, root, c);
    }
    doc
}

fn add_tree(doc: &mut Document, parent: xarch_xml::NodeId, t: &ETree) {
    match &t.kind {
        EKind::Text(s) => {
            doc.add_text(parent, s);
        }
        EKind::Stamp => {
            for c in &t.children {
                add_tree(doc, parent, c);
            }
        }
        EKind::Element { tag, attrs } => {
            let e = doc.add_element(parent, tag);
            for (a, v) in attrs {
                doc.set_attr(e, a, v);
            }
            for c in &t.children {
                add_tree(doc, e, c);
            }
        }
    }
}

/// The streaming merge: both cursors are positioned at spine-open markers
/// with equal labels.
fn merge_spines(
    ar: &mut StreamCursor<'_>,
    vr: &mut StreamCursor<'_>,
    out: &mut PagedWriter,
    inherited: &TimeSet,
    i: u32,
) -> Result<()> {
    let mut ah = ar.take_spine_open()?;
    let vh = vr.take_spine_open()?;
    debug_assert_eq!(ah.sort_key, vh.sort_key, "spine labels must match");
    let t_cur = match ah.time.as_mut() {
        Some(t) => {
            t.insert(i);
            t.clone()
        }
        None => inherited.clone(),
    };
    let mut header = Vec::new();
    encode_spine_open(&ah, &mut header);
    out.write(&header);

    let mut t_term = t_cur.clone();
    t_term.remove(i);
    let t_new = TimeSet::from_version(i);

    loop {
        let pa = ar.peek()?;
        let pv = vr.peek()?;
        let ka = match &pa {
            Peeked::Small(Some(k)) | Peeked::Spine(Some(k)) => Some(k.clone()),
            Peeked::Close => None,
            _ => return Err(StreamError("unexpected entry in archive spine".into())),
        };
        let kv = match &pv {
            Peeked::Small(Some(k)) | Peeked::Spine(Some(k)) => Some(k.clone()),
            Peeked::Close => None,
            _ => return Err(StreamError("unexpected entry in version spine".into())),
        };
        match (ka, kv) {
            (None, None) => {
                ar.take_spine_close()?;
                vr.take_spine_close()?;
                let mut close = Vec::new();
                encode_spine_close(&mut close);
                out.write(&close);
                return Ok(());
            }
            (Some(_), None) => {
                // archive-only: output with terminated timestamp
                ar.copy_entry(out, Some(&t_term))?;
            }
            (None, Some(_)) => {
                // version-only: output with timestamp {i}
                vr.copy_entry(out, Some(&t_new))?;
            }
            (Some(a_key), Some(v_key)) => match a_key.cmp(&v_key) {
                std::cmp::Ordering::Less => {
                    ar.copy_entry(out, Some(&t_term))?;
                }
                std::cmp::Ordering::Greater => {
                    vr.copy_entry(out, Some(&t_new))?;
                }
                std::cmp::Ordering::Equal => {
                    match (matches!(pa, Peeked::Spine(_)), matches!(pv, Peeked::Spine(_))) {
                        (true, true) => merge_spines(ar, vr, out, &t_cur, i)?,
                        (false, false) => {
                            let mut x = ar.take_small()?;
                            let y = vr.take_small()?;
                            merge_tree(&mut x, &y, &t_cur, i);
                            let mut bytes = Vec::new();
                            encode_small(&x, &mut bytes);
                            out.write(&bytes);
                        }
                        // A node crossed the size threshold between
                        // versions: materialize both sides (rare; bounded
                        // by one subtree).
                        (a_spine, _) => {
                            let mut x = if a_spine {
                                materialize_spine(ar)?
                            } else {
                                ar.take_small()?
                            };
                            let y = if a_spine {
                                vr.take_small()?
                            } else {
                                materialize_spine(vr)?
                            };
                            merge_tree(&mut x, &y, &t_cur, i);
                            let mut bytes = Vec::new();
                            encode_small(&x, &mut bytes);
                            out.write(&bytes);
                        }
                    }
                }
            },
        }
    }
}

/// Loads a whole spine into memory (only for size-threshold crossings).
fn materialize_spine(cur: &mut StreamCursor<'_>) -> Result<ETree> {
    let h = cur.take_spine_open()?;
    let mut children = Vec::new();
    loop {
        match cur.peek()? {
            Peeked::Close => {
                cur.take_spine_close()?;
                break;
            }
            Peeked::Eof => return Err(StreamError("unterminated spine".into())),
            Peeked::Small(_) => children.push(cur.take_small()?),
            Peeked::Spine(_) => children.push(materialize_spine(cur)?),
        }
    }
    Ok(ETree {
        kind: EKind::Element {
            tag: h.tag,
            attrs: h.attrs,
        },
        sort_key: h.sort_key,
        frontier: false,
        time: h.time,
        children,
    })
}

/// Archive-side termination used by spine copies.
#[allow(dead_code)]
fn terminate_tree(x: &mut ETree, t_cur: &TimeSet, i: u32) {
    terminate(x, t_cur, i);
}

/// Version-side insertion used by spine copies.
#[allow(dead_code)]
fn insert_tree(y: &ETree, i: u32) -> ETree {
    insert_new(y, i)
}
