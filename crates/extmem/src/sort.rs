//! External sorting of sibling groups (§6.2).
//!
//! "We read the internal representation of the document in document order
//! until we reach the memory limit M ... sort the partial tree in memory
//! and write it out to disk (a sorted run) ... To obtain a sorted tree, we
//! repeatedly merge the sorted runs" with fan-in `(M/B) − 1`.
//!
//! [`write_sorted_version`] turns an annotated document into a sorted
//! event stream under a memory budget: subtrees that fit in `M` are loaded,
//! sorted in memory and emitted as *small* entries; larger nodes become
//! *spines* whose children are run-sorted and k-way merged.

use xarch_keys::{Annotations, NodeClass};
use xarch_xml::{Document, NodeId, NodeKind};

use crate::etree::ETree;
use crate::events::{
    encode_small, encode_spine_close, encode_spine_open, Peeked, SpineHeader, StreamCursor,
    StreamError,
};
use crate::io::{IoConfig, IoStats, PagedWriter};

type Result<T> = std::result::Result<T, StreamError>;

/// Serializes `doc` as a sorted event stream wrapped in a synthetic `root`
/// spine (mirroring the in-memory archive's root), charging I/O for run
/// writes/reads and merge passes.
pub fn write_sorted_version(
    doc: &Document,
    ann: &Annotations,
    cfg: &IoConfig,
) -> Result<(Vec<u8>, IoStats)> {
    let mut stats = IoStats::default();
    // Precompute serialized-size estimates bottom-up.
    let sizes = estimate_sizes(doc);

    let mut out = PagedWriter::new(cfg.page_bytes);
    let root_header = SpineHeader {
        tag: "root".into(),
        attrs: Vec::new(),
        sort_key: Some("root\u{0}".into()),
        time: None,
    };
    let mut header = Vec::new();
    encode_spine_open(&root_header, &mut header);
    out.write(&header);
    emit_sorted(doc, ann, doc.root(), &sizes, cfg, &mut out, &mut stats)?;
    let mut close = Vec::new();
    encode_spine_close(&mut close);
    out.write(&close);
    let (bytes, writes) = out.finish();
    stats.page_writes += writes;
    Ok((bytes, stats))
}

/// Rough serialized size of every subtree (arena-indexed).
pub fn estimate_sizes(doc: &Document) -> Vec<usize> {
    let mut sizes = vec![0usize; doc.len()];
    fn rec(doc: &Document, id: NodeId, sizes: &mut Vec<usize>) -> usize {
        let mut s = 8;
        match &doc.node(id).kind {
            NodeKind::Text(t) => s += t.len(),
            NodeKind::Element(sym) => {
                s += doc.syms().resolve(*sym).len();
                for (a, v) in doc.attrs(id) {
                    s += doc.syms().resolve(*a).len() + v.len() + 4;
                }
                for &c in doc.children(id) {
                    s += rec(doc, c, sizes);
                }
            }
        }
        sizes[id.index()] = s;
        s
    }
    rec(doc, doc.root(), &mut sizes);
    sizes
}

/// Emits one (possibly big) subtree in sorted order.
fn emit_sorted(
    doc: &Document,
    ann: &Annotations,
    id: NodeId,
    sizes: &[usize],
    cfg: &IoConfig,
    out: &mut PagedWriter,
    stats: &mut IoStats,
) -> Result<()> {
    if sizes[id.index()] <= cfg.mem_bytes {
        // fits in memory: load, sort, emit as a small entry
        let mut tree = ETree::from_doc(doc, ann, id);
        tree.sort();
        let mut bytes = Vec::new();
        encode_small(&tree, &mut bytes);
        out.write(&bytes);
        return Ok(());
    }
    // spine node: must be a keyed, non-frontier element
    let NodeKind::Element(sym) = &doc.node(id).kind else {
        return Err(StreamError::new("oversized text node"));
    };
    match ann.class(id) {
        NodeClass::Keyed => {}
        c => {
            return Err(StreamError::new(format!(
                "node <{}> exceeds the memory budget but is {c:?}; the external \
                 archiver streams only keyed non-frontier nodes",
                doc.syms().resolve(*sym)
            )))
        }
    }
    let key = ann.key(id).expect("keyed");
    let mut sort_key = doc.syms().resolve(*sym).to_owned();
    sort_key.push('\u{0}');
    for p in &key.parts {
        sort_key.push_str(&p.path);
        sort_key.push('\u{1}');
        sort_key.push_str(&p.canon);
        sort_key.push('\u{2}');
    }
    let header = SpineHeader {
        tag: doc.syms().resolve(*sym).to_owned(),
        attrs: doc
            .attrs(id)
            .iter()
            .map(|(a, v)| (doc.syms().resolve(*a).to_owned(), v.clone()))
            .collect(),
        sort_key: Some(sort_key),
        time: None,
    };
    let mut hbytes = Vec::new();
    encode_spine_open(&header, &mut hbytes);
    out.write(&hbytes);

    // Children: build sorted runs of small entries; big children become
    // single-entry runs (recursively sorted spines).
    let mut runs: Vec<Vec<u8>> = Vec::new();
    let mut run: Vec<(String, Vec<u8>)> = Vec::new();
    let mut run_bytes = 0usize;
    let flush = |run: &mut Vec<(String, Vec<u8>)>,
                 run_bytes: &mut usize,
                 runs: &mut Vec<Vec<u8>>,
                 stats: &mut IoStats| {
        if run.is_empty() {
            return;
        }
        run.sort_by(|a, b| a.0.cmp(&b.0));
        let mut w = PagedWriter::new(cfg.page_bytes);
        for (_, bytes) in run.drain(..) {
            w.write(&bytes);
        }
        let (bytes, writes) = w.finish();
        stats.page_writes += writes;
        runs.push(bytes);
        *run_bytes = 0;
    };
    for &c in doc.children(id) {
        if matches!(doc.node(c).kind, NodeKind::Text(_)) || ann.key(c).is_none() {
            return Err(StreamError::new(
                "unkeyed child of a streamed (spine) node — cover it with a key",
            ));
        }
        if sizes[c.index()] <= cfg.mem_bytes {
            let mut tree = ETree::from_doc(doc, ann, c);
            tree.sort();
            let skey = tree.sort_key.clone().expect("keyed child");
            let mut bytes = Vec::new();
            encode_small(&tree, &mut bytes);
            run_bytes += bytes.len();
            run.push((skey, bytes));
            if run_bytes > cfg.mem_bytes {
                flush(&mut run, &mut run_bytes, &mut runs, stats);
            }
        } else {
            // big child: recurse into its own buffer; it forms a one-entry run
            let mut w = PagedWriter::new(cfg.page_bytes);
            emit_sorted(doc, ann, c, sizes, cfg, &mut w, stats)?;
            let (bytes, writes) = w.finish();
            stats.page_writes += writes;
            runs.push(bytes);
        }
    }
    flush(&mut run, &mut run_bytes, &mut runs, stats);

    // k-way merge passes with fan-in (M/B − 1).
    let merged = kway_merge(runs, cfg, stats)?;
    out.write(&merged);
    let mut close = Vec::new();
    encode_spine_close(&mut close);
    out.write(&close);
    Ok(())
}

/// Repeatedly merges sorted runs `fan_in` at a time until one remains.
pub fn kway_merge(mut runs: Vec<Vec<u8>>, cfg: &IoConfig, stats: &mut IoStats) -> Result<Vec<u8>> {
    if runs.is_empty() {
        return Ok(Vec::new());
    }
    let fan_in = cfg.fan_in();
    while runs.len() > 1 {
        let mut next: Vec<Vec<u8>> = Vec::with_capacity(runs.len().div_ceil(fan_in));
        for group in runs.chunks(fan_in) {
            next.push(merge_group(group, cfg, stats)?);
        }
        runs = next;
    }
    Ok(runs.pop().unwrap_or_default())
}

/// Merges one group of sorted runs into a single sorted run.
fn merge_group(group: &[Vec<u8>], cfg: &IoConfig, stats: &mut IoStats) -> Result<Vec<u8>> {
    let mut cursors: Vec<StreamCursor<'_>> = group
        .iter()
        .map(|r| StreamCursor::new(r, cfg.page_bytes))
        .collect();
    let mut out = PagedWriter::new(cfg.page_bytes);
    loop {
        // pick the cursor with the smallest next sort key
        let mut best: Option<(usize, String)> = None;
        for (i, cur) in cursors.iter().enumerate() {
            let key = match cur.peek()? {
                Peeked::Eof => continue,
                Peeked::Small(Some(k)) | Peeked::Spine(Some(k)) => k,
                Peeked::Small(None) => return Err(StreamError::new("unkeyed entry in sorted run")),
                Peeked::Spine(None) => return Err(StreamError::new("unkeyed spine in sorted run")),
                Peeked::Close => return Err(StreamError::new("stray close in run")),
            };
            match &best {
                Some((_, bk)) if *bk <= key => {}
                _ => best = Some((i, key)),
            }
        }
        let Some((i, _)) = best else {
            break;
        };
        cursors[i].copy_entry(&mut out, None)?;
    }
    for c in &cursors {
        stats.page_reads += c.pages_read();
    }
    let (bytes, writes) = out.finish();
    stats.page_writes += writes;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::decode_small;
    use xarch_keys::{annotate, KeySpec};
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    fn doc_with_n(n: usize) -> xarch_xml::Document {
        let mut s = String::from("<db>");
        for i in (0..n).rev() {
            s.push_str(&format!("<rec><id>{i:05}</id><val>value-{i}</val></rec>"));
        }
        s.push_str("</db>");
        parse(&s).unwrap()
    }

    fn sorted_keys(stream: &[u8]) -> Vec<String> {
        let mut cur = StreamCursor::new(stream, 4096);
        let _ = cur.take_spine_open().unwrap(); // root
        let mut keys = Vec::new();
        loop {
            match cur.peek().unwrap() {
                Peeked::Small(Some(_)) => {
                    let t = cur.take_small().unwrap();
                    // db subtree is small: child recs sorted inside
                    for c in &t.children {
                        keys.push(c.sort_key.clone().unwrap());
                    }
                }
                Peeked::Spine(Some(_)) => {
                    let _ = cur.take_spine_open().unwrap();
                }
                Peeked::Small(None) | Peeked::Spine(None) => panic!("unkeyed"),
                Peeked::Close => {
                    cur.take_spine_close().unwrap();
                    if matches!(cur.peek().unwrap(), Peeked::Eof) {
                        break;
                    }
                }
                Peeked::Eof => break,
            }
            if let Peeked::Small(Some(_)) = cur.peek().unwrap() {
                // children of a spine: collect their keys
                while let Peeked::Small(Some(_)) = cur.peek().unwrap() {
                    let t = cur.take_small().unwrap();
                    keys.push(t.sort_key.clone().unwrap());
                }
            }
        }
        keys
    }

    #[test]
    fn small_document_is_one_entry() {
        let doc = doc_with_n(5);
        let ann = annotate(&doc, &spec()).unwrap();
        let cfg = IoConfig::default();
        let (stream, stats) = write_sorted_version(&doc, &ann, &cfg).unwrap();
        assert!(stats.page_writes >= 1);
        let keys = sorted_keys(&stream);
        assert_eq!(keys.len(), 5);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{keys:?}");
    }

    #[test]
    fn big_document_streams_with_runs() {
        let doc = doc_with_n(300);
        let ann = annotate(&doc, &spec()).unwrap();
        // tiny memory budget forces the db node to become a spine with
        // several runs
        let cfg = IoConfig {
            mem_bytes: 1024,
            page_bytes: 128,
        };
        let (stream, stats) = write_sorted_version(&doc, &ann, &cfg).unwrap();
        // run generation + merge must have done real I/O
        assert!(stats.page_reads > 0, "{stats:?}");
        assert!(stats.page_writes > 0);
        let keys = sorted_keys(&stream);
        assert_eq!(keys.len(), 300);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn more_memory_means_fewer_ios() {
        let doc = doc_with_n(600);
        let ann = annotate(&doc, &spec()).unwrap();
        let small = IoConfig {
            mem_bytes: 512,
            page_bytes: 128,
        };
        let big = IoConfig {
            mem_bytes: 64 << 10,
            page_bytes: 128,
        };
        let (_, s1) = write_sorted_version(&doc, &ann, &small).unwrap();
        let (_, s2) = write_sorted_version(&doc, &ann, &big).unwrap();
        assert!(
            s2.total() < s1.total(),
            "M=64K {s2:?} should beat M=512 {s1:?}"
        );
    }

    #[test]
    fn kway_merge_handles_many_runs() {
        // build runs of single entries with descending keys across runs
        let cfg = IoConfig {
            mem_bytes: 512,
            page_bytes: 64,
        };
        let mut runs = Vec::new();
        for i in (0..20).rev() {
            let tree = ETree {
                kind: crate::etree::EKind::Element {
                    tag: "rec".into(),
                    attrs: Vec::new(),
                },
                sort_key: Some(format!("rec\u{0}{i:03}")),
                frontier: true,
                time: None,
                children: Vec::new(),
            };
            let mut bytes = Vec::new();
            encode_small(&tree, &mut bytes);
            runs.push(bytes);
        }
        let mut stats = IoStats::default();
        let merged = kway_merge(runs, &cfg, &mut stats).unwrap();
        let mut pos = 0;
        let mut keys = Vec::new();
        while pos < merged.len() {
            let t = decode_small(&merged, &mut pos).unwrap();
            keys.push(t.sort_key.unwrap());
        }
        assert_eq!(keys.len(), 20);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }
}
