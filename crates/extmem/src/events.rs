//! Serialized event streams: the external archiver's on-disk format.
//!
//! A stream is a sequence of *entries*:
//!
//! * `0x01` — a **small node** (a whole subtree that fits in memory),
//!   length-prefixed so it can be skipped or copied without parsing;
//! * `0x02` — a text node; `0x03` — a stamp alternative (both only occur
//!   inside small nodes);
//! * `0x04`/`0x05` — **spine open/close**: a node whose subtree exceeds the
//!   memory budget and is therefore streamed child by child.
//!
//! Every keyed entry carries its label sort key up front, so sorting and
//! merging read a handful of bytes per comparison — the role the paper's
//! key files play in §6.1. Tag names are stored inline (generated data has
//! tiny vocabularies; an id dictionary would change constants, not
//! asymptotics).

use xarch_core::TimeSet;

use crate::etree::{EKind, ETree};
use crate::io::{PagedReader, PagedWriter};

pub const KIND_SMALL: u8 = 0x01;
pub const KIND_TEXT: u8 = 0x02;
pub const KIND_STAMP: u8 = 0x03;
pub const KIND_SPINE_OPEN: u8 = 0x04;
pub const KIND_SPINE_CLOSE: u8 = 0x05;

const FLAG_TIME: u8 = 1;
const FLAG_KEY: u8 = 2;
const FLAG_FRONTIER: u8 = 4;

/// Errors raised while decoding a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    /// What failed to decode.
    pub reason: String,
    /// Byte offset into the stream where decoding failed, when known.
    pub offset: Option<u64>,
}

impl StreamError {
    /// A decoding failure with no specific position.
    pub fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
            offset: None,
        }
    }

    /// A decoding failure at byte `offset` of the stream.
    pub fn at(offset: usize, reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
            offset: Some(offset as u64),
        }
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(o) => write!(f, "event stream error at byte {o}: {}", self.reason),
            None => write!(f, "event stream error: {}", self.reason),
        }
    }
}

impl std::error::Error for StreamError {}

/// Stream failures surface through the unified store error so
/// `Box<dyn VersionStore>` callers handle one error type. Positioned
/// errors are genuine decode failures and map to [`StoreError::Corrupt`]
/// with their byte offset; position-less ones are input/validation
/// rejections (unkeyed root, oversized node) and stay
/// [`StoreError::Backend`] — telling a caller whose *document* was bad
/// that their *archive* is corrupt would be worse than useless.
///
/// [`StoreError::Corrupt`]: xarch_core::StoreError::Corrupt
/// [`StoreError::Backend`]: xarch_core::StoreError::Backend
impl From<StreamError> for xarch_core::StoreError {
    fn from(e: StreamError) -> Self {
        match e.offset {
            Some(offset) => xarch_core::StoreError::Corrupt {
                offset,
                reason: e.reason,
            },
            None => xarch_core::StoreError::Backend(e.reason),
        }
    }
}

type Result<T> = std::result::Result<T, StreamError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(StreamError::new(msg))
}

fn err_at<T>(offset: usize, msg: impl Into<String>) -> Result<T> {
    Err(StreamError::at(offset, msg))
}

// ---------- primitive encoding ----------
//
// The byte-level primitives (LEB128 varints, length-prefixed strings)
// are shared workspace-wide: `xarch_core::wire` owns them so the event
// streams, the checkpoint state codec, and the durable block payloads
// all speak one grammar (`docs/FORMAT.md` §Primitives). These wrappers
// keep this module's positioned `StreamError` vocabulary.

pub fn put_varint(out: &mut Vec<u8>, v: u64) {
    xarch_core::wire::put_varint(out, v);
}

pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    xarch_core::wire::get_varint(buf, pos).map_err(|e| StreamError::at(e.offset, e.reason))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    xarch_core::wire::put_str(out, s);
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    xarch_core::wire::get_str(buf, pos).map_err(|e| StreamError::at(e.offset, e.reason))
}

// ---------- small-node encoding ----------

/// Encodes a whole fragment as a *small* entry.
pub fn encode_small(tree: &ETree, out: &mut Vec<u8>) {
    match &tree.kind {
        EKind::Text(t) => {
            out.push(KIND_TEXT);
            put_str(out, t);
        }
        EKind::Stamp => {
            out.push(KIND_STAMP);
            let mut body = Vec::new();
            // xarch-allow: panic-freedom -- encoder input invariant: the builder always stamps Stamp nodes; this is not a decode path
            let time = tree.time.as_ref().expect("stamp time");
            put_str(&mut body, &time.to_string());
            for c in &tree.children {
                encode_small(c, &mut body);
            }
            put_varint(out, body.len() as u64);
            out.extend_from_slice(&body);
        }
        EKind::Element { tag, attrs } => {
            out.push(KIND_SMALL);
            let mut flags = 0u8;
            if tree.time.is_some() {
                flags |= FLAG_TIME;
            }
            if tree.sort_key.is_some() {
                flags |= FLAG_KEY;
            }
            if tree.frontier {
                flags |= FLAG_FRONTIER;
            }
            out.push(flags);
            let mut body = Vec::new();
            if let Some(k) = &tree.sort_key {
                put_str(&mut body, k);
            }
            put_str(&mut body, tag);
            put_varint(&mut body, attrs.len() as u64);
            for (a, v) in attrs {
                put_str(&mut body, a);
                put_str(&mut body, v);
            }
            if let Some(t) = &tree.time {
                put_str(&mut body, &t.to_string());
            }
            for c in &tree.children {
                encode_small(c, &mut body);
            }
            put_varint(out, body.len() as u64);
            out.extend_from_slice(&body);
        }
    }
}

/// Decodes one small entry from a raw buffer, advancing `pos`.
pub fn decode_small(buf: &[u8], pos: &mut usize) -> Result<ETree> {
    let Some(&kind) = buf.get(*pos) else {
        return err_at(*pos, "truncated entry");
    };
    *pos += 1;
    match kind {
        KIND_TEXT => {
            let t = get_str(buf, pos)?;
            Ok(ETree {
                kind: EKind::Text(t),
                sort_key: None,
                frontier: false,
                time: None,
                children: Vec::new(),
            })
        }
        KIND_STAMP => {
            let body_len = get_varint(buf, pos)? as usize;
            let Some(end) = pos.checked_add(body_len).filter(|&e| e <= buf.len()) else {
                return err_at(*pos, "truncated stamp body");
            };
            let time =
                TimeSet::parse(&get_str(buf, pos)?).map_err(|e| StreamError::new(e.to_string()))?;
            let mut children = Vec::new();
            while *pos < end {
                children.push(decode_small(buf, pos)?);
            }
            Ok(ETree {
                kind: EKind::Stamp,
                sort_key: None,
                frontier: false,
                time: Some(time),
                children,
            })
        }
        KIND_SMALL => {
            let Some(&flags) = buf.get(*pos) else {
                return err_at(*pos, "truncated flags");
            };
            *pos += 1;
            let body_len = get_varint(buf, pos)? as usize;
            let Some(end) = pos.checked_add(body_len).filter(|&e| e <= buf.len()) else {
                return err_at(*pos, "truncated node body");
            };
            let sort_key = if flags & FLAG_KEY != 0 {
                Some(get_str(buf, pos)?)
            } else {
                None
            };
            let tag = get_str(buf, pos)?;
            let n_attrs = get_varint(buf, pos)? as usize;
            let mut attrs = Vec::with_capacity(n_attrs);
            for _ in 0..n_attrs {
                let a = get_str(buf, pos)?;
                let v = get_str(buf, pos)?;
                attrs.push((a, v));
            }
            let time = if flags & FLAG_TIME != 0 {
                Some(
                    TimeSet::parse(&get_str(buf, pos)?)
                        .map_err(|e| StreamError::new(e.to_string()))?,
                )
            } else {
                None
            };
            let mut children = Vec::new();
            while *pos < end {
                children.push(decode_small(buf, pos)?);
            }
            Ok(ETree {
                kind: EKind::Element { tag, attrs },
                sort_key,
                frontier: flags & FLAG_FRONTIER != 0,
                time,
                children,
            })
        }
        k => err_at(
            *pos - 1,
            format!("unexpected entry kind {k} in small context"),
        ),
    }
}

// ---------- spine encoding ----------

/// The header of a spine (streamed) node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpineHeader {
    pub tag: String,
    pub attrs: Vec<(String, String)>,
    pub sort_key: Option<String>,
    pub time: Option<TimeSet>,
}

/// Encodes a spine-open marker.
pub fn encode_spine_open(h: &SpineHeader, out: &mut Vec<u8>) {
    out.push(KIND_SPINE_OPEN);
    let mut flags = 0u8;
    if h.time.is_some() {
        flags |= FLAG_TIME;
    }
    if h.sort_key.is_some() {
        flags |= FLAG_KEY;
    }
    out.push(flags);
    if let Some(k) = &h.sort_key {
        put_str(out, k);
    }
    put_str(out, &h.tag);
    put_varint(out, h.attrs.len() as u64);
    for (a, v) in &h.attrs {
        put_str(out, a);
        put_str(out, v);
    }
    if let Some(t) = &h.time {
        put_str(out, &t.to_string());
    }
}

/// Encodes a spine-close marker.
pub fn encode_spine_close(out: &mut Vec<u8>) {
    out.push(KIND_SPINE_CLOSE);
}

fn decode_spine_header(buf: &[u8], pos: &mut usize) -> Result<SpineHeader> {
    let Some(&flags) = buf.get(*pos) else {
        return err_at(*pos, "truncated spine flags");
    };
    *pos += 1;
    let sort_key = if flags & FLAG_KEY != 0 {
        Some(get_str(buf, pos)?)
    } else {
        None
    };
    let tag = get_str(buf, pos)?;
    let n_attrs = get_varint(buf, pos)? as usize;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let a = get_str(buf, pos)?;
        let v = get_str(buf, pos)?;
        attrs.push((a, v));
    }
    let time = if flags & FLAG_TIME != 0 {
        Some(TimeSet::parse(&get_str(buf, pos)?).map_err(|e| StreamError::new(e.to_string()))?)
    } else {
        None
    };
    Ok(SpineHeader {
        tag,
        attrs,
        sort_key,
        time,
    })
}

// ---------- stream cursor ----------

/// What the cursor sees next at the top level of a spine's child list.
#[derive(Debug)]
pub enum Peeked {
    /// A small (in-memory) entry with its sort key (None = unkeyed).
    Small(Option<String>),
    /// A nested spine with its sort key.
    Spine(Option<String>),
    /// End of the current spine's children.
    Close,
    /// End of stream.
    Eof,
}

/// A reading cursor over an event stream with paged-I/O accounting.
pub struct StreamCursor<'a> {
    pub reader: PagedReader<'a>,
    buf: &'a [u8],
}

impl<'a> StreamCursor<'a> {
    pub fn new(buf: &'a [u8], page: usize) -> Self {
        Self {
            reader: PagedReader::new(buf, page),
            buf,
        }
    }

    /// Peeks the kind and sort key of the next entry without consuming it
    /// (no I/O charged — peeks hit the read buffer).
    pub fn peek(&self) -> Result<Peeked> {
        let pos = self.reader.position();
        let Some(&kind) = self.buf.get(pos) else {
            return Ok(Peeked::Eof);
        };
        match kind {
            KIND_SPINE_CLOSE => Ok(Peeked::Close),
            KIND_SMALL => {
                let mut p = pos + 1;
                let Some(&flags) = self.buf.get(p) else {
                    return err_at(p, "truncated flags");
                };
                p += 1;
                let _body = get_varint(self.buf, &mut p)?;
                let key = if flags & FLAG_KEY != 0 {
                    Some(get_str(self.buf, &mut p)?)
                } else {
                    None
                };
                Ok(Peeked::Small(key))
            }
            KIND_TEXT => Ok(Peeked::Small(None)),
            KIND_SPINE_OPEN => {
                let mut p = pos + 1;
                let Some(&flags) = self.buf.get(p) else {
                    return err_at(p, "truncated spine flags");
                };
                p += 1;
                let key = if flags & FLAG_KEY != 0 {
                    Some(get_str(self.buf, &mut p)?)
                } else {
                    None
                };
                Ok(Peeked::Spine(key))
            }
            k => err(format!("unexpected entry kind {k}")),
        }
    }

    /// Consumes and decodes a small entry (charges reads).
    pub fn take_small(&mut self) -> Result<ETree> {
        let start = self.reader.position();
        let mut pos = start;
        let tree = decode_small(self.buf, &mut pos)?;
        let len = pos - start;
        self.reader
            .read(len)
            .ok_or_else(|| StreamError::new("EOF"))?;
        Ok(tree)
    }

    /// Consumes a spine-open marker, returning its header.
    pub fn take_spine_open(&mut self) -> Result<SpineHeader> {
        let start = self.reader.position();
        if self.buf.get(start) != Some(&KIND_SPINE_OPEN) {
            return err_at(start, "expected spine open");
        }
        let mut pos = start + 1;
        let h = decode_spine_header(self.buf, &mut pos)?;
        let len = pos - start;
        self.reader
            .read(len)
            .ok_or_else(|| StreamError::new("EOF"))?;
        Ok(h)
    }

    /// Consumes a spine-close marker.
    pub fn take_spine_close(&mut self) -> Result<()> {
        if self.buf.get(self.reader.position()) != Some(&KIND_SPINE_CLOSE) {
            return err_at(self.reader.position(), "expected spine close");
        }
        self.reader.read(1).ok_or_else(|| StreamError::new("EOF"))?;
        Ok(())
    }

    /// Copies the entire next entry (small node or nested spine) to `out`,
    /// optionally overriding the timestamp of the entry's root node.
    /// Charges reads and writes.
    pub fn copy_entry(&mut self, out: &mut PagedWriter, set_time: Option<&TimeSet>) -> Result<()> {
        match self.peek()? {
            Peeked::Small(_) => {
                let mut tree = self.take_small()?;
                if let Some(t) = set_time {
                    if tree.time.is_none() {
                        tree.time = Some(t.clone());
                    }
                }
                let mut bytes = Vec::new();
                encode_small(&tree, &mut bytes);
                out.write(&bytes);
                Ok(())
            }
            Peeked::Spine(_) => {
                let mut h = self.take_spine_open()?;
                if let Some(t) = set_time {
                    if h.time.is_none() {
                        h.time = Some(t.clone());
                    }
                }
                let mut header = Vec::new();
                encode_spine_open(&h, &mut header);
                out.write(&header);
                // copy children verbatim until the matching close
                loop {
                    match self.peek()? {
                        Peeked::Close => {
                            self.take_spine_close()?;
                            let mut c = Vec::new();
                            encode_spine_close(&mut c);
                            out.write(&c);
                            return Ok(());
                        }
                        Peeked::Eof => return err("unterminated spine"),
                        _ => self.copy_entry(out, None)?,
                    }
                }
            }
            Peeked::Close => err("cannot copy a close marker"),
            Peeked::Eof => err("cannot copy at EOF"),
        }
    }

    pub fn pages_read(&self) -> u64 {
        self.reader.pages_read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::EKind;

    fn leaf(tag: &str, text: &str) -> ETree {
        ETree {
            kind: EKind::Element {
                tag: tag.into(),
                attrs: vec![("id".into(), "1".into())],
            },
            sort_key: Some(format!("{tag}\u{0}")),
            frontier: true,
            time: Some(TimeSet::from_range(1, 3)),
            children: vec![ETree {
                kind: EKind::Text(text.into()),
                sort_key: None,
                frontier: false,
                time: None,
                children: Vec::new(),
            }],
        }
    }

    #[test]
    fn small_round_trip() {
        let t = leaf("rec", "hello world");
        let mut buf = Vec::new();
        encode_small(&t, &mut buf);
        let mut pos = 0;
        let back = decode_small(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back, t);
    }

    #[test]
    fn stamp_round_trip() {
        let t = ETree {
            kind: EKind::Stamp,
            sort_key: None,
            frontier: false,
            time: Some(TimeSet::from_version(4)),
            children: vec![leaf("x", "y")],
        };
        let mut buf = Vec::new();
        encode_small(&t, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_small(&buf, &mut pos).unwrap(), t);
    }

    #[test]
    fn spine_markers_and_cursor() {
        let mut buf = Vec::new();
        let h = SpineHeader {
            tag: "root".into(),
            attrs: Vec::new(),
            sort_key: Some("root\u{0}".into()),
            time: Some(TimeSet::from_version(1)),
        };
        encode_spine_open(&h, &mut buf);
        encode_small(&leaf("rec", "a"), &mut buf);
        encode_small(&leaf("rec", "b"), &mut buf);
        encode_spine_close(&mut buf);

        let mut cur = StreamCursor::new(&buf, 64);
        assert!(matches!(cur.peek().unwrap(), Peeked::Spine(Some(_))));
        let got = cur.take_spine_open().unwrap();
        assert_eq!(got, h);
        assert!(matches!(cur.peek().unwrap(), Peeked::Small(Some(_))));
        let a = cur.take_small().unwrap();
        assert_eq!(a, leaf("rec", "a"));
        // copy the second entry with a time override
        let mut out = PagedWriter::new(64);
        cur.copy_entry(&mut out, Some(&TimeSet::from_version(9)))
            .unwrap();
        assert!(matches!(cur.peek().unwrap(), Peeked::Close));
        cur.take_spine_close().unwrap();
        assert!(matches!(cur.peek().unwrap(), Peeked::Eof));
        // the copied entry kept its own (existing) time
        let (bytes, _) = out.finish();
        let mut pos = 0;
        let copied = decode_small(&bytes, &mut pos).unwrap();
        assert_eq!(copied.time, Some(TimeSet::from_range(1, 3)));
    }

    #[test]
    fn copy_sets_time_when_absent() {
        let mut t = leaf("rec", "a");
        t.time = None;
        let mut buf = Vec::new();
        encode_small(&t, &mut buf);
        let mut cur = StreamCursor::new(&buf, 64);
        let mut out = PagedWriter::new(64);
        cur.copy_entry(&mut out, Some(&TimeSet::from_version(7)))
            .unwrap();
        let (bytes, _) = out.finish();
        let mut pos = 0;
        let copied = decode_small(&bytes, &mut pos).unwrap();
        assert_eq!(copied.time, Some(TimeSet::from_version(7)));
    }

    #[test]
    fn corrupt_stream_errors() {
        assert!(decode_small(&[KIND_SMALL], &mut 0).is_err());
        assert!(decode_small(&[], &mut 0).is_err());
        let cur = StreamCursor::new(&[KIND_SPINE_CLOSE], 8);
        assert!(matches!(cur.peek().unwrap(), Peeked::Close));
    }

    #[test]
    fn crafted_huge_lengths_error_instead_of_overflowing() {
        // a text entry whose declared string length is near u64::MAX: the
        // bounds check must fail cleanly, not overflow `pos + len`
        let mut buf = vec![KIND_TEXT];
        put_varint(&mut buf, u64::MAX - 1);
        assert!(decode_small(&buf, &mut 0).is_err());
        // same for a stamp body length
        let mut buf = vec![KIND_STAMP];
        put_varint(&mut buf, u64::MAX - 1);
        assert!(decode_small(&buf, &mut 0).is_err());
        // and a small-node body length
        let mut buf = vec![KIND_SMALL, 0];
        put_varint(&mut buf, u64::MAX - 1);
        assert!(decode_small(&buf, &mut 0).is_err());
    }

    #[test]
    fn store_error_taxonomy_tracks_offsets() {
        // positioned decode failures are corruption with their offset…
        let e: xarch_core::StoreError = StreamError::at(17, "truncated string").into();
        assert!(
            matches!(e, xarch_core::StoreError::Corrupt { offset: 17, .. }),
            "{e}"
        );
        // …while position-less input rejections stay backend errors
        let e: xarch_core::StoreError = StreamError::new("document root has no key").into();
        assert!(matches!(e, xarch_core::StoreError::Backend(_)), "{e}");
    }
}
