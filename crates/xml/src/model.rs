//! The arena-based document model.
//!
//! A [`Document`] owns a flat `Vec<Node>` plus a [`SymbolTable`] for tag and
//! attribute names. Nodes are addressed by [`NodeId`] (a `u32` newtype), so
//! tree manipulation never fights the borrow checker and nodes are cheap to
//! copy between documents.
//!
//! The model follows Appendix A of the paper: element nodes (E-nodes) carry
//! a tag, an ordered list of E/T children, and an *unordered* set of
//! attributes (A-nodes); text nodes (T-nodes) carry a string.

use crate::sym::{Sym, SymbolTable};

/// Index of a node within its owning [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The two kinds of tree nodes. Attributes are stored inline on elements
/// rather than as separate arena nodes (they can never have children).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with an interned tag name.
    Element(Sym),
    /// A text node.
    Text(String),
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    /// Ordered E/T children. Empty for text nodes.
    pub children: Vec<NodeId>,
    /// Attribute name/value pairs in document order. Empty for text nodes.
    pub attrs: Vec<(Sym, String)>,
}

/// Summary statistics of a document (the paper's Figure 7 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocStats {
    /// Number of element nodes.
    pub elements: usize,
    /// Number of text nodes.
    pub texts: usize,
    /// Number of attribute nodes.
    pub attrs: usize,
    /// Height of the tree (root alone = 1).
    pub height: usize,
}

impl DocStats {
    /// Total node count N = E + T + A nodes.
    pub fn nodes(&self) -> usize {
        self.elements + self.texts + self.attrs
    }
}

/// An XML document: an arena of nodes with a single root element.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    syms: SymbolTable,
    root: NodeId,
}

impl Document {
    /// Creates a document whose root element is named `root_tag`.
    pub fn new(root_tag: &str) -> Self {
        let mut syms = SymbolTable::new();
        let tag = syms.intern(root_tag);
        let root = Node {
            kind: NodeKind::Element(tag),
            parent: None,
            children: Vec::new(),
            attrs: Vec::new(),
        };
        Self {
            nodes: vec![root],
            syms,
            root: NodeId(0),
        }
    }

    /// The root element.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immutable access to the symbol table.
    #[inline]
    pub fn syms(&self) -> &SymbolTable {
        &self.syms
    }

    /// Interns a name in this document's symbol table.
    pub fn intern(&mut self, name: &str) -> Sym {
        self.syms.intern(name)
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of arena slots (elements + text nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the arena holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The tag name of an element node, or `None` for text nodes.
    pub fn tag(&self, id: NodeId) -> Option<Sym> {
        match self.node(id).kind {
            NodeKind::Element(s) => Some(s),
            NodeKind::Text(_) => None,
        }
    }

    /// The tag name of an element node as a string.
    ///
    /// # Panics
    /// Panics if `id` is a text node.
    pub fn tag_name(&self, id: NodeId) -> &str {
        match self.node(id).kind {
            NodeKind::Element(s) => self.syms.resolve(s),
            NodeKind::Text(_) => panic!("tag_name on text node"),
        }
    }

    /// The text of a text node, or `None` for elements.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element(_) => None,
        }
    }

    /// Children (E and T nodes) in document order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Parent of a node (None for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Attribute pairs of an element in document order.
    #[inline]
    pub fn attrs(&self, id: NodeId) -> &[(Sym, String)] {
        &self.node(id).attrs
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        let sym = self.syms.get(name)?;
        self.node(id)
            .attrs
            .iter()
            .find(|(s, _)| *s == sym)
            .map(|(_, v)| v.as_str())
    }

    /// Appends a child element named `tag` to `parent`, returning its id.
    pub fn add_element(&mut self, parent: NodeId, tag: &str) -> NodeId {
        let sym = self.syms.intern(tag);
        self.add_element_sym(parent, sym)
    }

    /// Appends a child element with an already-interned tag.
    pub fn add_element_sym(&mut self, parent: NodeId, tag: Sym) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Element(tag),
            parent: Some(parent),
            children: Vec::new(),
            attrs: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends a text child to `parent`, returning its id.
    ///
    /// Empty text is a no-op returning `parent`: XML cannot represent an
    /// empty text node, so admitting one would make documents that cannot
    /// survive a serialize → parse round trip.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        if text.is_empty() {
            return parent;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Text(text.to_owned()),
            parent: Some(parent),
            children: Vec::new(),
            attrs: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Convenience: adds `<tag>text</tag>` under `parent` and returns the
    /// element id.
    pub fn add_text_element(&mut self, parent: NodeId, tag: &str, text: &str) -> NodeId {
        let e = self.add_element(parent, tag);
        self.add_text(e, text);
        e
    }

    /// Sets (or replaces) an attribute on an element.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        let sym = self.syms.intern(name);
        let node = &mut self.nodes[id.index()];
        if let Some(pair) = node.attrs.iter_mut().find(|(s, _)| *s == sym) {
            pair.1 = value.to_owned();
        } else {
            node.attrs.push((sym, value.to_owned()));
        }
    }

    /// Replaces the text of a text node.
    ///
    /// # Panics
    /// Panics if `id` is an element.
    pub fn set_text(&mut self, id: NodeId, text: &str) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Text(t) => *t = text.to_owned(),
            NodeKind::Element(_) => panic!("set_text on element"),
        }
    }

    /// Removes the child at position `pos` of `parent` (the subtree stays in
    /// the arena but becomes unreachable — documents are write-mostly, which
    /// mirrors the paper's accretive workloads).
    pub fn remove_child(&mut self, parent: NodeId, pos: usize) -> NodeId {
        let child = self.nodes[parent.index()].children.remove(pos);
        self.nodes[child.index()].parent = None;
        child
    }

    /// Concatenated text of all T-node descendants (document order).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Element(_) => {
                for &c in self.children(id) {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Child elements of `id` whose tag is `name`, in document order.
    pub fn child_elements<'a>(
        &'a self,
        id: NodeId,
        name: &str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let want = self.syms.get(name);
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| matches!(self.node(c).kind, NodeKind::Element(s) if Some(s) == want))
    }

    /// First child element named `name`.
    pub fn first_child_element(&self, id: NodeId, name: &str) -> Option<NodeId> {
        self.child_elements(id, name).next()
    }

    /// Preorder (document-order) traversal of the subtree rooted at `id`.
    pub fn preorder(&self, id: NodeId) -> Preorder<'_> {
        Preorder {
            doc: self,
            stack: vec![id],
        }
    }

    /// Copies the subtree rooted at `src_id` in `src` as a new child of
    /// `parent` in `self`, translating symbols between the two tables.
    /// Returns the id of the copied root.
    pub fn copy_subtree_from(&mut self, src: &Document, src_id: NodeId, parent: NodeId) -> NodeId {
        let new_id = match &src.node(src_id).kind {
            NodeKind::Element(s) => {
                let tag = self.syms.intern(src.syms.resolve(*s));
                let e = self.add_element_sym(parent, tag);
                for (a, v) in &src.node(src_id).attrs {
                    let name = src.syms.resolve(*a).to_owned();
                    let sym = self.syms.intern(&name);
                    self.nodes[e.index()].attrs.push((sym, v.clone()));
                }
                e
            }
            NodeKind::Text(t) => {
                let t = t.clone();
                self.add_text(parent, &t)
            }
        };
        for &c in src.children(src_id) {
            self.copy_subtree_from(src, c, new_id);
        }
        new_id
    }

    /// Computes document statistics (paper Fig 7: size, N, height) for the
    /// subtree rooted at the document root.
    pub fn stats(&self) -> DocStats {
        let mut s = DocStats {
            elements: 0,
            texts: 0,
            attrs: 0,
            height: 0,
        };
        self.stats_rec(self.root, 1, &mut s);
        s
    }

    fn stats_rec(&self, id: NodeId, depth: usize, s: &mut DocStats) {
        s.height = s.height.max(depth);
        match &self.node(id).kind {
            NodeKind::Element(_) => {
                s.elements += 1;
                s.attrs += self.node(id).attrs.len();
                for &c in self.children(id) {
                    self.stats_rec(c, depth + 1, s);
                }
            }
            NodeKind::Text(_) => s.texts += 1,
        }
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, mut id: NodeId) -> usize {
        let mut d = 0;
        while let Some(p) = self.parent(id) {
            d += 1;
            id = p;
        }
        d
    }

    /// The sequence of tag names from the root down to `id` (inclusive),
    /// e.g. `["db", "dept", "emp"]`. Text nodes contribute nothing.
    pub fn label_path(&self, id: NodeId) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            if let NodeKind::Element(s) = self.node(n).kind {
                path.push(self.syms.resolve(s).to_owned());
            }
            cur = self.parent(n);
        }
        path.reverse();
        path
    }
}

/// Preorder iterator over a subtree.
pub struct Preorder<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // push children in reverse so the leftmost is visited first
        for &c in self.doc.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn company() -> Document {
        // Version 1 of the paper's Figure 2.
        let mut d = Document::new("db");
        let dept = d.add_element(d.root(), "dept");
        d.add_text_element(dept, "name", "finance");
        d
    }

    #[test]
    fn build_and_navigate() {
        let d = company();
        assert_eq!(d.tag_name(d.root()), "db");
        let dept = d.first_child_element(d.root(), "dept").unwrap();
        let name = d.first_child_element(dept, "name").unwrap();
        assert_eq!(d.text_content(name), "finance");
        assert_eq!(d.parent(name), Some(dept));
        assert_eq!(d.depth(name), 2);
    }

    #[test]
    fn label_path_works() {
        let d = company();
        let dept = d.first_child_element(d.root(), "dept").unwrap();
        let name = d.first_child_element(dept, "name").unwrap();
        assert_eq!(d.label_path(name), vec!["db", "dept", "name"]);
    }

    #[test]
    fn stats_counts_nodes_and_height() {
        let d = company();
        let s = d.stats();
        assert_eq!(s.elements, 3); // db, dept, name
        assert_eq!(s.texts, 1);
        assert_eq!(s.height, 4); // db > dept > name > text
        assert_eq!(s.nodes(), 4);
    }

    #[test]
    fn attrs_set_and_get() {
        let mut d = Document::new("r");
        let e = d.add_element(d.root(), "item");
        d.set_attr(e, "id", "item1");
        assert_eq!(d.attr(e, "id"), Some("item1"));
        d.set_attr(e, "id", "item2");
        assert_eq!(d.attr(e, "id"), Some("item2"));
        assert_eq!(d.attrs(e).len(), 1);
        assert_eq!(d.attr(e, "missing"), None);
    }

    #[test]
    fn preorder_is_document_order() {
        let mut d = Document::new("a");
        let b = d.add_element(d.root(), "b");
        d.add_element(b, "c");
        d.add_element(b, "d");
        d.add_element(d.root(), "e");
        let tags: Vec<String> = d
            .preorder(d.root())
            .map(|n| d.tag_name(n).to_owned())
            .collect();
        assert_eq!(tags, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn copy_subtree_translates_symbols() {
        let mut src = Document::new("x");
        let e = src.add_element(src.root(), "gene");
        src.set_attr(e, "id", "6230");
        src.add_text(e, "GRTM");

        let mut dst = Document::new("archive");
        // force differing symbol numbering
        dst.intern("unrelated");
        let copied = dst.copy_subtree_from(&src, e, dst.root());
        assert_eq!(dst.tag_name(copied), "gene");
        assert_eq!(dst.attr(copied, "id"), Some("6230"));
        assert_eq!(dst.text_content(copied), "GRTM");
    }

    #[test]
    fn remove_child_detaches() {
        let mut d = Document::new("r");
        let a = d.add_element(d.root(), "a");
        let _b = d.add_element(d.root(), "b");
        let removed = d.remove_child(d.root(), 0);
        assert_eq!(removed, a);
        assert_eq!(d.children(d.root()).len(), 1);
        assert_eq!(d.parent(a), None);
    }

    #[test]
    fn child_elements_filters_by_name() {
        let mut d = Document::new("db");
        d.add_element(d.root(), "dept");
        d.add_element(d.root(), "misc");
        d.add_element(d.root(), "dept");
        assert_eq!(d.child_elements(d.root(), "dept").count(), 2);
        assert_eq!(d.child_elements(d.root(), "absent").count(), 0);
    }
}
