//! Escaping and unescaping of XML character data and attribute values.
//!
//! Supports the five predefined entities (`&lt; &gt; &amp; &quot; &apos;`)
//! and decimal / hexadecimal character references (`&#65;`, `&#x41;`).

/// Escapes text content: `& < >` are replaced by entities.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_text_into(s, &mut out);
    out
}

/// Appends the escaped form of `s` (text-content rules) to `out`.
pub fn escape_text_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escapes an attribute value for inclusion in double quotes:
/// `& < > "` are replaced by entities.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_attr_into(s, &mut out);
    out
}

/// Appends the escaped form of `s` (attribute rules, double quotes) to `out`.
pub fn escape_attr_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Resolves a single entity name (the part between `&` and `;`).
///
/// Returns `None` for unknown entities.
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = name.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

/// Unescapes character data, resolving entities. Unknown entities are left
/// verbatim (lenient mode, used only in tests); the parser rejects them.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.char_indices();
    while let Some((i, c)) = it.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        // find terminating ';'
        if let Some(end) = s[i + 1..].find(';') {
            let name = &s[i + 1..i + 1 + end];
            if let Some(ch) = resolve_entity(name) {
                out.push(ch);
                // skip name and ';'
                for _ in 0..name.len() + 1 {
                    it.next();
                }
                continue;
            }
        }
        out.push('&');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip_text() {
        let orig = "a < b && c > d";
        assert_eq!(unescape(&escape_text(orig)), orig);
    }

    #[test]
    fn escape_round_trip_attr() {
        let orig = "he said \"x < y\" & left";
        assert_eq!(unescape(&escape_attr(orig)), orig);
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#x1F600"), Some('😀'));
        assert_eq!(resolve_entity("#xZZ"), None);
    }

    #[test]
    fn predefined_entities() {
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("apos"), Some('\''));
        assert_eq!(resolve_entity("nbsp"), None);
    }

    #[test]
    fn unescape_lenient_on_unknown() {
        assert_eq!(unescape("a &unknown; b"), "a &unknown; b");
        assert_eq!(unescape("dangling &"), "dangling &");
    }

    #[test]
    fn unescape_mixed() {
        assert_eq!(unescape("&lt;tag&gt; &#38; more"), "<tag> & more");
    }
}
