//! Label-path expressions (§3, Appendix A.2).
//!
//! The paper's path language is deliberately tiny: the empty path, a node
//! name, and concatenation `P/Q`. We write the empty path as `.` (as in §3's
//! `(tel, {.})`) and also accept the appendix spelling `\e`.

use std::fmt;

/// A path: a (possibly empty) sequence of node-name steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Path {
    steps: Vec<String>,
}

impl Path {
    /// The empty path (the paper's `.` / `\e`).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a path from name steps.
    pub fn from_steps<I, S>(steps: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            steps: steps.into_iter().map(Into::into).collect(),
        }
    }

    /// Parses `db/dept/emp`, `/db/dept`, `.` or `\e`. A leading `/` is
    /// tolerated (the paper anchors context paths at the root with `/`).
    pub fn parse(s: &str) -> Self {
        let s = s.trim();
        if s.is_empty() || s == "." || s == "\\e" || s == "/" {
            return Self::empty();
        }
        let s = s.strip_prefix('/').unwrap_or(s);
        Self {
            steps: s.split('/').map(|p| p.trim().to_owned()).collect(),
        }
    }

    /// The name steps.
    pub fn steps(&self) -> &[String] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Concatenation `self/other`.
    pub fn concat(&self, other: &Path) -> Path {
        let mut steps = self.steps.clone();
        steps.extend(other.steps.iter().cloned());
        Path { steps }
    }

    /// Appends one step.
    pub fn child(&self, step: &str) -> Path {
        let mut steps = self.steps.clone();
        steps.push(step.to_owned());
        Path { steps }
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.steps.len() >= self.steps.len() && other.steps[..self.steps.len()] == self.steps[..]
    }

    /// True if `self` is a strict prefix of `other`.
    pub fn is_proper_prefix_of(&self, other: &Path) -> bool {
        other.steps.len() > self.steps.len() && self.is_prefix_of(other)
    }

    /// True if this path equals the given sequence of tag names.
    pub fn matches(&self, labels: &[String]) -> bool {
        self.steps.len() == labels.len()
            && self.steps.iter().zip(labels.iter()).all(|(a, b)| a == b)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            write!(f, ".")
        } else {
            write!(f, "{}", self.steps.join("/"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        assert!(Path::parse(".").is_empty());
        assert!(Path::parse("\\e").is_empty());
        assert!(Path::parse("").is_empty());
        assert!(Path::parse("/").is_empty());
        assert_eq!(Path::parse("/db/dept").steps(), &["db", "dept"]);
        assert_eq!(Path::parse("db/dept").steps(), &["db", "dept"]);
    }

    #[test]
    fn concat_and_child() {
        let q = Path::parse("/db/dept");
        let qp = q.concat(&Path::parse("emp/fn"));
        assert_eq!(qp.to_string(), "db/dept/emp/fn");
        assert_eq!(q.child("emp").to_string(), "db/dept/emp");
        assert_eq!(q.concat(&Path::empty()), q);
    }

    #[test]
    fn prefix_relations() {
        let a = Path::parse("db/dept");
        let b = Path::parse("db/dept/emp");
        assert!(a.is_prefix_of(&b));
        assert!(a.is_proper_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_proper_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(Path::empty().is_prefix_of(&a));
    }

    #[test]
    fn display_round_trip() {
        for s in ["db/dept/emp", "."] {
            assert_eq!(Path::parse(s).to_string(), s);
        }
    }

    #[test]
    fn matches_label_sequence() {
        let p = Path::parse("db/dept/name");
        assert!(p.matches(&["db".into(), "dept".into(), "name".into()]));
        assert!(!p.matches(&["db".into(), "dept".into()]));
    }
}
