//! Serialization of documents back to XML text.
//!
//! Two forms are provided:
//!
//! * **compact** — no inserted whitespace; canonical for machine use;
//! * **pretty** — the line-oriented layout the paper's line-diff experiments
//!   assume: "each element is represented by one or more consecutive lines
//!   separate from other elements" (§5). Elements containing a single text
//!   child are written on one line; others open and close on their own lines.

use crate::escape::{escape_attr_into, escape_text_into};
use crate::model::{Document, NodeId, NodeKind};

/// Serializes the whole document compactly.
pub fn to_compact_string(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    write_compact(doc, doc.root(), &mut out);
    out
}

/// Appends the compact serialization of the subtree at `id` to `out`.
pub fn write_compact(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Text(t) => escape_text_into(t, out),
        NodeKind::Element(sym) => {
            let tag = doc.syms().resolve(*sym);
            out.push('<');
            out.push_str(tag);
            for (a, v) in doc.attrs(id) {
                out.push(' ');
                out.push_str(doc.syms().resolve(*a));
                out.push_str("=\"");
                escape_attr_into(v, out);
                out.push('"');
            }
            if doc.children(id).is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for &c in doc.children(id) {
                    write_compact(doc, c, out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }
}

/// Serializes the whole document in line-oriented pretty form with the given
/// indent width.
pub fn to_pretty_string(doc: &Document, indent: usize) -> String {
    let mut out = String::with_capacity(doc.len() * 24);
    write_pretty(doc, doc.root(), indent, 0, &mut out);
    out
}

/// True if the element consists solely of text children (so it can be
/// written inline on a single line).
fn is_text_only(doc: &Document, id: NodeId) -> bool {
    doc.children(id)
        .iter()
        .all(|&c| matches!(doc.node(c).kind, NodeKind::Text(_)))
}

fn write_pretty(doc: &Document, id: NodeId, indent: usize, depth: usize, out: &mut String) {
    let pad = indent * depth;
    match &doc.node(id).kind {
        NodeKind::Text(t) => {
            for _ in 0..pad {
                out.push(' ');
            }
            escape_text_into(t, out);
            out.push('\n');
        }
        NodeKind::Element(sym) => {
            let tag = doc.syms().resolve(*sym);
            for _ in 0..pad {
                out.push(' ');
            }
            out.push('<');
            out.push_str(tag);
            for (a, v) in doc.attrs(id) {
                out.push(' ');
                out.push_str(doc.syms().resolve(*a));
                out.push_str("=\"");
                escape_attr_into(v, out);
                out.push('"');
            }
            if doc.children(id).is_empty() {
                out.push_str("/>\n");
            } else if is_text_only(doc, id) {
                out.push('>');
                for &c in doc.children(id) {
                    if let NodeKind::Text(t) = &doc.node(c).kind {
                        escape_text_into(t, out);
                    }
                }
                out.push_str("</");
                out.push_str(tag);
                out.push_str(">\n");
            } else {
                out.push_str(">\n");
                for &c in doc.children(id) {
                    write_pretty(doc, c, indent, depth + 1, out);
                }
                for _ in 0..pad {
                    out.push(' ');
                }
                out.push_str("</");
                out.push_str(tag);
                out.push_str(">\n");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_round_trip() {
        let src =
            r#"<db><dept><name>finance</name><emp x="1&amp;2"><fn>John</fn></emp></dept></db>"#;
        let doc = parse(src).unwrap();
        let s = to_compact_string(&doc);
        let doc2 = parse(&s).unwrap();
        assert!(crate::order::value_equal(
            &doc,
            doc.root(),
            &doc2,
            doc2.root()
        ));
        assert_eq!(s, to_compact_string(&doc2));
    }

    #[test]
    fn self_closing_for_empty() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_compact_string(&doc), "<a><b/></a>");
    }

    #[test]
    fn pretty_one_line_per_text_element() {
        let doc = parse("<db><dept><name>finance</name></dept></db>").unwrap();
        let s = to_pretty_string(&doc, 2);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(
            lines,
            vec![
                "<db>",
                "  <dept>",
                "    <name>finance</name>",
                "  </dept>",
                "</db>"
            ]
        );
    }

    #[test]
    fn pretty_round_trip() {
        let src = "<gene><id>6230</id><name>GRTM</name><seq>GTCG...</seq><pos>11A52</pos></gene>";
        let doc = parse(src).unwrap();
        let pretty = to_pretty_string(&doc, 2);
        let doc2 = parse(&pretty).unwrap();
        assert!(crate::order::value_equal(
            &doc,
            doc.root(),
            &doc2,
            doc2.root()
        ));
    }

    #[test]
    fn escaping_in_output() {
        let mut doc = crate::model::Document::new("a");
        doc.set_attr(doc.root(), "k", "a\"b<c");
        doc.add_text(doc.root(), "x < y & z");
        let s = to_compact_string(&doc);
        assert_eq!(s, r#"<a k="a&quot;b&lt;c">x &lt; y &amp; z</a>"#);
        let doc2 = parse(&s).unwrap();
        assert_eq!(doc2.text_content(doc2.root()), "x < y & z");
    }
}
