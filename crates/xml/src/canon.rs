//! Canonical form of XML values (§4.3).
//!
//! The paper fingerprints key values by first putting them in *canonical
//! form*: a serialization such that two values are value-equal (`=v`) if and
//! only if their canonical forms are string-equal. Our canonical form is the
//! compact serialization with attributes sorted by (name, value) and all
//! text escaped — a deliberately small subset of W3C Canonical XML
//! sufficient for the paper's value model (which ignores inter-element
//! whitespace, comments and PIs; those never reach the tree).

use crate::escape::{escape_attr_into, escape_text_into};
use crate::model::{Document, NodeId, NodeKind};

/// Returns the canonical form of the subtree rooted at `id`.
pub fn canonical(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    canonical_into(doc, id, &mut out);
    out
}

/// Appends the canonical form of the subtree rooted at `id` to `out`.
pub fn canonical_into(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Text(t) => escape_text_into(t, out),
        NodeKind::Element(sym) => {
            let tag = doc.syms().resolve(*sym);
            out.push('<');
            out.push_str(tag);
            let mut attrs: Vec<(&str, &str)> = doc
                .attrs(id)
                .iter()
                .map(|(s, v)| (doc.syms().resolve(*s), v.as_str()))
                .collect();
            attrs.sort_unstable();
            for (a, v) in attrs {
                out.push(' ');
                out.push_str(a);
                out.push_str("=\"");
                escape_attr_into(v, out);
                out.push('"');
            }
            out.push('>');
            for &c in doc.children(id) {
                canonical_into(doc, c, out);
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Canonical form of a *sequence* of sibling values (a key-path value can be
/// the full content of a node, i.e. a list of children).
pub fn canonical_list(doc: &Document, ids: &[NodeId]) -> String {
    let mut out = String::new();
    for &id in ids {
        canonical_into(doc, id, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::value_equal;
    use crate::parser::parse;

    #[test]
    fn canonical_eq_iff_value_eq() {
        let pairs = [
            (r#"<a x="1" y="2"/>"#, r#"<a y="2" x="1"/>"#, true),
            ("<a><b/><c/></a>", "<a><c/><b/></a>", false),
            ("<a>t</a>", "<a>t</a>", true),
            ("<a>t</a>", "<a>u</a>", false),
            ("<a/>", "<a></a>", true),
        ];
        for (x, y, want_eq) in pairs {
            let dx = parse(x).unwrap();
            let dy = parse(y).unwrap();
            let ceq = canonical(&dx, dx.root()) == canonical(&dy, dy.root());
            let veq = value_equal(&dx, dx.root(), &dy, dy.root());
            assert_eq!(ceq, veq, "canonical/value mismatch for {x} vs {y}");
            assert_eq!(ceq, want_eq);
        }
    }

    #[test]
    fn canonical_escapes_so_no_collision_with_structure() {
        // text "<b/>" must not collide with an actual <b/> element
        let dx = parse("<a>&lt;b/&gt;</a>").unwrap();
        let dy = parse("<a><b/></a>").unwrap();
        assert_ne!(canonical(&dx, dx.root()), canonical(&dy, dy.root()));
    }

    #[test]
    fn canonical_empty_element_is_open_close() {
        let d = parse("<a/>").unwrap();
        assert_eq!(canonical(&d, d.root()), "<a></a>");
    }

    #[test]
    fn canonical_list_concatenates() {
        let d = parse("<a><b/>text<c/></a>").unwrap();
        let kids = d.children(d.root());
        assert_eq!(canonical_list(&d, kids), "<b></b>text<c></c>");
    }
}
