//! # xarch-xml
//!
//! A from-scratch XML substrate for the `xarch` archiver, reproducing the
//! XML data model of Buneman et al., *Archiving Scientific Data*
//! (SIGMOD 2002 / TODS 2004), Appendix A.
//!
//! The model has three node types:
//!
//! * **E-nodes** (elements) labelled with an interned tag name,
//! * **A-nodes** (attributes) — name/value pairs attached to an element,
//! * **T-nodes** (text), holding a string value.
//!
//! Documents are stored in an arena ([`Document`]) addressed by [`NodeId`];
//! tag and attribute names are interned as [`Sym`]s in a per-document
//! [`SymbolTable`]. The crate provides:
//!
//! * a hand-written, dependency-free parser ([`parser::parse`]),
//! * compact and line-oriented writers ([`writer`]) — the line-oriented form
//!   is what the paper's line-diff experiments operate on,
//! * the paper's *value equality* `=v` and total *value order* `≤v`
//!   (Appendix A.6) in [`order`],
//! * the canonical form used for fingerprinting in [`canon`]
//!   (string equality of canonical forms ⇔ value equality),
//! * simple label-path expressions in [`path`].

pub mod canon;
pub mod error;
pub mod escape;
pub mod model;
pub mod order;
pub mod parser;
pub mod path;
pub mod sym;
pub mod writer;

pub use error::{ParseError, Result};
pub use model::{Document, Node, NodeId, NodeKind};
pub use order::{cmp_nodes, value_equal};
pub use parser::{parse, parse_with_options, ParseOptions};
pub use path::Path;
pub use sym::{Sym, SymbolTable};
