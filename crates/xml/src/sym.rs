//! String interning for tag and attribute names.
//!
//! Scientific datasets have a tiny vocabulary of element names relative to
//! their node count (OMIM: tens of names over ~200k nodes), so interning
//! turns all hot-path label comparisons into `u32` compares and shrinks the
//! arena nodes considerably.

use std::collections::HashMap;
use std::fmt;

/// An interned name. Only meaningful together with the [`SymbolTable`]
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// Index into the owning table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
///
/// Interned strings are never freed; lookups are O(1) amortised in both
/// directions (`intern` via a hash map, `resolve` via a vector).
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different table and is out of range.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("gene");
        let b = t.intern("gene");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let names = ["db", "dept", "emp", "fn", "ln", "sal", "tel"];
        let syms: Vec<Sym> = names.iter().map(|n| t.intern(n)).collect();
        for (s, n) in syms.iter().zip(names.iter()) {
            assert_eq!(t.resolve(*s), *n);
        }
        assert_eq!(t.len(), names.len());
    }

    #[test]
    fn distinct_names_distinct_syms() {
        let mut t = SymbolTable::new();
        assert_ne!(t.intern("a"), t.intern("b"));
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("x").is_none());
        t.intern("x");
        assert!(t.get("x").is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_in_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let v: Vec<_> = t.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(v, vec!["a", "b"]);
    }
}
