//! Parse errors with source positions.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error raised while parsing an XML document, with 1-based line and
/// column of the offending input position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes from start of line).
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: u32, col: u32, message: impl Into<String>) -> Self {
        Self {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 7, "unexpected '<'");
        let s = e.to_string();
        assert!(s.contains("3:7"));
        assert!(s.contains("unexpected"));
    }
}
