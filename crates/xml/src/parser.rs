//! A hand-written, dependency-free XML parser.
//!
//! Supports the subset of XML needed by the paper's datasets and archives:
//! prolog, comments, processing instructions, DOCTYPE (skipped), elements,
//! attributes (single or double quoted), CDATA sections, predefined and
//! numeric character references. Namespaces are treated lexically (a tag
//! `T:emp` is just a name containing a colon, which is how the paper's
//! timestamp namespace is handled).
//!
//! By default, whitespace-only text nodes between elements are dropped —
//! the paper's value model ignores inter-element whitespace (§4.3 fn. 3).

use crate::error::{ParseError, Result};
use crate::escape::resolve_entity;
use crate::model::{Document, NodeId};

/// Parser configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Drop text nodes that consist solely of whitespace (default: true).
    pub ignore_whitespace: bool,
    /// Trim leading/trailing whitespace of retained text nodes
    /// (default: false).
    pub trim_text: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        Self {
            ignore_whitespace: true,
            trim_text: false,
        }
    }
}

/// Parses `input` with default options.
pub fn parse(input: &str) -> Result<Document> {
    parse_with_options(input, ParseOptions::default())
}

/// Parses `input` with explicit options.
pub fn parse_with_options(input: &str, opts: ParseOptions) -> Result<Document> {
    let mut p = Parser::new(input, opts);
    p.parse_document()
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    opts: ParseOptions,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, opts: ParseOptions) -> Self {
        Self {
            src: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            opts,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.col, msg)
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    #[inline]
    #[allow(dead_code)]
    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn consume(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.consume(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skips until (and including) the terminator string `end`.
    fn skip_until(&mut self, end: &str, what: &str) -> Result<()> {
        while self.pos < self.src.len() {
            if self.consume(end) {
                return Ok(());
            }
            self.bump();
        }
        Err(self.err(format!("unterminated {what}")))
    }

    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.consume("<!--");
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<?") {
                self.consume("<?");
                self.skip_until("?>", "processing instruction")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.consume("<!DOCTYPE");
                // skip to matching '>' allowing one level of [...] internal subset
                let mut depth = 0i32;
                loop {
                    match self.bump() {
                        Some(b'[') => depth += 1,
                        Some(b']') => depth -= 1,
                        Some(b'>') if depth <= 0 => break,
                        Some(_) => {}
                        None => return Err(self.err("unterminated DOCTYPE")),
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_entity(&mut self) -> Result<char> {
        // positioned just after '&'
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let name = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in entity"))?
                    .to_owned();
                self.bump(); // ';'
                return resolve_entity(&name)
                    .ok_or_else(|| self.err(format!("unknown entity `&{name};`")));
            }
            if b == b'<' || b == b'&' || self.pos - start > 12 {
                break;
            }
            self.bump();
        }
        Err(self.err("malformed entity reference"))
    }

    fn parse_attr_value(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b) if b == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => {
                    self.bump();
                    out.push(self.parse_entity()?);
                }
                Some(b'<') => return Err(self.err("`<` not allowed in attribute value")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.bump();
                    }
                    out.push_str(
                        std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_document(&mut self) -> Result<Document> {
        // optional UTF-8 BOM
        if self.src.starts_with(&[0xEF, 0xBB, 0xBF]) {
            self.pos = 3;
        }
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        self.bump(); // '<'
        let root_tag = self.parse_name()?;
        let mut doc = Document::new(&root_tag);
        let root = doc.root();
        self.parse_attrs_and_content(&mut doc, root, &root_tag)?;
        self.skip_misc()?;
        if self.pos < self.src.len() {
            return Err(self.err("content after root element"));
        }
        Ok(doc)
    }

    /// Parses attributes, then either `/>` or `> content </tag>`, for the
    /// already-created element `el` whose `<name` has been consumed.
    fn parse_attrs_and_content(&mut self, doc: &mut Document, el: NodeId, tag: &str) -> Result<()> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    self.expect(">")?;
                    return Ok(());
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b) if Self::is_name_start(b) => {
                    let name = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    if doc.attr(el, &name).is_some() {
                        return Err(self.err(format!("duplicate attribute `{name}`")));
                    }
                    doc.set_attr(el, &name, &value);
                }
                _ => return Err(self.err("malformed start tag")),
            }
        }
        // content
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unexpected EOF inside <{tag}>"))),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.flush_text(doc, el, &mut text);
                        self.consume("</");
                        let close = self.parse_name()?;
                        if close != tag {
                            return Err(
                                self.err(format!("mismatched close tag </{close}> for <{tag}>"))
                            );
                        }
                        self.skip_ws();
                        self.expect(">")?;
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.consume("<!--");
                        self.skip_until("-->", "comment")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.consume("<![CDATA[");
                        let start = self.pos;
                        loop {
                            if self.starts_with("]]>") {
                                text.push_str(
                                    std::str::from_utf8(&self.src[start..self.pos])
                                        .map_err(|_| self.err("invalid UTF-8 in CDATA"))?,
                                );
                                self.consume("]]>");
                                break;
                            }
                            if self.bump().is_none() {
                                return Err(self.err("unterminated CDATA section"));
                            }
                        }
                    } else if self.starts_with("<?") {
                        self.consume("<?");
                        self.skip_until("?>", "processing instruction")?;
                    } else {
                        self.flush_text(doc, el, &mut text);
                        self.bump(); // '<'
                        let child_tag = self.parse_name()?;
                        let child = doc.add_element(el, &child_tag);
                        self.parse_attrs_and_content(doc, child, &child_tag)?;
                    }
                }
                Some(b'&') => {
                    self.bump();
                    text.push(self.parse_entity()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.bump();
                    }
                    text.push_str(
                        std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in text"))?,
                    );
                }
            }
        }
    }

    fn flush_text(&mut self, doc: &mut Document, el: NodeId, text: &mut String) {
        if text.is_empty() {
            return;
        }
        let keep = if self.opts.ignore_whitespace {
            !text.chars().all(char::is_whitespace)
        } else {
            true
        };
        if keep {
            if self.opts.trim_text {
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    doc.add_text(el, trimmed);
                }
            } else {
                doc.add_text(el, text);
            }
        }
        text.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure_1() {
        let doc = parse(
            "<genes><gene><id>6230</id><name>GRTM</name><seq>GTCG...</seq>\
             <pos>11A52</pos></gene></genes>",
        )
        .unwrap();
        let gene = doc.first_child_element(doc.root(), "gene").unwrap();
        let id = doc.first_child_element(gene, "id").unwrap();
        assert_eq!(doc.text_content(id), "6230");
    }

    #[test]
    fn ignores_interelement_whitespace() {
        let doc = parse("<db>\n  <dept>\n    <name>finance</name>\n  </dept>\n</db>").unwrap();
        let s = doc.stats();
        assert_eq!(s.elements, 3);
        assert_eq!(s.texts, 1);
    }

    #[test]
    fn keeps_whitespace_when_asked() {
        let opts = ParseOptions {
            ignore_whitespace: false,
            trim_text: false,
        };
        let doc = parse_with_options("<a> <b/> </a>", opts).unwrap();
        assert_eq!(doc.stats().texts, 2);
    }

    #[test]
    fn attributes_and_self_close() {
        let doc = parse(r#"<site><item id="item1" featured='yes'/></site>"#).unwrap();
        let item = doc.first_child_element(doc.root(), "item").unwrap();
        assert_eq!(doc.attr(item, "id"), Some("item1"));
        assert_eq!(doc.attr(item, "featured"), Some("yes"));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let doc = parse(r#"<a k="&lt;&amp;&gt;">&quot;x&quot; &#65;&#x42;</a>"#).unwrap();
        assert_eq!(doc.attr(doc.root(), "k"), Some("<&>"));
        assert_eq!(doc.text_content(doc.root()), "\"x\" AB");
    }

    #[test]
    fn cdata_kept_verbatim() {
        let doc = parse("<a><![CDATA[<not> & parsed]]></a>").unwrap();
        assert_eq!(doc.text_content(doc.root()), "<not> & parsed");
    }

    #[test]
    fn prolog_comments_doctype() {
        let doc = parse(
            "<?xml version=\"1.0\"?><!-- hi --><!DOCTYPE db [<!ELEMENT db ANY>]><db/><!-- bye -->",
        )
        .unwrap();
        assert_eq!(doc.tag_name(doc.root()), "db");
    }

    #[test]
    fn namespaced_tags_are_plain_names() {
        let doc = parse(r#"<T t="1-4"><db/></T>"#).unwrap();
        assert_eq!(doc.tag_name(doc.root()), "T");
        assert_eq!(doc.attr(doc.root(), "t"), Some("1-4"));
    }

    #[test]
    fn error_mismatched_tags() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched"));
    }

    #[test]
    fn error_duplicate_attr() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn error_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn error_unknown_entity() {
        assert!(parse("<a>&nope;</a>").is_err());
    }

    #[test]
    fn error_positions_reported() {
        let e = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..200 {
            s.push_str("</d>");
        }
        let doc = parse(&s).unwrap();
        assert_eq!(doc.stats().height, 201);
    }

    #[test]
    fn mixed_content_preserved() {
        let doc = parse("<p>hello <b>world</b> bye</p>").unwrap();
        assert_eq!(doc.children(doc.root()).len(), 3);
        assert_eq!(doc.text_content(doc.root()), "hello world bye");
    }
}
