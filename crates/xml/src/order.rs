//! Value equality `=v` and the total value order `≤v` of Appendix A.6.
//!
//! Two nodes are *value equal* when the trees rooted at them are isomorphic
//! by an isomorphism that is the identity on strings — E/T children compare
//! as ordered lists, attributes (A-nodes) as name-sorted sets.
//!
//! The order extends equality to a total order used by Nested Merge to sort
//! sibling nodes by key value (`≤lab` is built on top of `≤v` in
//! `xarch-core`):
//!
//! 1. node type: T-node < A-node < E-node (A-nodes never surface here since
//!    they are stored inline, but the rank is kept for completeness);
//! 2. T-nodes by text;
//! 3. E-nodes by tag, then child list (`<l`: shorter first, then pointwise),
//!    then attribute set (`<s`: fewer first, then by sorted name, then value).

use std::cmp::Ordering;

use crate::model::{Document, NodeId, NodeKind};

/// Compares the XML values rooted at `a` (in `da`) and `b` (in `db`)
/// under the total order `≤v`.
pub fn cmp_nodes(da: &Document, a: NodeId, db: &Document, b: NodeId) -> Ordering {
    match (&da.node(a).kind, &db.node(b).kind) {
        (NodeKind::Text(ta), NodeKind::Text(tb)) => ta.cmp(tb),
        (NodeKind::Text(_), NodeKind::Element(_)) => Ordering::Less,
        (NodeKind::Element(_), NodeKind::Text(_)) => Ordering::Greater,
        (NodeKind::Element(sa), NodeKind::Element(sb)) => {
            let ta = da.syms().resolve(*sa);
            let tb = db.syms().resolve(*sb);
            ta.cmp(tb)
                .then_with(|| cmp_node_lists(da, da.children(a), db, db.children(b)))
                .then_with(|| cmp_attr_sets(da, a, db, b))
        }
    }
}

/// Compares two ordered child lists under `<l`: by length first, then
/// pointwise by `≤v`.
pub fn cmp_node_lists(da: &Document, xs: &[NodeId], db: &Document, ys: &[NodeId]) -> Ordering {
    xs.len().cmp(&ys.len()).then_with(|| {
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            let o = cmp_nodes(da, x, db, y);
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    })
}

/// Compares two attribute sets under `<s`: by size, then by
/// lexicographically name-sorted (name, value) pairs.
fn cmp_attr_sets(da: &Document, a: NodeId, db: &Document, b: NodeId) -> Ordering {
    let mut xs: Vec<(&str, &str)> = da
        .attrs(a)
        .iter()
        .map(|(s, v)| (da.syms().resolve(*s), v.as_str()))
        .collect();
    let mut ys: Vec<(&str, &str)> = db
        .attrs(b)
        .iter()
        .map(|(s, v)| (db.syms().resolve(*s), v.as_str()))
        .collect();
    xs.sort_unstable();
    ys.sort_unstable();
    xs.len().cmp(&ys.len()).then_with(|| xs.cmp(&ys))
}

/// `a =v b`: value equality across (possibly distinct) documents.
pub fn value_equal(da: &Document, a: NodeId, db: &Document, b: NodeId) -> bool {
    cmp_nodes(da, a, db, b) == Ordering::Equal
}

/// Value equality of two child *sequences* (used by Nested Merge when
/// comparing the contents of frontier nodes).
pub fn lists_value_equal(da: &Document, xs: &[NodeId], db: &Document, ys: &[NodeId]) -> bool {
    cmp_node_lists(da, xs, db, ys) == Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cmp_docs(a: &str, b: &str) -> Ordering {
        let da = parse(a).unwrap();
        let db = parse(b).unwrap();
        cmp_nodes(&da, da.root(), &db, db.root())
    }

    #[test]
    fn equal_ignores_attr_order() {
        assert_eq!(
            cmp_docs(r#"<a x="1" y="2"/>"#, r#"<a y="2" x="1"/>"#),
            Ordering::Equal
        );
    }

    #[test]
    fn child_order_matters() {
        assert_ne!(
            cmp_docs("<a><b/><c/></a>", "<a><c/><b/></a>"),
            Ordering::Equal
        );
    }

    #[test]
    fn shorter_list_is_less() {
        assert_eq!(cmp_docs("<a><b/></a>", "<a><b/><b/></a>"), Ordering::Less);
        // even when the single child would sort after the pair's children
        assert_eq!(cmp_docs("<a><z/></a>", "<a><b/><b/></a>"), Ordering::Less);
    }

    #[test]
    fn text_before_element() {
        let da = parse("<a>t</a>").unwrap();
        let db = parse("<a><e/></a>").unwrap();
        let x = da.children(da.root())[0];
        let y = db.children(db.root())[0];
        assert_eq!(cmp_nodes(&da, x, &db, y), Ordering::Less);
    }

    #[test]
    fn text_compares_lexicographically() {
        assert_eq!(cmp_docs("<a>abc</a>", "<a>abd</a>"), Ordering::Less);
        assert_eq!(cmp_docs("<a>abc</a>", "<a>abc</a>"), Ordering::Equal);
    }

    #[test]
    fn tag_dominates() {
        assert_eq!(cmp_docs("<a><zz/></a>", "<b/>"), Ordering::Less);
    }

    #[test]
    fn attr_sets_compare_by_size_then_content() {
        assert_eq!(
            cmp_docs(r#"<a x="1"/>"#, r#"<a x="1" y="1"/>"#),
            Ordering::Less
        );
        assert_eq!(cmp_docs(r#"<a x="1"/>"#, r#"<a x="2"/>"#), Ordering::Less);
        assert_eq!(cmp_docs(r#"<a x="1"/>"#, r#"<a y="0"/>"#), Ordering::Less);
    }

    #[test]
    fn deep_equality() {
        let a = "<db><dept><name>finance</name><emp><fn>John</fn><ln>Doe</ln></emp></dept></db>";
        assert_eq!(cmp_docs(a, a), Ordering::Equal);
        let b = "<db><dept><name>finance</name><emp><fn>John</fn><ln>Do!</ln></emp></dept></db>";
        assert_ne!(cmp_docs(a, b), Ordering::Equal);
    }

    #[test]
    fn order_is_antisymmetric_on_samples() {
        let samples = [
            "<a/>",
            "<a>t</a>",
            "<a><b/></a>",
            "<a><b/><c/></a>",
            r#"<a x="1"/>"#,
            r#"<a x="1" y="2"/>"#,
            "<b/>",
            "<a>u</a>",
        ];
        for x in &samples {
            for y in &samples {
                let xy = cmp_docs(x, y);
                let yx = cmp_docs(y, x);
                assert_eq!(xy, yx.reverse(), "antisymmetry violated for {x} vs {y}");
            }
        }
    }

    #[test]
    fn order_is_transitive_on_samples() {
        let samples = [
            "<a/>",
            "<a>t</a>",
            "<a><b/></a>",
            "<a><b/><c/></a>",
            r#"<a x="1"/>"#,
            "<b/>",
            "<a>u</a>",
            "<a><b>q</b></a>",
        ];
        for x in &samples {
            for y in &samples {
                for z in &samples {
                    if cmp_docs(x, y) != Ordering::Greater && cmp_docs(y, z) != Ordering::Greater {
                        assert_ne!(
                            cmp_docs(x, z),
                            Ordering::Greater,
                            "transitivity violated for {x} ≤ {y} ≤ {z}"
                        );
                    }
                }
            }
        }
    }
}
