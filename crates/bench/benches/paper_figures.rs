//! Custom-harness bench target that regenerates every table and figure of
//! the paper. Runs under `cargo bench` (printing all series) or directly:
//!
//! ```text
//! cargo bench --bench paper_figures -- 12a          # one figure
//! cargo bench --bench paper_figures -- all          # everything
//! ```

use xarch_bench::figures::{run, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // cargo bench passes --bench; ignore flags
    let figs: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|s| !s.starts_with('-'))
        .collect();
    let scale = Scale::default();
    println!(
        "# xarch paper-figure reproduction (OMIM {}x{}, SwissProt {}x{}, XMark {}x{})",
        scale.omim_records,
        scale.omim_versions,
        scale.sp_records,
        scale.sp_versions,
        scale.xmark_items,
        scale.xmark_versions
    );
    println!();
    if figs.is_empty() {
        run("all", &scale);
    } else {
        for f in figs {
            if !run(f, &scale) {
                eprintln!("unknown figure id `{f}`; try 7, 11a, 11b, 12a, 12b, 13, 14, c1, c2, claims, extmem, backends, index, queries, ablation, durability, concurrency, all");
                std::process::exit(2);
            }
        }
    }
}
