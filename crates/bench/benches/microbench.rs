//! Criterion microbenchmarks for the core operations the paper analyzes:
//! Annotate Keys (§4.1, `O(N·h·(Σmᵢ+q))`), Nested Merge (§4.2,
//! `O(αN log N)`), version retrieval with and without timestamp trees
//! (§7.1), history lookup (§7.2), the Myers diff and the two compressors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xarch_core::{Archive, KeyQuery};
use xarch_datagen::omim::{omim_spec, OmimGen};
use xarch_diff::diff_texts;
use xarch_index::{HistoryIndex, TimestampIndex};
use xarch_keys::annotate;
use xarch_xml::writer::to_pretty_string;

fn bench_annotate(c: &mut Criterion) {
    let spec = omim_spec();
    let mut group = c.benchmark_group("annotate_keys");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let doc = OmimGen::new(1).initial(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &doc, |b, doc| {
            b.iter(|| annotate(doc, &spec).unwrap());
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let spec = omim_spec();
    let mut group = c.benchmark_group("nested_merge");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let mut g = OmimGen::new(2);
        g.ins_ratio = 0.02;
        let seq = g.sequence(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &seq, |b, seq| {
            b.iter(|| {
                let mut a = Archive::new(spec.clone());
                for d in seq {
                    a.add_version(d).unwrap();
                }
                a.latest()
            });
        });
    }
    group.finish();
}

fn bench_retrieval(c: &mut Criterion) {
    let spec = omim_spec();
    let seq = OmimGen::new(3).sequence(200, 20);
    let mut a = Archive::new(spec);
    for d in &seq {
        a.add_version(d).unwrap();
    }
    let idx = TimestampIndex::build(&a);
    let mut group = c.benchmark_group("retrieve_v1");
    group.sample_size(10);
    group.bench_function("scan", |b| b.iter(|| a.retrieve(1).unwrap().len()));
    group.bench_function("timestamp_trees", |b| {
        b.iter(|| idx.retrieve(&a, 1).0.unwrap().len())
    });
    group.finish();

    let hidx = HistoryIndex::build(&a);
    let d0 = &seq[0];
    let rec = d0.child_elements(d0.root(), "Record").next().unwrap();
    let num = d0.text_content(d0.first_child_element(rec, "Num").unwrap());
    let q = vec![
        KeyQuery::new("ROOT"),
        KeyQuery::new("Record").with_text("Num", &num),
    ];
    let mut group = c.benchmark_group("history_lookup");
    group.bench_function("naive_walk", |b| b.iter(|| a.history(&q).unwrap()));
    group.bench_function("sorted_index", |b| b.iter(|| hidx.history(&a, &q).unwrap()));
    group.finish();
}

fn bench_diff_and_compress(c: &mut Criterion) {
    let mut g = OmimGen::new(4);
    g.mod_ratio = 0.02;
    let seq = g.sequence(200, 2);
    let a = to_pretty_string(&seq[0], 1);
    let b_text = to_pretty_string(&seq[1], 1);
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.bench_function("myers_line_diff", |bch| {
        bch.iter(|| diff_texts(&a, &b_text).edit_cost())
    });
    group.bench_function("lzss_compress", |bch| {
        bch.iter(|| xarch_compress::lzss::compress(a.as_bytes()).len())
    });
    let doc = &seq[0];
    group.bench_function("xmill_compress", |bch| {
        bch.iter(|| xarch_compress::xmill::xml_compress(doc).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_annotate,
    bench_merge,
    bench_retrieval,
    bench_diff_and_compress
);
criterion_main!(benches);
