//! # xarch-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (§5, §6, §7, Appendix C). The custom-harness bench
//! target `paper_figures` (run by `cargo bench`) prints each figure's data
//! series as CSV; `microbench` times the core operations with Criterion.
//!
//! See `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison of every experiment.

pub mod figures;
pub mod series;

pub use series::{size_series, SizeRow};
