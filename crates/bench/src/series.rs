//! The storage-size series that every §5 figure plots.
//!
//! For a version sequence, each row reports the sizes the paper's graphs
//! show: the version itself, our archive, the incremental and cumulative
//! diff repositories, and (at sample points — compression is the expensive
//! part) `gzip`-style compressed repositories, the `xmill`-style compressed
//! archive, and XMill over the concatenation of all versions.

use xarch_compress::{lzss, xmill};
use xarch_core::Archive;
use xarch_diff::{CumulativeRepo, IncrementalRepo};
use xarch_keys::KeySpec;
use xarch_xml::writer::to_pretty_string;
use xarch_xml::Document;

/// One row of a figure's data series. `None` = not sampled at this version.
#[derive(Debug, Clone)]
pub struct SizeRow {
    pub version: u32,
    /// Size of this version's line-oriented XML text.
    pub version_bytes: usize,
    /// Our archive (pretty XML form), as in the `archive` line.
    pub archive_bytes: usize,
    /// `V1 + incremental diffs`.
    pub inc_bytes: usize,
    /// `V1 + cumulative diffs`.
    pub cumu_bytes: usize,
    /// `gzip(V1 + incremental diffs)` (LZSS substitute).
    pub gzip_inc: Option<usize>,
    /// `gzip(V1 + cumulative diffs)`.
    pub gzip_cumu: Option<usize>,
    /// `xmill(archive)`.
    pub xmill_archive: Option<usize>,
    /// `xmill(V1 + ... + Vi)` — all versions side by side in one XML tree.
    pub xmill_concat: Option<usize>,
}

impl SizeRow {
    /// CSV header matching [`SizeRow::csv`].
    pub fn csv_header() -> &'static str {
        "version,version_bytes,archive,v1_plus_inc_diffs,v1_plus_cumu_diffs,\
         gzip_inc,gzip_cumu,xmill_archive,xmill_concat"
    }

    /// One CSV line; unsampled cells are empty.
    pub fn csv(&self) -> String {
        let opt = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{},{},{}",
            self.version,
            self.version_bytes,
            self.archive_bytes,
            self.inc_bytes,
            self.cumu_bytes,
            opt(self.gzip_inc),
            opt(self.gzip_cumu),
            opt(self.xmill_archive),
            opt(self.xmill_concat),
        )
    }
}

/// Options controlling how much work the series does.
#[derive(Debug, Clone, Copy)]
pub struct SeriesOptions {
    /// Run the compressors every `compress_every` versions (and always at
    /// the last version). 0 disables compression sampling.
    pub compress_every: usize,
    /// Track the cumulative-diff repository (quadratic cost; Fig 12–14
    /// keep only its compressed line).
    pub with_cumulative: bool,
    /// Compress the concatenation of all versions (`xmill(V1+..+Vi)`).
    pub with_concat: bool,
}

impl Default for SeriesOptions {
    fn default() -> Self {
        Self {
            compress_every: 5,
            with_cumulative: true,
            with_concat: true,
        }
    }
}

/// Computes the full size series for a version sequence.
pub fn size_series(versions: &[Document], spec: &KeySpec, opts: SeriesOptions) -> Vec<SizeRow> {
    let mut archive = Archive::new(spec.clone());
    let mut inc = IncrementalRepo::new();
    let mut cumu = CumulativeRepo::new();
    let mut concat = Document::new("versions");
    let mut rows = Vec::with_capacity(versions.len());

    for (idx, doc) in versions.iter().enumerate() {
        let v = idx as u32 + 1;
        let text = to_pretty_string(doc, 0);
        archive.add_version(doc).expect("version satisfies keys");
        inc.add_version(&text);
        if opts.with_cumulative {
            cumu.add_version(&text);
        }
        if opts.with_concat {
            let root = concat.root();
            concat.copy_subtree_from(doc, doc.root(), root);
        }

        let sample = opts.compress_every > 0
            && ((v as usize).is_multiple_of(opts.compress_every) || idx + 1 == versions.len());
        let (gzip_inc, gzip_cumu, xmill_archive, xmill_concat) = if sample {
            let gi = Some(lzss::compress(inc.serialized().as_bytes()).len());
            let gc = opts
                .with_cumulative
                .then(|| lzss::compress(cumu.serialized().as_bytes()).len());
            let xa = Some(xmill::xml_compress(&archive.to_xml()).len());
            let xc = opts.with_concat.then(|| xmill::xml_compress(&concat).len());
            (gi, gc, xa, xc)
        } else {
            (None, None, None, None)
        };

        rows.push(SizeRow {
            version: v,
            version_bytes: text.len(),
            archive_bytes: archive.size_bytes(),
            inc_bytes: inc.size_bytes(),
            cumu_bytes: if opts.with_cumulative {
                cumu.size_bytes()
            } else {
                0
            },
            gzip_inc,
            gzip_cumu,
            xmill_archive,
            xmill_concat,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_datagen::company::{company_spec, company_versions};

    #[test]
    fn company_series_is_sane() {
        let rows = size_series(
            &company_versions(),
            &company_spec(),
            SeriesOptions {
                compress_every: 2,
                with_cumulative: true,
                with_concat: true,
            },
        );
        assert_eq!(rows.len(), 4);
        // archive and repos grow monotonically
        for w in rows.windows(2) {
            assert!(w[1].archive_bytes >= w[0].archive_bytes);
            assert!(w[1].inc_bytes >= w[0].inc_bytes);
            assert!(w[1].cumu_bytes >= w[0].cumu_bytes);
        }
        // last row is always sampled
        let last = rows.last().unwrap();
        assert!(last.gzip_inc.is_some());
        assert!(last.xmill_archive.is_some());
        // csv shape
        assert_eq!(
            last.csv().split(',').count(),
            SizeRow::csv_header().split(',').count()
        );
    }
}
