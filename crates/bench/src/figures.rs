//! One function per table/figure of the paper's evaluation.
//!
//! Each function generates its workload (scaled to laptop size — the
//! *shapes* are what reproduce, see `EXPERIMENTS.md`), computes the series,
//! and prints CSV to stdout. `run(fig)` dispatches by experiment id.

use xarch::{ArchiveBuilder, Backend, StoreReader, VersionStore};
use xarch_core::{Archive, KeyQuery};
use xarch_datagen::omim::{omim_spec, OmimGen};
use xarch_datagen::swissprot::{swissprot_spec, SwissProtGen};
use xarch_datagen::xmark::{xmark_spec, XmarkGen};
use xarch_extmem::{ExtArchive, IoConfig};
use xarch_index::{HistoryIndex, TimestampIndex};
use xarch_xml::Document;

use crate::series::{size_series, SeriesOptions, SizeRow};

/// Scale knobs (versions × records) for each dataset.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub omim_records: usize,
    pub omim_versions: usize,
    pub sp_records: usize,
    pub sp_versions: usize,
    pub xmark_items: usize,
    pub xmark_versions: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            omim_records: 300,
            omim_versions: 100,
            sp_records: 30,
            sp_versions: 20,
            xmark_items: 150,
            xmark_versions: 20,
        }
    }
}

fn print_series(title: &str, rows: &[SizeRow]) {
    println!("## {title}");
    println!("{}", SizeRow::csv_header());
    for r in rows {
        println!("{}", r.csv());
    }
    println!();
}

fn omim_versions(scale: &Scale) -> Vec<Document> {
    OmimGen::new(0xA11CE).sequence(scale.omim_records, scale.omim_versions)
}

fn sp_versions(scale: &Scale) -> Vec<Document> {
    SwissProtGen::new(0xB0B).sequence(scale.sp_records, scale.sp_versions)
}

/// Figure 7: dataset statistics (size, node count N, height h) of the
/// largest version of each dataset.
pub fn fig7(scale: &Scale) {
    println!("## Figure 7: dataset statistics (largest version)");
    println!("dataset,size_bytes,nodes,height");
    let rows: Vec<(&str, Document)> = vec![
        ("OMIM-like", omim_versions(scale).pop().expect("versions")),
        (
            "SwissProt-like",
            sp_versions(scale).pop().expect("versions"),
        ),
        (
            "XMark-like",
            XmarkGen::new(0xC0DE).generate(scale.xmark_items),
        ),
    ];
    for (name, doc) in rows {
        let s = doc.stats();
        let bytes = xarch_xml::writer::to_pretty_string(&doc, 0).len();
        println!("{name},{bytes},{},{}", s.nodes(), s.height);
    }
    println!();
}

/// Figure 11a: OMIM — version/archive/incremental/cumulative sizes.
pub fn fig11a(scale: &Scale) {
    let rows = size_series(
        &omim_versions(scale),
        &omim_spec(),
        SeriesOptions {
            compress_every: 0,
            with_cumulative: true,
            with_concat: false,
        },
    );
    print_series("Figure 11a: OMIM with cumulative diffs", &rows);
}

/// Figure 11b: Swiss-Prot — same four series.
pub fn fig11b(scale: &Scale) {
    let rows = size_series(
        &sp_versions(scale),
        &swissprot_spec(),
        SeriesOptions {
            compress_every: 0,
            with_cumulative: true,
            with_concat: false,
        },
    );
    print_series("Figure 11b: Swiss-Prot with cumulative diffs", &rows);
}

/// Figure 12a: OMIM with compression.
pub fn fig12a(scale: &Scale) {
    let rows = size_series(
        &omim_versions(scale),
        &omim_spec(),
        SeriesOptions {
            compress_every: (scale.omim_versions / 10).max(1),
            with_cumulative: true,
            with_concat: true,
        },
    );
    print_series(
        "Figure 12a: OMIM with incremental diffs + compression",
        &rows,
    );
}

/// Figure 12b: Swiss-Prot with compression.
pub fn fig12b(scale: &Scale) {
    let rows = size_series(
        &sp_versions(scale),
        &swissprot_spec(),
        SeriesOptions {
            compress_every: (scale.sp_versions / 10).max(1),
            with_cumulative: true,
            with_concat: true,
        },
    );
    print_series(
        "Figure 12b: Swiss-Prot with incremental diffs + compression",
        &rows,
    );
}

fn xmark_series(scale: &Scale, pct: f64, mutate_keys: bool, title: &str) {
    let mut g = XmarkGen::new(0xF00D + pct.to_bits() + mutate_keys as u64);
    let versions = if mutate_keys {
        g.key_mutation_sequence(scale.xmark_items, scale.xmark_versions, pct)
    } else {
        g.random_change_sequence(scale.xmark_items, scale.xmark_versions, pct)
    };
    let rows = size_series(
        &versions,
        &xmark_spec(),
        SeriesOptions {
            compress_every: (scale.xmark_versions / 5).max(1),
            with_cumulative: true,
            with_concat: true,
        },
    );
    print_series(title, &rows);
}

/// Figure 13: XMark under random change (a: 1.66%, b: 10%).
pub fn fig13(scale: &Scale) {
    xmark_series(scale, 1.66, false, "Figure 13a: XMark, 1.66% random change");
    xmark_series(scale, 10.0, false, "Figure 13b: XMark, 10% random change");
}

/// Figure 14: XMark worst case — key mutation (a: 1.66%, b: 10%).
pub fn fig14(scale: &Scale) {
    xmark_series(
        scale,
        1.66,
        true,
        "Figure 14a: XMark, 1.66% key mutation (worst case)",
    );
    xmark_series(
        scale,
        10.0,
        true,
        "Figure 14b: XMark, 10% key mutation (worst case)",
    );
}

/// Appendix C.1: XMark random change at 3.33% / 6.66%.
pub fn fig_c1(scale: &Scale) {
    xmark_series(
        scale,
        3.33,
        false,
        "Appendix C.1a: XMark, 3.33% random change",
    );
    xmark_series(
        scale,
        6.66,
        false,
        "Appendix C.1b: XMark, 6.66% random change",
    );
}

/// Appendix C.2: key mutation at 3.33% / 6.66%.
pub fn fig_c2(scale: &Scale) {
    xmark_series(
        scale,
        3.33,
        true,
        "Appendix C.2a: XMark, 3.33% key mutation",
    );
    xmark_series(
        scale,
        6.66,
        true,
        "Appendix C.2b: XMark, 6.66% key mutation",
    );
}

/// §1/§5 headline claims, derived from the OMIM series:
/// archive ≤ ~1.12× last version after ~a year of dailies; xmill(archive)
/// ≈ 40% of the last version; archive within ~1% of incremental diffs.
pub fn claims(scale: &Scale) {
    let versions = omim_versions(scale);
    let rows = size_series(
        &versions,
        &omim_spec(),
        SeriesOptions {
            compress_every: scale.omim_versions,
            with_cumulative: false,
            with_concat: false,
        },
    );
    let last = rows.last().expect("rows");
    println!("## Claims (OMIM-like, {} versions)", rows.len());
    println!("metric,paper,measured");
    println!(
        "archive / last version,<= 1.12x (per year),{:.3}x",
        last.archive_bytes as f64 / last.version_bytes as f64
    );
    println!(
        "xmill(archive) / last version,~0.40x,{:.3}x",
        last.xmill_archive.expect("sampled") as f64 / last.version_bytes as f64
    );
    println!(
        "archive overhead vs inc diffs,<= 1%,{:+.2}%",
        (last.archive_bytes as f64 / last.inc_bytes as f64 - 1.0) * 100.0
    );
    println!();
}

/// §6: external archiver I/O as a function of memory budget M and page
/// size B. The archiver is driven through the `VersionStore` contract;
/// only the I/O counters come from the concrete type.
pub fn fig_extmem(scale: &Scale) {
    println!("## §6: external archiver I/O (OMIM-like, 5 versions)");
    println!("mem_bytes,page_bytes,page_reads,page_writes,total_io");
    let versions = OmimGen::new(0xE47).sequence(scale.omim_records / 2, 5);
    for (m, b) in [
        (2usize << 10, 256usize),
        (8 << 10, 256),
        (32 << 10, 256),
        (8 << 10, 1024),
        (8 << 10, 4096),
    ] {
        let mut ext = ExtArchive::new(
            omim_spec(),
            IoConfig {
                mem_bytes: m,
                page_bytes: b,
            },
        );
        let store: &mut dyn VersionStore = &mut ext;
        for d in &versions {
            store.add_version(d).expect("merge");
        }
        let s = ext.io_stats();
        println!("{m},{b},{},{},{}", s.page_reads, s.page_writes, s.total());
    }
    println!();
}

/// Cross-backend comparison: the same workload archived by every storage
/// tier the builder offers, reported through the unified `stats()` surface
/// — the §4.2 / §5 / §6.3 implementations side by side.
pub fn fig_backends(scale: &Scale) {
    let versions = OmimGen::new(0xBEEF).sequence(scale.omim_records / 2, 8);
    let spec = omim_spec();
    let backends: Vec<(&str, Box<dyn VersionStore>)> = vec![
        (
            "in-memory (§4.2)",
            ArchiveBuilder::new(spec.clone()).build(),
        ),
        (
            "chunked(8) (§5)",
            ArchiveBuilder::new(spec.clone()).chunks(8).build(),
        ),
        (
            "extmem (§6.3)",
            ArchiveBuilder::new(spec.clone())
                .backend(Backend::ExtMem(IoConfig {
                    mem_bytes: 8 << 10,
                    page_bytes: 1024,
                }))
                .build(),
        ),
    ];
    println!("## Backends: one workload, every storage tier (OMIM-like, 8 versions)");
    println!("backend,versions,elements,texts,stamps,size_bytes");
    for (label, mut store) in backends {
        for d in &versions {
            store.add_version(d).expect("merge");
        }
        let s = store.stats().expect("stats");
        println!(
            "{label},{},{},{},{},{}",
            s.versions, s.elements, s.texts, s.stamps, s.size_bytes
        );
    }
    println!();
}

/// §7: retrieval probes with timestamp trees vs a full scan, and history
/// lookups via the sorted index vs the naive walk.
///
/// Timestamp trees pay off when a version occupies a small fraction of the
/// archive (`α ≪ k`, §7.1), so this experiment uses a strongly accretive
/// database: early versions are a sliver of the final archive.
pub fn fig_index(scale: &Scale) {
    let mut g = OmimGen::new(0x1DE);
    g.ins_ratio = 0.08; // ~8% growth per version: v1 is a sliver of the end
    let versions = g.sequence((scale.omim_records / 10).max(10), 50);
    let spec = omim_spec();
    let mut archive = Archive::new(spec.clone());
    for d in &versions {
        archive.add_version(d).expect("merge");
    }
    let tsidx = TimestampIndex::build(&archive);
    println!("## §7.1: version retrieval — timestamp-tree probes vs full scan");
    println!("version,tree_probes,scan_nodes");
    let scan = archive.scan_cost();
    let n = versions.len() as u32;
    for v in [1, n / 4, n / 2, n] {
        let v = v.max(1);
        let (_, probes) = tsidx.retrieve(&archive, v);
        println!("{v},{probes},{scan}");
    }
    println!();

    println!("## §7.2: history lookup — sorted-index comparisons vs naive scan");
    println!("query,comparisons,naive_nodes,found");
    let hidx = HistoryIndex::build(&archive);
    // pick a real record number from the first version
    let d0 = &versions[0];
    let rec = d0
        .child_elements(d0.root(), "Record")
        .next()
        .expect("record");
    let num = d0.text_content(d0.first_child_element(rec, "Num").expect("num"));
    let q = vec![
        KeyQuery::new("ROOT"),
        KeyQuery::new("Record").with_text("Num", &num),
    ];
    hidx.reset();
    let t = hidx.history(&archive, &q);
    println!(
        "Record[Num={num}],{},{},{}",
        hidx.comparisons(),
        archive.scan_cost(),
        t.is_some()
    );
    let q_missing = vec![
        KeyQuery::new("ROOT"),
        KeyQuery::new("Record").with_text("Num", "0"),
    ];
    hidx.reset();
    let t = hidx.history(&archive, &q_missing);
    println!(
        "Record[Num=0] (absent),{},{},{}",
        hidx.comparisons(),
        archive.scan_cost(),
        t.is_some()
    );
    println!();
}

/// Ablation: the design choices DESIGN.md calls out — stamp alternatives
/// vs weave compaction beneath frontiers, and chunked vs whole archiving.
///
/// Weave only differs from alternatives when frontier content is a *list*
/// whose versions overlap partially (Fig 10) — on single-text frontiers the
/// two schemes emit byte-identical XML. The compaction comparison therefore
/// uses a free-text dataset: records whose `Text` field holds a sequence of
/// `<line>` elements, a few of which change per version (§2's `<line>`
/// example of data without keys beneath a point).
pub fn fig_ablation(scale: &Scale) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xarch_core::Compaction;

    let spec =
        xarch_keys::KeySpec::parse("(/, (db, {}))\n(/db, (doc, {id}))\n(/db/doc, (Text, {}))")
            .expect("spec");
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    let n_docs = 40usize;
    let n_lines = 30usize;
    let mut lines: Vec<Vec<String>> = (0..n_docs)
        .map(|d| {
            (0..n_lines)
                .map(|l| format!("doc{d} line{l} original text"))
                .collect()
        })
        .collect();
    let mut versions: Vec<Document> = Vec::new();
    for v in 0..12 {
        if v > 0 {
            // change ~3 lines per document, keep the rest — weave territory
            for (d, ls) in lines.iter_mut().enumerate() {
                for _ in 0..3 {
                    let idx = rng.gen_range(0..ls.len());
                    ls[idx] = format!("doc{d} line{idx} edited at v{v}");
                }
            }
        }
        let mut doc = Document::new("db");
        for (d, ls) in lines.iter().enumerate() {
            let rec = doc.add_element(doc.root(), "doc");
            doc.add_text_element(rec, "id", &d.to_string());
            let text = doc.add_element(rec, "Text");
            for l in ls {
                doc.add_text_element(text, "line", l);
            }
        }
        versions.push(doc);
    }
    println!("## Ablation: frontier compaction (free-text lines, 3 edits/doc/version)");
    println!("variant,archive_bytes");
    for (name, mode) in [
        ("alternatives", Compaction::Alternatives),
        ("weave", Compaction::Weave),
    ] {
        let mut a = ArchiveBuilder::new(spec.clone()).compaction(mode).build();
        for d in &versions {
            a.add_version(d).expect("merge");
        }
        println!("{name},{}", a.stats().expect("stats").size_bytes);
    }
    println!();

    let mut g = XmarkGen::new(0xAB1A);
    let xversions = g.random_change_sequence(scale.xmark_items, scale.xmark_versions.min(10), 10.0);
    let xspec = xmark_spec();
    println!("## Ablation: chunked vs whole archiving (XMark, 10% change)");
    println!("variant,archive_bytes");
    for (name, builder) in [
        ("whole", ArchiveBuilder::new(xspec.clone())),
        ("chunked(4)", ArchiveBuilder::new(xspec.clone()).chunks(4)),
    ] {
        let mut store = builder.build();
        for d in &xversions {
            store.add_version(d).expect("merge");
        }
        println!("{name},{}", store.stats().expect("stats").size_bytes);
    }
    println!();
}

/// The `queries` workload: one accretive archive per version count, one
/// record queried. Returns per-size rows for printing and sanity checks.
struct QueryRow {
    versions: usize,
    scan_nodes: usize,
    indexed_probes: usize,
    indexed_asof_us: f64,
    filter_asof_us: f64,
    indexed_hist_us: f64,
    naive_hist_us: f64,
}

fn query_rows(scale: &Scale, sizes: &[usize]) -> Vec<QueryRow> {
    use std::time::Instant;
    use xarch_core::query::{find_in_doc, subtree_doc};
    use xarch_index::IndexedArchive;

    const REPS: u32 = 20;
    let spec = omim_spec();
    let mut rows = Vec::new();
    for &n in sizes {
        let mut g = OmimGen::new(0x9E5);
        g.ins_ratio = 0.08; // accretive: early records become a sliver
        let versions = g.sequence((scale.omim_records / 10).max(10), n);
        let mut idx = IndexedArchive::new(spec.clone());
        for d in &versions {
            VersionStore::add_version(&mut idx, d).expect("merge");
        }
        // a record archived in version 1, queried as of version 1: the
        // case §7 makes cheap (the answer is a sliver of the archive)
        let d0 = &versions[0];
        let rec = d0
            .child_elements(d0.root(), "Record")
            .next()
            .expect("record");
        let num = d0.text_content(d0.first_child_element(rec, "Num").expect("num"));
        let q = vec![
            KeyQuery::new("ROOT"),
            KeyQuery::new("Record").with_text("Num", &num),
        ];

        idx.reset_probes();
        StoreReader::as_of(&idx, &q, 1)
            .expect("as_of")
            .expect("archived");
        let indexed_probes = idx.history_index().comparisons() + idx.timestamp_index().probes();

        let start = Instant::now();
        for _ in 0..REPS {
            StoreReader::as_of(&idx, &q, 1).expect("as_of");
        }
        let indexed_asof_us = start.elapsed().as_secs_f64() * 1e6 / REPS as f64;

        let archive = idx.archive();
        let scan_nodes = archive.scan_cost();
        let start = Instant::now();
        for _ in 0..REPS {
            let doc = archive.retrieve(1).expect("archived");
            find_in_doc(&doc, &spec, &q)
                .and_then(|id| subtree_doc(&doc, id))
                .expect("navigates");
        }
        let filter_asof_us = start.elapsed().as_secs_f64() * 1e6 / REPS as f64;

        let start = Instant::now();
        for _ in 0..REPS {
            idx.history_index().history(archive, &q).expect("exists");
        }
        let indexed_hist_us = start.elapsed().as_secs_f64() * 1e6 / REPS as f64;

        let start = Instant::now();
        for _ in 0..REPS {
            archive.history(&q).expect("exists");
        }
        let naive_hist_us = start.elapsed().as_secs_f64() * 1e6 / REPS as f64;

        rows.push(QueryRow {
            versions: n,
            scan_nodes,
            indexed_probes,
            indexed_asof_us,
            filter_asof_us,
            indexed_hist_us,
            naive_hist_us,
        });
    }
    rows
}

/// §7 sublinearity, measured: indexed `as_of` / `history` cost (probe
/// counts and wall time) vs full-retrieve-then-filter as the version
/// count grows. The workload is accretive, so the queried record is a
/// shrinking fraction of the archive: indexed probes grow sublinearly
/// with versions while the full-retrieve scan grows with archive size.
pub fn fig_queries(scale: &Scale) {
    println!("## Queries: indexed as_of/history vs full-retrieve-then-filter");
    println!(
        "versions,scan_nodes,indexed_probes,indexed_asof_us,filter_asof_us,\
         indexed_hist_us,naive_hist_us"
    );
    for r in query_rows(scale, &[10, 20, 40, 80]) {
        println!(
            "{},{},{},{:.1},{:.1},{:.1},{:.1}",
            r.versions,
            r.scan_nodes,
            r.indexed_probes,
            r.indexed_asof_us,
            r.filter_asof_us,
            r.indexed_hist_us,
            r.naive_hist_us
        );
    }
    println!();
}

/// The shape the acceptance criteria pin down: across an 8× growth in
/// version count, indexed probes must grow by a clearly sublinear factor
/// while the full-retrieve scan grows (at least) proportionally to the
/// archive.
pub fn queries_sanity(scale: &Scale) -> Result<(), String> {
    let rows = query_rows(scale, &[10, 80]);
    let (small, large) = (&rows[0], &rows[1]);
    let probe_growth = large.indexed_probes as f64 / small.indexed_probes.max(1) as f64;
    let scan_growth = large.scan_nodes as f64 / small.scan_nodes.max(1) as f64;
    let version_growth = large.versions as f64 / small.versions as f64; // 8×
    if probe_growth >= version_growth / 2.0 {
        return Err(format!(
            "indexed probes grew {probe_growth:.2}× over {version_growth}× versions — not sublinear"
        ));
    }
    if scan_growth <= probe_growth {
        return Err(format!(
            "full-retrieve scan grew {scan_growth:.2}× but probes {probe_growth:.2}× — pruning shows no separation"
        ));
    }
    Ok(())
}

/// Durability: what persistence costs and what reopen buys.
///
/// Two series: (1) add_version wall-clock throughput, in-memory vs the
/// durable wrapper (uncompressed vs LZSS blocks, fsync on every commit);
/// (2) reopen (replay) time and segment size as a function of version
/// count — the recovery path the ephemeral backends don't have.
pub fn fig_durability(scale: &Scale) {
    use std::time::Instant;
    use xarch::storage::{scratch_path, DurableOptions};
    use xarch_compress::BlockCodec;

    let spec = omim_spec();
    let versions = OmimGen::new(0xD15C).sequence(scale.omim_records / 2, 10);

    println!("## Durability: add_version cost of the journal (OMIM-like, 10 versions)");
    println!("backend,total_add_ms,adds_per_sec,journal_bytes");
    let configs: Vec<(&str, Option<DurableOptions>)> = vec![
        ("in-memory", None),
        (
            "durable/raw",
            Some(DurableOptions {
                compression: BlockCodec::Raw,
                sync: true,
                checkpoint_every: None,
            }),
        ),
        (
            "durable/lzss",
            Some(DurableOptions {
                compression: BlockCodec::Lzss,
                sync: true,
                checkpoint_every: None,
            }),
        ),
    ];
    for (label, durable) in configs {
        let path = scratch_path("bench-durability");
        let mut store = match durable {
            None => ArchiveBuilder::new(spec.clone()).build(),
            Some(opts) => ArchiveBuilder::new(spec.clone())
                .durable_with(&path, opts)
                .try_build()
                .expect("durable store"),
        };
        let start = Instant::now();
        for d in &versions {
            store.add_version(d).expect("merge");
        }
        let elapsed = start.elapsed();
        let journal = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!(
            "{label},{:.2},{:.0},{journal}",
            elapsed.as_secs_f64() * 1e3,
            versions.len() as f64 / elapsed.as_secs_f64()
        );
        drop(store);
        let _ = std::fs::remove_file(&path);
    }
    println!();

    println!("## Durability: reopen (replay) time vs version count");
    println!("versions,reopen_ms,checkpointed_reopen_ms,tail_blocks_replayed,journal_bytes");
    for n in [2usize, 5, 10] {
        let mut row = Vec::new();
        // full replay vs checkpointed (cadence 2: the newest checkpoint
        // always trails the head closely, so reopen work stays flat in n)
        for every in [0u32, 2] {
            let path = scratch_path("bench-reopen");
            {
                let mut store = ArchiveBuilder::new(spec.clone())
                    .checkpoint_every(every)
                    .durable(&path)
                    .try_build()
                    .expect("durable store");
                for d in versions.iter().take(n) {
                    store.add_version(d).expect("merge");
                }
            }
            let inner = ArchiveBuilder::new(spec.clone()).build();
            let options = DurableOptions {
                checkpoint_every: (every > 0).then_some(every),
                ..DurableOptions::default()
            };
            let start = Instant::now();
            let store = xarch::DurableArchive::open_with(&path, options, inner).expect("reopen");
            let elapsed = start.elapsed();
            assert_eq!(store.latest(), n as u32);
            let journal = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            row.push((
                elapsed.as_secs_f64() * 1e3,
                store.recovery().tail_blocks_replayed,
                journal,
            ));
            drop(store);
            let _ = std::fs::remove_file(&path);
        }
        println!(
            "{n},{:.2},{:.2},{},{}",
            row[0].0, row[1].0, row[1].1, row[1].2
        );
    }
    println!();

    println!("## Durability: cold retrieve off the mmap'd segment");
    println!("versions,cold_open_ms,cold_retrieve_ms,bytes_decoded,mapped_bytes");
    for n in [5usize, 10] {
        let path = scratch_path("bench-cold");
        {
            let mut store = ArchiveBuilder::new(spec.clone())
                .durable(&path)
                .try_build()
                .expect("durable store");
            for d in versions.iter().take(n) {
                store.add_version(d).expect("merge");
            }
        }
        let start = Instant::now();
        let cold = xarch::ColdArchive::open(&path).expect("cold open");
        let open_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let got = cold.retrieve(n as u32).expect("cold retrieve");
        let retrieve_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(got.is_some());
        println!(
            "{n},{open_ms:.2},{retrieve_ms:.2},{},{}",
            cold.bytes_decoded(),
            cold.mapped_bytes()
        );
        drop(cold);
        let _ = std::fs::remove_file(&path);
    }
    println!();
}

/// The shapes the checkpoint + cold-read acceptance criteria pin down:
/// a checkpointed reopen replays a bounded tail no matter how long the
/// history grows (flat, vs the full replay's linear block count), and a
/// cold retrieve decodes only its own block's bytes — never the whole
/// mapped segment.
pub fn durability_sanity(scale: &Scale) -> Result<(), String> {
    use xarch::storage::scratch_path;
    use xarch::{ColdArchive, DurableArchive, DurableOptions};

    let spec = omim_spec();
    let versions = OmimGen::new(0xD15C).sequence((scale.omim_records / 4).max(10), 24);

    // --- checkpointed reopen: tail work is flat in history length ---
    let every = 4u32;
    let mut tails = Vec::new();
    let mut full_blocks = Vec::new();
    for n in [8usize, 24] {
        let path = scratch_path("sanity-checkpoint");
        {
            let mut store = ArchiveBuilder::new(spec.clone())
                .checkpoint_every(every)
                .durable(&path)
                .try_build()
                .map_err(|e| e.to_string())?;
            for d in versions.iter().take(n) {
                store.add_version(d).map_err(|e| e.to_string())?;
            }
        }
        let options = DurableOptions {
            checkpoint_every: Some(every),
            ..DurableOptions::default()
        };
        let store =
            DurableArchive::open_with(&path, options, ArchiveBuilder::new(spec.clone()).build())
                .map_err(|e| e.to_string())?;
        let stats = store.recovery();
        if !stats.checkpoint_loaded {
            return Err(format!("n={n}: reopen did not load a checkpoint"));
        }
        tails.push(stats.tail_blocks_replayed);
        full_blocks.push(n as u64);
        drop(store);
        let _ = std::fs::remove_file(&path);
    }
    // the tail is bounded by the cadence, so 3x the history must not
    // grow the replayed tail at all — while a full replay grows 3x
    if tails[1] > tails[0] || u64::from(tails[1]) >= u64::from(every) {
        return Err(format!(
            "checkpointed reopen is not flat: {} tail blocks at {} versions vs {} at {}",
            tails[1], full_blocks[1], tails[0], full_blocks[0]
        ));
    }

    // --- cold retrieve: decodes one block's bytes, not the archive ---
    let n = 16usize;
    let path = scratch_path("sanity-cold");
    {
        let mut store = ArchiveBuilder::new(spec.clone())
            .durable(&path)
            .try_build()
            .map_err(|e| e.to_string())?;
        for d in versions.iter().take(n) {
            store.add_version(d).map_err(|e| e.to_string())?;
        }
    }
    let cold = ColdArchive::open(&path).map_err(|e| e.to_string())?;
    let got = cold
        .retrieve(n as u32)
        .map_err(|e| e.to_string())?
        .ok_or("cold retrieve returned nothing")?;
    drop(got);
    let decoded = cold.bytes_decoded();
    let mapped = cold.mapped_bytes();
    if decoded == 0 || mapped == 0 {
        return Err("cold metrics not recorded".into());
    }
    // one version block out of 16: decoding even a quarter of the file
    // would mean the cold path materialized far more than its answer
    if decoded * 4 > mapped {
        return Err(format!(
            "cold retrieve decoded {decoded} of {mapped} mapped bytes — \
             the archive is being materialized, not read cold"
        ));
    }
    drop(cold);
    let _ = std::fs::remove_file(&path);
    Ok(())
}

/// One measured ingest run: wall-clock, rate, and (durable) journal work.
struct IngestRun {
    ms: f64,
    per_sec: f64,
    blocks: u64,
    syncs: u64,
}

/// Loads `docs` in batches of `batch` into `store` (`batch <= 1` = the
/// serial `add_version` path); journal counters are the caller's to read.
fn ingest_run(store: &mut dyn VersionStore, docs: &[Document], batch: usize) -> IngestRun {
    let start = std::time::Instant::now();
    if batch <= 1 {
        for d in docs {
            store.add_version(d).expect("merge");
        }
    } else {
        for chunk in docs.chunks(batch) {
            store.add_versions(chunk).expect("batch merge");
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    IngestRun {
        ms: elapsed * 1e3,
        per_sec: docs.len() as f64 / elapsed,
        blocks: 0,
        syncs: 0,
    }
}

/// [`ingest_run`] against a fresh [`xarch::storage::DurableArchive`] at
/// `path` (removed first and after), with the journal counters filled in.
fn durable_ingest_run(
    spec: &xarch_keys::KeySpec,
    path: &std::path::Path,
    docs: &[Document],
    batch: usize,
) -> IngestRun {
    let _ = std::fs::remove_file(path);
    let mut store =
        xarch::storage::DurableArchive::open(path, ArchiveBuilder::new(spec.clone()).build())
            .expect("durable store");
    let mut run = ingest_run(&mut store, docs, batch);
    run.blocks = store.journal_blocks();
    run.syncs = store.journal_syncs();
    drop(store);
    let _ = std::fs::remove_file(path);
    run
}

/// Ingest: bulk-load throughput as a function of batch size, in-memory vs
/// durable, with the group-commit journal work alongside.
///
/// The write path the ROADMAP cares about: serial ingest pays a full
/// archive walk, an index apply, and (durable) a journal block + fsync
/// *per version*; `add_versions` amortizes all three — one batch merge
/// pass, one batched index apply, and one group-committed block with a
/// single fsync. The `blocks`/`fsyncs` columns show the amortization
/// directly (64 → 1 at batch 64); how far it moves the versions/sec
/// column depends on what an fsync costs — milliseconds on commodity
/// disks (where serial ingest is fsync-bound and batching is worth
/// 2–50×), microseconds on write-cached or virtualized storage.
pub fn fig_ingest(scale: &Scale) {
    use xarch::storage::scratch_path;

    let spec = omim_spec();
    let n_versions = 64usize;
    let docs = OmimGen::new(0x1A6E57).sequence(scale.omim_records / 2, n_versions);
    println!(
        "## Ingest: bulk-load throughput vs batch size (OMIM-like, {} versions)",
        docs.len()
    );
    println!("backend,batch,total_ms,versions_per_sec,journal_blocks,fsyncs");
    for (label, durable) in [("in-memory", false), ("durable", true)] {
        for batch in [1usize, 8, 64] {
            let r = if durable {
                let path = scratch_path("bench-ingest");
                durable_ingest_run(&spec, &path, &docs, batch)
            } else {
                let mut store = ArchiveBuilder::new(spec.clone()).build();
                ingest_run(store.as_mut(), &docs, batch)
            };
            println!(
                "{label},{batch},{:.1},{:.0},{},{}",
                r.ms, r.per_sec, r.blocks, r.syncs
            );
        }
    }
    println!();
}

/// The acceptance gate on the ingest figure, in two parts.
///
/// **Structural** (holds on any machine): for the same 64-version load,
/// serial durable ingest must issue one journal block + one fsync per
/// version while batch-64 ingest issues exactly ONE of each — a 64×
/// amortization of the commit overhead, which is what makes batched
/// ingest ≥ 2× serial wherever an fsync costs real time (any storage
/// without a volatile write cache).
///
/// **Wall-clock** (environment-dependent): batching must never be slower
/// than serial, and on hardware where an fsync costs ≥ ~1 ms the measured
/// batch-64 rate must clear 2× serial. The threshold is derived from a
/// probe of the actual fsync latency so the gate tests the claim on
/// machines that can express it and degrades to the no-regression bound
/// on write-cached storage where commit overhead is already free.
pub fn ingest_sanity(scale: &Scale) -> Result<(), String> {
    use xarch::storage::scratch_path;

    let spec = omim_spec();
    let docs = OmimGen::new(0x1A6E57).sequence((scale.omim_records / 4).max(20), 64);
    let serial_path = scratch_path("ingest-sanity-serial");
    let batched_path = scratch_path("ingest-sanity-batched");
    // wall-clock comparisons take the best of two runs — the gate shares
    // the machine with parallel test threads, and a single descheduling
    // must not read as an ingest regression
    let best = |path: &std::path::Path, batch: usize| {
        let a = durable_ingest_run(&spec, path, &docs, batch);
        let b = durable_ingest_run(&spec, path, &docs, batch);
        if b.per_sec > a.per_sec {
            b
        } else {
            a
        }
    };
    let serial = best(&serial_path, 1);
    let batched = best(&batched_path, 64);

    // structural: group commit amortizes the journal 64×
    if serial.blocks != docs.len() as u64 || serial.syncs != docs.len() as u64 {
        return Err(format!(
            "serial durable ingest should journal one block + one fsync per version, \
             saw {} blocks / {} fsyncs for {} versions",
            serial.blocks,
            serial.syncs,
            docs.len()
        ));
    }
    if batched.blocks != 1 || batched.syncs != 1 {
        return Err(format!(
            "batch-64 durable ingest should group-commit ONE block with ONE fsync, \
             saw {} blocks / {} fsyncs",
            batched.blocks, batched.syncs
        ));
    }

    // wall-clock: never slower; 2x wherever fsync costs real time
    let fsync_ms = probe_fsync_ms();
    if fsync_ms >= 1.0 {
        let saved_ms = fsync_ms * (docs.len() as f64 - 1.0);
        // with ≥1 ms fsyncs, the 63 avoided fsyncs dominate the serial
        // run unless merging is abnormally slow — require the full 2x
        if saved_ms > serial.ms / 2.0 && batched.per_sec < serial.per_sec * 2.0 {
            return Err(format!(
                "batched durable ingest (batch 64) reached {:.0} versions/sec, under 2x \
                 the serial rate of {:.0} despite {fsync_ms:.2} ms fsyncs",
                batched.per_sec, serial.per_sec
            ));
        }
    }
    // generous tolerance: genuine regressions (a batch path quadratic in
    // something, an extra fsync per version) blow far past 20%, while
    // scheduler noise on a loaded single-core runner stays within it
    if batched.per_sec < serial.per_sec * 0.8 {
        return Err(format!(
            "batched durable ingest regressed: {:.0} vs {:.0} versions/sec",
            batched.per_sec, serial.per_sec
        ));
    }

    // the in-memory batch merge must not regress either
    let best_mem = |batch: usize| {
        let run = |batch| {
            let mut s = ArchiveBuilder::new(spec.clone()).build();
            ingest_run(s.as_mut(), &docs, batch)
        };
        let a = run(batch);
        let b = run(batch);
        if b.per_sec > a.per_sec {
            b
        } else {
            a
        }
    };
    let mem_serial = best_mem(1);
    let mem_batched = best_mem(64);
    if mem_batched.per_sec < mem_serial.per_sec * 0.8 {
        return Err(format!(
            "in-memory batched ingest regressed: {:.0} vs {:.0} versions/sec",
            mem_batched.per_sec, mem_serial.per_sec
        ));
    }
    Ok(())
}

/// Measures what one fsync actually costs here: a small append + fsync
/// loop on a scratch file in the same directory the benches journal to.
fn probe_fsync_ms() -> f64 {
    use std::io::Write;
    let path = xarch::storage::scratch_path("fsync-probe");
    let Ok(mut f) = std::fs::File::create(&path) else {
        return 0.0;
    };
    const ROUNDS: u32 = 16;
    let start = std::time::Instant::now();
    for _ in 0..ROUNDS {
        if f.write_all(&[0u8; 512]).is_err() || f.sync_data().is_err() {
            let _ = std::fs::remove_file(&path);
            return 0.0;
        }
    }
    let per = start.elapsed().as_secs_f64() * 1e3 / ROUNDS as f64;
    let _ = std::fs::remove_file(&path);
    per
}

/// One measured window of the concurrency experiment: `threads` reader
/// threads each pin a snapshot off `handle` and stream whole versions
/// (bounded by their own pin) in a tight loop until the window closes;
/// with `churn`, one extra thread merges documents through the same
/// handle the whole time, so every read races live publications. Returns
/// the total reads completed.
fn snapshot_read_window(
    handle: &xarch::ArchiveHandle,
    threads: usize,
    window: std::time::Duration,
    churn: Option<&[Document]>,
) -> u64 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use xarch::StoreReader;

    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    std::thread::scope(|s| {
        if let Some(docs) = churn {
            let writer = handle.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    writer
                        .add_version(&docs[i % docs.len()])
                        .expect("churn merge");
                    i += 1;
                }
            });
        }
        for t in 0..threads {
            let snap = handle.snapshot();
            let stop = &stop;
            let total = &total;
            s.spawn(move || {
                let latest = snap.pinned();
                let mut sink = Vec::new();
                let mut v = 1 + (t as u32 % latest);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    sink.clear();
                    snap.retrieve_into(v, &mut sink).expect("read");
                    v = v % latest + 1;
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed)
}

/// Concurrency: snapshot read throughput as reader threads scale 1→8 —
/// the shared-read API's headline property. Each thread clones the
/// `ArchiveHandle`, pins a snapshot, and streams whole versions in a
/// tight loop for a fixed wall-clock window; reads are wait-free (one
/// atomic load finds the published instance, no lock is ever awaited), so
/// throughput should scale with the thread count until the memory system
/// saturates. Measured on the in-memory backend, on the durable wrapper
/// (whose reads bypass the journal entirely), and — the publication
/// protocol's signature row — on the in-memory backend with a **writer
/// continuously merging**: queued merges divert readers to the passive
/// instance instead of blocking them, so the curve should track the
/// writer-idle one instead of flattening to the merge rate.
pub fn fig_concurrency(scale: &Scale) {
    use std::time::Duration;
    use xarch::storage::scratch_path;
    use xarch::ArchiveHandle;

    const WINDOW: Duration = Duration::from_millis(120);

    // speedup is bounded by the machine: on a single hardware thread the
    // curve is flat (the interesting signal there is that it does not
    // *degrade* — readers never block each other, writer active or not)
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "## Concurrency: snapshot read throughput vs reader threads \
         (OMIM-like, 10 versions, {cores} hardware threads)"
    );
    println!("backend,threads,total_reads,reads_per_sec,speedup_vs_1");
    let spec = omim_spec();
    let versions = OmimGen::new(0x5EED).sequence(scale.omim_records / 3, 10);

    let configs: Vec<(&str, Option<std::path::PathBuf>, bool)> = vec![
        ("in-memory", None, false),
        ("durable", Some(scratch_path("bench-concurrency")), false),
        ("in-memory+writer", None, true),
    ];
    for (label, path, writer_active) in configs {
        let store = match &path {
            None => ArchiveBuilder::new(spec.clone()).build(),
            Some(p) => ArchiveBuilder::new(spec.clone())
                .durable(p)
                .try_build()
                .expect("durable store"),
        };
        let handle = ArchiveHandle::new(store);
        for d in &versions {
            handle.add_version(d).expect("merge");
        }
        let mut baseline = 0.0;
        for threads in 1..=8usize {
            let churn = writer_active.then_some(versions.as_slice());
            let reads = snapshot_read_window(&handle, threads, WINDOW, churn);
            let per_sec = reads as f64 / WINDOW.as_secs_f64();
            if threads == 1 {
                baseline = per_sec;
            }
            println!(
                "{label},{threads},{reads},{per_sec:.0},{:.2}",
                per_sec / baseline.max(1.0)
            );
        }
        drop(handle);
        if let Some(p) = path {
            let _ = std::fs::remove_file(p);
        }
    }
    println!();
}

/// CI gate over the concurrency figure: snapshot reads must be genuinely
/// wait-free. Fails if 8 reader threads are slower than half of one
/// reader (readers blocking each other), if an actively-merging writer
/// collapses 8-reader throughput by more than 4x (readers queueing behind
/// the writer — the failure mode of a global writer-priority RwLock), or,
/// on machines with ≥ 4 hardware threads, if 8 readers racing a live
/// writer fail to out-read a single writer-idle reader (no scaling past
/// one thread). Margins are deliberately loose: real schedulers jitter,
/// and regressions here are order-of-magnitude events, not percentages.
pub fn concurrency_sanity(scale: &Scale) -> Result<(), String> {
    use std::time::Duration;
    use xarch::ArchiveHandle;

    const WINDOW: Duration = Duration::from_millis(150);
    const THREADS: usize = 8;

    let spec = omim_spec();
    let versions = OmimGen::new(0x5EED).sequence((scale.omim_records / 6).max(20), 10);
    let handle = ArchiveHandle::new(ArchiveBuilder::new(spec).build());
    for d in &versions {
        handle.add_version(d).map_err(|e| e.to_string())?;
    }

    // warm caches and the thread pool before any measured window
    let _ = snapshot_read_window(&handle, 1, WINDOW / 4, None);
    let single = snapshot_read_window(&handle, 1, WINDOW, None);
    let idle = snapshot_read_window(&handle, THREADS, WINDOW, None);
    let busy = snapshot_read_window(&handle, THREADS, WINDOW, Some(&versions));
    if single == 0 || idle == 0 || busy == 0 {
        return Err(format!(
            "readers must make progress in every mode: single={single}, \
             idle-8={idle}, writer-active-8={busy}"
        ));
    }
    if idle * 2 < single {
        return Err(format!(
            "8 idle readers completed fewer than half of one reader's reads \
             ({idle} vs {single}) — readers are contending with each other"
        ));
    }
    if busy * 4 < idle {
        return Err(format!(
            "an active writer collapsed 8-reader throughput more than 4x \
             ({busy} vs {idle}) — readers are queueing behind merges"
        ));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 && busy < single {
        return Err(format!(
            "with {cores} hardware threads, 8 readers racing a live writer \
             ({busy} reads) should out-read one writer-idle reader ({single})"
        ));
    }
    Ok(())
}

/// Starts an `xarch-server` over an OMIM-shaped archive seeded with 10
/// versions, returning the running server and the version documents
/// (reused as churn fodder by the concurrent-ingest mode).
fn start_service(scale: &Scale) -> (xarch_server::RunningServer, Vec<Document>) {
    use xarch_server::{Server, ServerConfig};
    // the same spec omim_spec() parses, as config `spec =` lines
    let mut config = String::from("listen = 127.0.0.1:0\nworkers = 8\nindexed = true\n");
    for line in [
        "(/, (ROOT, {}))",
        "(/ROOT, (Record, {Num}))",
        "(/ROOT/Record, (Title, {}))",
        "(/ROOT/Record, (AlternativeTitle, {\\e}))",
        "(/ROOT/Record, (Text, {}))",
        "(/ROOT/Record, (Contributors, {Name, CNtype, Date/Month, Date/Day, Date/Year}))",
        "(/ROOT/Record/Contributors, (Date, {}))",
        "(/ROOT/Record, (Creation_Date, {Name, Date/Month, Date/Day, Date/Year}))",
        "(/ROOT/Record/Creation_Date, (Date, {}))",
    ] {
        config.push_str(&format!("spec = {line}\n"));
    }
    let cfg = ServerConfig::from_text(&config).expect("bench server config");
    let server = Server::start(cfg).expect("bench server starts");
    let docs = OmimGen::new(0x5EED).sequence(scale.omim_records / 3, 10);
    server.handle().add_versions(&docs).expect("seed versions");
    (server, docs)
}

/// One measurement window against a running server: `conns` client
/// threads stream `retrieve` requests over their own sockets; when
/// `churn` is set a curator thread keeps landing merges through the
/// served handle the whole time. Returns requests completed.
fn service_window(
    server: &xarch_server::RunningServer,
    conns: usize,
    churn: bool,
    docs: &[Document],
    window: std::time::Duration,
) -> u64 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use xarch_proto::{Client, Lease};

    let addr = server.addr();
    let latest = server.handle().latest();
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    std::thread::scope(|s| {
        if churn {
            let writer = server.handle().clone();
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    writer
                        .add_version(&docs[i % docs.len()])
                        .expect("churn merge");
                    i += 1;
                }
            });
        }
        for t in 0..conns {
            let stop = &stop;
            let total = &total;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("bench client connects");
                let mut v = 1 + (t as u32 % latest);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let doc = client
                        .retrieve(Lease::FRESH, v)
                        .expect("retrieve over wire");
                    assert!(doc.is_some(), "seeded version {v} must be archived");
                    v = v % latest + 1;
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed)
}

/// Service: network query throughput as client connections scale 1→8,
/// idle vs with a curator ingesting concurrently — the serving story's
/// headline property. Every request costs a frame round-trip and a
/// fresh snapshot pin, and the concurrent-ingest rows show what a
/// single writer landing merges does to read latency (reads never
/// block: the handle is single-writer / multi-reader).
pub fn fig_service(scale: &Scale) {
    const WINDOW: std::time::Duration = std::time::Duration::from_millis(120);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "## Service: network queries/sec vs client connections, idle vs \
         concurrent ingest (OMIM-like, 10 versions, {cores} hardware threads)"
    );
    println!("mode,connections,requests,requests_per_sec,speedup_vs_1");
    let (server, docs) = start_service(scale);
    for (mode, churn) in [("idle", false), ("concurrent-ingest", true)] {
        let mut baseline = 0.0;
        for conns in [1usize, 2, 4, 8] {
            let requests = service_window(&server, conns, churn, &docs, WINDOW);
            let per_sec = requests as f64 / WINDOW.as_secs_f64();
            if conns == 1 {
                baseline = per_sec;
            }
            println!(
                "{mode},{conns},{requests},{per_sec:.0},{:.2}",
                per_sec / baseline.max(1.0)
            );
        }
    }
    println!();
}

/// The service acceptance gate: with 4 client connections, queries/sec
/// during concurrent ingest must not collapse more than 5× below the
/// idle rate — a writer landing merges may tax readers, but it must
/// never starve them — and both rates must be nonzero.
pub fn service_sanity(scale: &Scale) -> Result<(), String> {
    const WINDOW: std::time::Duration = std::time::Duration::from_millis(200);
    const CONNS: usize = 4;
    let (server, docs) = start_service(scale);
    // warm the pool and the caches before either measured window
    let _ = service_window(&server, CONNS, false, &docs, WINDOW / 4);
    let idle = service_window(&server, CONNS, false, &docs, WINDOW);
    let busy = service_window(&server, CONNS, true, &docs, WINDOW);
    if idle == 0 || busy == 0 {
        return Err(format!(
            "service must answer queries in both modes: idle={idle}, concurrent-ingest={busy}"
        ));
    }
    let ratio = idle as f64 / busy as f64;
    if ratio > 5.0 {
        return Err(format!(
            "query throughput collapsed {ratio:.1}x under concurrent ingest \
             (idle={idle} vs busy={busy} requests in {WINDOW:?})"
        ));
    }
    Ok(())
}

/// Runs one experiment by id ("7", "11a", ..., "claims", "extmem",
/// "index", "queries", "ablation", "durability", "concurrency",
/// "ingest", "service") or "all".
pub fn run(fig: &str, scale: &Scale) -> bool {
    match fig {
        "7" => fig7(scale),
        "11a" => fig11a(scale),
        "11b" => fig11b(scale),
        "12a" => fig12a(scale),
        "12b" => fig12b(scale),
        "13" => fig13(scale),
        "14" => fig14(scale),
        "c1" => fig_c1(scale),
        "c2" => fig_c2(scale),
        "claims" => claims(scale),
        "extmem" => fig_extmem(scale),
        "backends" => fig_backends(scale),
        "index" => fig_index(scale),
        "queries" => fig_queries(scale),
        "ablation" => fig_ablation(scale),
        "durability" => fig_durability(scale),
        "concurrency" => fig_concurrency(scale),
        "ingest" => fig_ingest(scale),
        "service" => fig_service(scale),
        "all" => {
            for f in [
                "7",
                "11a",
                "11b",
                "12a",
                "12b",
                "13",
                "14",
                "c1",
                "c2",
                "claims",
                "extmem",
                "backends",
                "index",
                "queries",
                "ablation",
                "durability",
                "concurrency",
                "ingest",
                "service",
            ] {
                run(f, scale);
            }
        }
        _ => return false,
    }
    true
}

/// Verifies that one table-driven property of each headline figure holds —
/// used by integration tests so figure regressions fail CI, not just eyes.
pub fn sanity(scale: &Scale) -> Result<(), String> {
    // Fig 11: cumulative diffs overtake incremental diffs.
    let rows = size_series(
        &omim_versions(scale),
        &omim_spec(),
        SeriesOptions {
            compress_every: scale.omim_versions,
            with_cumulative: true,
            with_concat: false,
        },
    );
    let last = rows.last().ok_or("no rows")?;
    if last.cumu_bytes <= last.inc_bytes {
        return Err("cumulative diffs should exceed incremental diffs".into());
    }
    // Fig 12: xmill(archive) beats gzip(inc diffs).
    let (Some(xa), Some(gi)) = (last.xmill_archive, last.gzip_inc) else {
        return Err("compression not sampled".into());
    };
    if xa >= gi {
        return Err(format!("xmill(archive)={xa} should beat gzip(inc)={gi}"));
    }
    Ok(())
}
