//! The analysis driver: walks sources, runs the rules in their configured
//! scopes, detects `#[cfg(test)]` regions, resolves `xarch-allow`
//! suppressions, and runs the crate-level api-contract pass.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{Config, Rule};
use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::rules::{self, FileCtx, RawDiag};

/// One source file handed to [`analyze_sources`]: workspace-relative
/// `/`-separated path plus contents.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

/// A finding, positioned rustc-style.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// `Some(reason)` when an `xarch-allow` comment suppressed it.
    pub suppressed: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// An `xarch-allow` comment found in a file, with its usage outcome.
#[derive(Debug, Clone)]
pub struct SuppressionRecord {
    pub file: String,
    pub line: u32,
    pub rules: Vec<Rule>,
    pub reason: String,
    pub used: bool,
}

/// An `unsafe` site in the workspace inventory.
#[derive(Debug, Clone)]
pub struct UnsafeRecord {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub documented: bool,
}

/// The result of one analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by (file, line, col, rule); includes
    /// suppressed ones (with `suppressed = Some(reason)`).
    pub diagnostics: Vec<Diagnostic>,
    pub suppressions: Vec<SuppressionRecord>,
    pub unsafe_sites: Vec<UnsafeRecord>,
    pub files_scanned: usize,
}

impl Analysis {
    /// The findings that gate CI: everything not suppressed.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_none())
    }

    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }

    pub fn suppressed_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.suppressed.is_some())
            .count()
    }
}

/// The crate a workspace-relative path belongs to, as a display key:
/// `crates/<name>` for member crates, `xarch (root)` for `src/`,
/// `examples/`, `tests/`, `benches/`.
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return format!("crates/{name}");
        }
    }
    "xarch (root)".to_string()
}

/// Marks every token inside a `#[test]` / `#[cfg(test)]` item (including
/// the attribute itself and the item's full body).
fn test_flags(toks: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // collect the attribute's identifiers up to its closing `]`
        let mut j = i + 2;
        let mut depth = 1u32;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
            } else if toks[j].kind == TokKind::Ident {
                idents.push(toks[j].text.as_str());
            }
            j += 1;
        }
        let is_test_attr = idents.as_slice() == ["test"]
            || (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"));
        if !is_test_attr {
            i = j;
            continue;
        }
        // skip any further attributes on the same item
        let mut k = j;
        while toks.get(k).is_some_and(|t| t.is_punct('#'))
            && toks.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut d = 1u32;
            k += 2;
            while k < toks.len() && d > 0 {
                if toks[k].is_punct('[') {
                    d += 1;
                } else if toks[k].is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        // the item extends to its body's closing `}` (or a bare `;`)
        let mut end = k;
        while end < toks.len() && !toks[end].is_punct('{') && !toks[end].is_punct(';') {
            end += 1;
        }
        if end < toks.len() && toks[end].is_punct('{') {
            let mut d = 1u32;
            end += 1;
            while end < toks.len() && d > 0 {
                if toks[end].is_punct('{') {
                    d += 1;
                } else if toks[end].is_punct('}') {
                    d -= 1;
                }
                end += 1;
            }
        } else if end < toks.len() {
            end += 1; // include the `;`
        }
        for f in flags.iter_mut().take(end.min(toks.len())).skip(i) {
            *f = true;
        }
        i = end;
    }
    flags
}

/// A parsed `xarch-allow` comment, before resolution.
struct PendingSuppression {
    line: u32,
    rules: Vec<Rule>,
    reason: String,
    used: bool,
}

/// Parses `xarch-allow: <rule>[,<rule>…] -- <reason>` comments. Malformed
/// ones (missing reason separator, empty reason, unknown rule name) become
/// `suppression`-rule diagnostics immediately.
fn parse_suppressions(comments: &[Comment]) -> (Vec<PendingSuppression>, Vec<(Rule, RawDiag)>) {
    let mut pending = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        // Only a comment *starting* with the marker is a suppression
        // attempt; prose that merely mentions `xarch-allow` is not.
        let text = c.text.trim();
        if !text.starts_with("xarch-allow") {
            continue;
        }
        let malformed = |msg: String| {
            (
                Rule::Suppression,
                RawDiag {
                    line: c.line,
                    col: c.col,
                    message: msg,
                },
            )
        };
        let rest = &text["xarch-allow".len()..];
        let Some(rest) = rest.strip_prefix(':') else {
            diags.push(malformed(
                "malformed suppression: expected `xarch-allow: <rule> -- <reason>`".into(),
            ));
            continue;
        };
        let Some((rule_list, reason)) = rest.split_once("--") else {
            diags.push(malformed(
                "malformed suppression: missing ` -- <reason>` (every exemption must say why)"
                    .into(),
            ));
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            diags.push(malformed(
                "malformed suppression: empty reason (every exemption must say why)".into(),
            ));
            continue;
        }
        let mut rules = Vec::new();
        let mut bad = false;
        for name in rule_list.split(',') {
            let name = name.trim();
            match Rule::parse(name) {
                Some(r) => rules.push(r),
                None => {
                    diags.push(malformed(format!(
                        "malformed suppression: unknown rule `{name}` (rules: {})",
                        Rule::CHECKABLE
                            .iter()
                            .map(|r| r.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )));
                    bad = true;
                }
            }
        }
        if bad || rules.is_empty() {
            continue;
        }
        pending.push(PendingSuppression {
            line: c.line,
            rules,
            reason: reason.to_string(),
            used: false,
        });
    }
    (pending, diags)
}

/// Per-file intermediate state feeding the crate-level pass.
struct FileAnalysis {
    path: String,
    diags: Vec<(Rule, RawDiag)>,
    suppressions: Vec<PendingSuppression>,
    api_facts: rules::ApiFacts,
}

/// Runs the full analysis over in-memory sources. Paths must be
/// workspace-relative and `/`-separated; files matching `config.skip`
/// prefixes are ignored.
pub fn analyze_sources(files: &[SourceFile], config: &Config) -> Analysis {
    let mut per_file = Vec::new();
    let mut unsafe_sites = Vec::new();
    let mut scanned = 0usize;

    for f in files {
        if config.skip.iter().any(|p| f.path.starts_with(p.as_str())) {
            continue;
        }
        scanned += 1;
        let lexed = lex(&f.text);
        let in_test = test_flags(&lexed.toks);
        let ctx = FileCtx {
            toks: &lexed.toks,
            in_test: &in_test,
            comments: &lexed.comments,
        };
        let (suppressions, mut diags) = parse_suppressions(&lexed.comments);
        let mut api_facts = rules::ApiFacts::default();
        for rule in Rule::CHECKABLE {
            let Some(scope) = config.scope(rule) else {
                continue;
            };
            if !scope.matches(&f.path) {
                continue;
            }
            match rule {
                Rule::PanicFreedom => {
                    diags.extend(rules::panic_freedom(&ctx).into_iter().map(|d| (rule, d)));
                }
                Rule::LockDiscipline => {
                    diags.extend(rules::lock_discipline(&ctx).into_iter().map(|d| (rule, d)));
                }
                Rule::CastSafety => {
                    diags.extend(rules::cast_safety(&ctx).into_iter().map(|d| (rule, d)));
                }
                Rule::ApiContract => {
                    let (ds, facts) = rules::api_contract(&ctx);
                    diags.extend(ds.into_iter().map(|d| (rule, d)));
                    api_facts = facts;
                }
                Rule::UnsafeAudit => {
                    let (ds, sites) = rules::unsafe_audit(&ctx);
                    diags.extend(ds.into_iter().map(|d| (rule, d)));
                    unsafe_sites.extend(sites.into_iter().map(|s| UnsafeRecord {
                        file: f.path.clone(),
                        line: s.line,
                        col: s.col,
                        documented: s.documented,
                    }));
                }
                Rule::ObsDiscipline => {
                    diags.extend(rules::obs_discipline(&ctx).into_iter().map(|d| (rule, d)));
                }
                Rule::Suppression => {}
            }
        }
        per_file.push(FileAnalysis {
            path: f.path.clone(),
            diags,
            suppressions,
            api_facts,
        });
    }

    // Crate-level api-contract pass: every `impl VersionStore for T` needs
    // an `assert_send_sync::<T>()` somewhere in the same crate.
    if config.scope(Rule::ApiContract).is_some() {
        let mut asserted: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for fa in &per_file {
            asserted
                .entry(crate_of(&fa.path))
                .or_default()
                .extend(fa.api_facts.send_sync_assertions.iter().cloned());
        }
        let mut extra: Vec<(usize, (Rule, RawDiag))> = Vec::new();
        for (idx, fa) in per_file.iter().enumerate() {
            let krate = crate_of(&fa.path);
            let have = asserted.get(&krate).map(Vec::as_slice).unwrap_or(&[]);
            for vs in &fa.api_facts.version_store_impls {
                if !have.contains(&vs.type_name) {
                    extra.push((
                        idx,
                        (
                            Rule::ApiContract,
                            RawDiag {
                                line: vs.line,
                                col: vs.col,
                                message: format!(
                                    "`VersionStore` impl for `{ty}` has no \
                                     `assert_send_sync::<{ty}>()` static assertion in `{krate}` \
                                     — the handle layer shares stores across threads",
                                    ty = vs.type_name
                                ),
                            },
                        ),
                    ));
                }
            }
        }
        for (idx, d) in extra {
            per_file[idx].diags.push(d);
        }
    }

    // Suppression resolution: an allow on line L covers findings on L (a
    // trailing comment) and on L+1 (a comment directly above the code).
    let mut diagnostics = Vec::new();
    let mut suppression_records = Vec::new();
    for fa in &mut per_file {
        for (rule, raw) in std::mem::take(&mut fa.diags) {
            let mut reason = None;
            if rule != Rule::Suppression {
                for s in fa.suppressions.iter_mut() {
                    if s.rules.contains(&rule) && (s.line == raw.line || s.line + 1 == raw.line) {
                        s.used = true;
                        reason = Some(s.reason.clone());
                        break;
                    }
                }
            }
            diagnostics.push(Diagnostic {
                rule,
                file: fa.path.clone(),
                line: raw.line,
                col: raw.col,
                message: raw.message,
                suppressed: reason,
            });
        }
        for s in &fa.suppressions {
            if !s.used {
                diagnostics.push(Diagnostic {
                    rule: Rule::Suppression,
                    file: fa.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "unused `xarch-allow` suppression for `{}` — nothing on this or the \
                         next line triggers it; remove it",
                        s.rules
                            .iter()
                            .map(|r| r.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    suppressed: None,
                });
            }
            suppression_records.push(SuppressionRecord {
                file: fa.path.clone(),
                line: s.line,
                rules: s.rules.clone(),
                reason: s.reason.clone(),
                used: s.used,
            });
        }
    }

    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    unsafe_sites.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    Analysis {
        diagnostics,
        suppressions: suppression_records,
        unsafe_sites,
        files_scanned: scanned,
    }
}

/// Collects every `.rs` file under `root` (workspace-relative paths,
/// sorted), honoring `config.skip` and skipping hidden directories.
pub fn workspace_files(root: &Path, config: &Config) -> io::Result<Vec<SourceFile>> {
    let mut rel_paths = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = rel_of(root, &path);
            if entry.file_type()?.is_dir() {
                let rel_dir = format!("{rel}/");
                if name.starts_with('.')
                    || name == "target"
                    || config.skip.iter().any(|p| rel_dir.starts_with(p.as_str()))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs")
                && !config.skip.iter().any(|p| rel.starts_with(p.as_str()))
            {
                rel_paths.push((rel, path));
            }
        }
    }
    rel_paths.sort();
    let mut out = Vec::with_capacity(rel_paths.len());
    for (rel, abs) in rel_paths {
        out.push(SourceFile {
            path: rel,
            text: fs::read_to_string(&abs)?,
        });
    }
    Ok(out)
}

fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs the analysis over every `.rs` file under `root`.
pub fn analyze_workspace(root: &Path, config: &Config) -> io::Result<Analysis> {
    let files = workspace_files(root, config)?;
    Ok(analyze_sources(&files, config))
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: Rule, path: &str, src: &str) -> Vec<Diagnostic> {
        let files = [SourceFile {
            path: path.into(),
            text: src.into(),
        }];
        analyze_sources(&files, &Config::single(rule)).diagnostics
    }

    #[test]
    fn test_regions_are_exempt_from_panic_freedom() {
        let src = r#"
fn decode(buf: &[u8]) -> u8 { buf[0] }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1u8];
        assert_eq!(v[0], 1);
        v.get(0).unwrap();
    }
}
"#;
        let diags = run(Rule::PanicFreedom, "a.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(b: &[u8]) -> u8 { b[0] }\n";
        let diags = run(Rule::PanicFreedom, "a.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn suppression_covers_same_and_next_line_and_is_counted() {
        let src = "// xarch-allow: cast-safety -- bounded by construction\n\
                   fn f(x: u64) -> u32 { x as u32 }\n\
                   fn g(x: u64) -> u32 { x as u32 } // xarch-allow: cast-safety -- same line\n";
        let files = [SourceFile {
            path: "a.rs".into(),
            text: src.into(),
        }];
        let a = analyze_sources(&files, &Config::single(Rule::CastSafety));
        assert_eq!(a.violation_count(), 0, "{:?}", a.diagnostics);
        assert_eq!(a.suppressed_count(), 2);
        assert!(a.suppressions.iter().all(|s| s.used));
    }

    #[test]
    fn unused_and_malformed_suppressions_are_violations() {
        let src = "// xarch-allow: cast-safety -- nothing here triggers it\n\
                   fn f() {}\n\
                   // xarch-allow: cast-safety\n\
                   // xarch-allow: no-such-rule -- reason\n";
        let files = [SourceFile {
            path: "a.rs".into(),
            text: src.into(),
        }];
        let a = analyze_sources(&files, &Config::single(Rule::CastSafety));
        let msgs: Vec<_> = a.violations().map(|d| d.message.clone()).collect();
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("unused")));
        assert!(msgs.iter().any(|m| m.contains("missing ` -- <reason>`")));
        assert!(msgs.iter().any(|m| m.contains("unknown rule")));
    }

    #[test]
    fn version_store_assertion_is_checked_per_crate() {
        let with = SourceFile {
            path: "crates/a/src/lib.rs".into(),
            text: "impl VersionStore for Good {}\nfn t() { assert_send_sync::<Good>(); }\n".into(),
        };
        let without = SourceFile {
            path: "crates/b/src/lib.rs".into(),
            text: "impl VersionStore for Bad {}\n".into(),
        };
        let a = analyze_sources(&[with, without], &Config::single(Rule::ApiContract));
        let v: Vec<_> = a.violations().collect();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Bad"));
        assert_eq!(v[0].file, "crates/b/src/lib.rs");
    }

    #[test]
    fn skip_prefixes_exclude_files_entirely() {
        let files = [SourceFile {
            path: "vendor/rand/src/lib.rs".into(),
            text: "fn f(b: &[u8]) -> u8 { b.first().copied().unwrap() }".into(),
        }];
        let a = analyze_sources(&files, &Config::single(Rule::PanicFreedom));
        assert_eq!(a.files_scanned, 0);
        assert!(a.diagnostics.is_empty());
    }
}
