//! The five invariant rules, as token-sequence lints.
//!
//! Each rule is a pure function from a lexed file to raw findings
//! (line/col/message). The engine decides scope (which paths a rule binds
//! to), test-region exemptions, and suppression handling; rules only
//! recognize patterns.

use crate::config::Rule;
use crate::lexer::{Comment, Tok, TokKind};

/// One raw finding before scope/suppression processing.
#[derive(Debug, Clone)]
pub struct RawDiag {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

fn diag(tok: &Tok, message: impl Into<String>) -> RawDiag {
    RawDiag {
        line: tok.line,
        col: tok.col,
        message: message.into(),
    }
}

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    pub toks: &'a [Tok],
    /// Aligned with `toks`: true inside `#[cfg(test)]` / `#[test]` items.
    pub in_test: &'a [bool],
    pub comments: &'a [Comment],
}

impl FileCtx<'_> {
    fn skip(&self, rule: Rule, i: usize) -> bool {
        !rule.applies_in_tests() && self.in_test.get(i).copied().unwrap_or(false)
    }
}

/// Identifiers that may precede `[` without forming an index expression
/// (`return [..]`, `for x in [..]`, `match [..]`, …).
const NON_INDEX_KEYWORDS: [&str; 20] = [
    "return", "in", "break", "continue", "if", "else", "match", "loop", "while", "for", "let",
    "as", "move", "ref", "mut", "where", "use", "pub", "const", "static",
];

/// Rule 1 — **panic-freedom**: decode/recovery code must never panic on
/// untrusted bytes. Bans `.unwrap()`, `.expect(..)`, `panic!`,
/// `unreachable!`, `todo!`, `unimplemented!`, and slice/array indexing
/// (which panics out of bounds); `debug_assert!` is allowed (it compiles
/// out of release builds and documents invariants).
pub fn panic_freedom(ctx: &FileCtx<'_>) -> Vec<RawDiag> {
    let t = ctx.toks;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if ctx.skip(Rule::PanicFreedom, i) {
            continue;
        }
        // .unwrap() — but not .unwrap_or(..) and friends
        if t[i].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_ident("unwrap"))
            && t.get(i + 2).is_some_and(|x| x.is_punct('('))
            && t.get(i + 3).is_some_and(|x| x.is_punct(')'))
        {
            out.push(diag(
                &t[i + 1],
                "`.unwrap()` in a decode/recovery path — corrupt input must surface as a \
                 positioned `StoreError::Corrupt`, never a panic",
            ));
        }
        // .expect(..)
        if t[i].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_ident("expect"))
            && t.get(i + 2).is_some_and(|x| x.is_punct('('))
        {
            out.push(diag(
                &t[i + 1],
                "`.expect(..)` in a decode/recovery path — return a positioned error instead \
                 of panicking",
            ));
        }
        // panicking macros
        if t[i].kind == TokKind::Ident
            && matches!(
                t[i].text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && t.get(i + 1).is_some_and(|x| x.is_punct('!'))
        {
            out.push(diag(
                &t[i],
                format!(
                    "`{}!` in a decode/recovery path — corrupt input must produce an error, \
                     not a panic",
                    t[i].text
                ),
            ));
        }
        // slice/array indexing: `expr[..]` panics out of bounds
        if t[i].is_punct('[') && i > 0 {
            let prev = &t[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                _ => false,
            };
            if indexes {
                out.push(diag(
                    &t[i],
                    "slice/array indexing can panic on corrupt input — use `.get(..)` and map \
                     `None` to a positioned error",
                ));
            }
        }
    }
    out
}

/// Rule 3 — **cast-safety**: `as` casts to narrower (or
/// platform-dependent) integer types silently truncate; offset/length
/// arithmetic must use `try_into()`/`usize::try_from` and surface failures
/// as errors. Widening casts (`as u64`) are allowed.
pub fn cast_safety(ctx: &FileCtx<'_>) -> Vec<RawDiag> {
    const NARROWING: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];
    let t = ctx.toks;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if ctx.skip(Rule::CastSafety, i) {
            continue;
        }
        if t[i].is_ident("as") {
            if let Some(ty) = t.get(i + 1) {
                if ty.kind == TokKind::Ident && NARROWING.contains(&ty.text.as_str()) {
                    out.push(diag(
                        &t[i],
                        format!(
                            "truncating `as {}` cast on offset/length arithmetic — use \
                             `try_into()`/`{}::try_from` and handle the failure",
                            ty.text, ty.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

const GUARD_ACQUIRERS: [&str; 3] = ["read", "write", "lock"];
const SYNC_CALLS: [&str; 4] = ["sync_all", "sync_data", "fsync", "fdatasync"];

/// Rule 2 — **lock-discipline**: a `let`-bound `RwLock`/`Mutex` guard must
/// not stay live across an fsync (`sync_all`/`sync_data`/`fsync`), a
/// `.snapshot()` construction, or a `publish(..)` call — a blocked reader
/// must never be waiting on the disk, and the snapshot-publication point
/// (the atomic flip that redirects every reader) must run with no stripe
/// or slot lock held. Detection: a `let` whose initializer *ends* in
/// `.read()` / `.write()` / `.lock()` (optionally followed by `?` /
/// `.unwrap()` / `.expect(..)`) binds a guard; any sync call, snapshot
/// construction, or publication before the binding's scope closes (or an
/// explicit `drop(guard)`) is a violation.
pub fn lock_discipline(ctx: &FileCtx<'_>) -> Vec<RawDiag> {
    let t = ctx.toks;
    let depth = brace_depths(t);
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if !t[i].is_ident("let") || ctx.skip(Rule::LockDiscipline, i) {
            i += 1;
            continue;
        }
        // binding name (skip `mut`; give up on destructuring patterns)
        let mut j = i + 1;
        if t.get(j).is_some_and(|x| x.is_ident("mut")) {
            j += 1;
        }
        let name = match t.get(j) {
            Some(x) if x.kind == TokKind::Ident => x.text.clone(),
            _ => {
                i += 1;
                continue;
            }
        };
        // the statement's terminating `;` at neutral nesting
        let Some(semi) = statement_end(t, i) else {
            i += 1;
            continue;
        };
        if !initializer_binds_guard(&t[i..semi]) {
            i += 1;
            continue;
        }
        // scan the guard's remaining scope
        let let_depth = depth[i];
        let mut k = semi + 1;
        while k < t.len() {
            if t[k].is_punct('}') && depth[k] <= let_depth {
                break; // scope closed
            }
            // explicit early drop ends liveness
            if t[k].is_ident("drop")
                && t.get(k + 1).is_some_and(|x| x.is_punct('('))
                && t.get(k + 2).is_some_and(|x| x.is_ident(&name))
                && t.get(k + 3).is_some_and(|x| x.is_punct(')'))
            {
                break;
            }
            if t[k].kind == TokKind::Ident
                && SYNC_CALLS.contains(&t[k].text.as_str())
                && t.get(k + 1).is_some_and(|x| x.is_punct('('))
            {
                out.push(diag(
                    &t[k],
                    format!(
                        "lock guard `{name}` is live across `{}()` — scope the guard so the \
                         fsync runs lock-free (readers must never wait on the disk)",
                        t[k].text
                    ),
                ));
            }
            if t[k].is_punct('.')
                && t.get(k + 1).is_some_and(|x| x.is_ident("snapshot"))
                && t.get(k + 2).is_some_and(|x| x.is_punct('('))
            {
                out.push(diag(
                    &t[k + 1],
                    format!(
                        "lock guard `{name}` is live across `.snapshot()` construction — \
                         pin snapshots off the published word, not from inside a locked \
                         section"
                    ),
                ));
            }
            if t[k].is_ident("publish") && t.get(k + 1).is_some_and(|x| x.is_punct('(')) {
                out.push(diag(
                    &t[k],
                    format!(
                        "lock guard `{name}` is live across `publish()` — the publication \
                         point redirects every reader with one atomic flip and must run \
                         with no stripe or slot lock held; drop the guard first"
                    ),
                ));
            }
            k += 1;
        }
        i = semi + 1;
    }
    out
}

/// Brace depth *before* each token.
fn brace_depths(t: &[Tok]) -> Vec<u32> {
    let mut out = Vec::with_capacity(t.len());
    let mut d = 0u32;
    for tok in t {
        out.push(d);
        if tok.is_punct('{') {
            d += 1;
        } else if tok.is_punct('}') {
            d = d.saturating_sub(1);
        }
    }
    out
}

/// Index of the `;` ending the statement starting at `start`, skipping
/// nested `(..)`, `[..]`, `{..}` groups.
fn statement_end(t: &[Tok], start: usize) -> Option<usize> {
    let mut nest = 0i32;
    for (k, tok) in t.iter().enumerate().skip(start) {
        if tok.kind == TokKind::Punct {
            match tok.text.as_bytes().first() {
                Some(b'(' | b'[' | b'{') => nest += 1,
                Some(b')' | b']' | b'}') => nest -= 1,
                Some(b';') if nest == 0 => return Some(k),
                _ => {}
            }
        }
    }
    None
}

/// Does a `let … ;` statement's initializer end in a lock acquisition?
/// The last `.read()`/`.write()`/`.lock()` must be followed only by
/// `?`, `.unwrap()`, or `.expect(..)` — anything else means a method was
/// called *on* the guard and the binding holds that result instead.
fn initializer_binds_guard(stmt: &[Tok]) -> bool {
    let mut acquired_at = None;
    for g in 0..stmt.len() {
        if stmt[g].is_punct('.')
            && stmt.get(g + 1).is_some_and(|x| {
                x.kind == TokKind::Ident && GUARD_ACQUIRERS.contains(&x.text.as_str())
            })
            && stmt.get(g + 2).is_some_and(|x| x.is_punct('('))
            && stmt.get(g + 3).is_some_and(|x| x.is_punct(')'))
        {
            acquired_at = Some(g + 4);
        }
    }
    let Some(mut p) = acquired_at else {
        return false;
    };
    while p < stmt.len() {
        if stmt[p].is_punct('?') {
            p += 1;
        } else if stmt[p].is_punct('.')
            && stmt.get(p + 1).is_some_and(|x| x.is_ident("unwrap"))
            && stmt.get(p + 2).is_some_and(|x| x.is_punct('('))
            && stmt.get(p + 3).is_some_and(|x| x.is_punct(')'))
        {
            p += 4;
        } else if stmt[p].is_punct('.')
            && stmt.get(p + 1).is_some_and(|x| x.is_ident("expect"))
            && stmt.get(p + 2).is_some_and(|x| x.is_punct('('))
        {
            let mut nest = 0i32;
            p += 2;
            while p < stmt.len() {
                if stmt[p].is_punct('(') {
                    nest += 1;
                } else if stmt[p].is_punct(')') {
                    nest -= 1;
                    if nest == 0 {
                        p += 1;
                        break;
                    }
                }
                p += 1;
            }
        } else {
            // further method calls: the binding is not a guard
            return false;
        }
    }
    true
}

/// Rule 6 — **obs-discipline**: library code must not time operations
/// with raw `Instant::now()` or log events with `eprintln!`/`eprint!` —
/// timing goes through `xarch_obs` histogram timers/spans (so the sample
/// lands in the registry) and events go through the `Tracer` (so they hit
/// the ring buffer and the configured sink). Test regions are exempt:
/// tests may stopwatch and print freely.
pub fn obs_discipline(ctx: &FileCtx<'_>) -> Vec<RawDiag> {
    let t = ctx.toks;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if ctx.skip(Rule::ObsDiscipline, i) {
            continue;
        }
        // Instant::now()
        if t[i].is_ident("Instant")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident("now"))
            && t.get(i + 4).is_some_and(|x| x.is_punct('('))
        {
            out.push(diag(
                &t[i],
                "raw `Instant::now()` timing in library code — use an `xarch_obs` \
                 histogram's `start_timer()` (or `Obs::span`) so the sample lands in \
                 the registry instead of a local variable",
            ));
        }
        // eprintln! / eprint!
        if t[i].kind == TokKind::Ident
            && matches!(t[i].text.as_str(), "eprintln" | "eprint")
            && t.get(i + 1).is_some_and(|x| x.is_punct('!'))
        {
            out.push(diag(
                &t[i],
                format!(
                    "`{}!` event logging in library code — emit a structured event \
                     through the `xarch_obs` `Tracer` so it reaches the ring buffer \
                     and the configured sink",
                    t[i].text
                ),
            ));
        }
    }
    out
}

/// A `VersionStore` impl found in a file (for the crate-level half of the
/// api-contract rule).
#[derive(Debug, Clone)]
pub struct VersionStoreImpl {
    pub type_name: String,
    pub line: u32,
    pub col: u32,
}

/// Per-file facts the api-contract rule reports to the crate-level pass.
#[derive(Debug, Default)]
pub struct ApiFacts {
    pub version_store_impls: Vec<VersionStoreImpl>,
    /// Type names appearing in `assert_send_sync::<T>()` calls.
    pub send_sync_assertions: Vec<String>,
}

/// Rule 4 — **api-contract**, per-file half: every method in an
/// `impl StoreReader for …` block takes `&self` (reads must be shareable),
/// and `impl VersionStore for …` sites are collected so the engine can
/// check each has an `assert_send_sync::<T>()` in its crate.
pub fn api_contract(ctx: &FileCtx<'_>) -> (Vec<RawDiag>, ApiFacts) {
    let t = ctx.toks;
    let mut out = Vec::new();
    let mut facts = ApiFacts::default();
    let mut i = 0;
    while i < t.len() {
        // assert_send_sync::<T>() — collect every ident inside the turbofish
        if t[i].is_ident("assert_send_sync")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_punct('<'))
        {
            let mut angle = 1i32;
            let mut k = i + 4;
            while k < t.len() && angle > 0 {
                if t[k].is_punct('<') {
                    angle += 1;
                } else if t[k].is_punct('>') {
                    angle -= 1;
                } else if t[k].kind == TokKind::Ident {
                    facts.send_sync_assertions.push(t[k].text.clone());
                }
                k += 1;
            }
            i = k;
            continue;
        }
        if !t[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // impl header: tokens up to the opening `{` (or `;`)
        let mut body_start = None;
        let mut header_end = i + 1;
        while header_end < t.len() {
            if t[header_end].is_punct('{') {
                body_start = Some(header_end + 1);
                break;
            }
            if t[header_end].is_punct(';') {
                break;
            }
            header_end += 1;
        }
        let header = &t[i + 1..header_end];
        let for_pos = header.iter().position(|x| x.is_ident("for"));
        let trait_mentions =
            |name: &str| for_pos.is_some_and(|f| header.iter().take(f).any(|x| x.is_ident(name)));
        let Some(body_start) = body_start else {
            i = header_end + 1;
            continue;
        };
        let body_end = matching_brace(t, body_start - 1);
        if trait_mentions("VersionStore") && !ctx.skip(Rule::ApiContract, i) {
            // the implementing type: first ident after `for`
            if let Some(f) = for_pos {
                if let Some(ty) = header
                    .iter()
                    .skip(f + 1)
                    .find(|x| x.kind == TokKind::Ident && !matches!(x.text.as_str(), "dyn" | "mut"))
                {
                    facts.version_store_impls.push(VersionStoreImpl {
                        type_name: ty.text.clone(),
                        line: t[i].line,
                        col: t[i].col,
                    });
                }
            }
        }
        if trait_mentions("StoreReader") && !ctx.skip(Rule::ApiContract, i) {
            // every fn in the block must take &self, not &mut self
            let mut k = body_start;
            while k < body_end {
                if t[k].is_ident("fn") {
                    let fn_tok = &t[k];
                    let fn_name = t.get(k + 1).map(|x| x.text.clone()).unwrap_or_default();
                    // scan the parameter list
                    let mut p = k;
                    while p < body_end && !t[p].is_punct('(') {
                        p += 1;
                    }
                    let params_end = matching_paren(t, p);
                    let mut q = p;
                    while q + 2 < params_end {
                        if t[q].is_punct('&')
                            && (t[q + 1].is_ident("mut") && t[q + 2].is_ident("self")
                                || t[q + 1].kind == TokKind::Lifetime
                                    && t[q + 2].is_ident("mut")
                                    && t.get(q + 3).is_some_and(|x| x.is_ident("self")))
                        {
                            out.push(diag(
                                fn_tok,
                                format!(
                                    "`StoreReader` impl method `{fn_name}` takes `&mut self` — \
                                     the shared-read contract requires `&self` receivers"
                                ),
                            ));
                            break;
                        }
                        q += 1;
                    }
                    k = params_end;
                }
                k += 1;
            }
        }
        i = body_start;
    }
    (out, facts)
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(t: &[Tok], open: usize) -> usize {
    let mut d = 0i32;
    for (k, tok) in t.iter().enumerate().skip(open) {
        if tok.is_punct('{') {
            d += 1;
        } else if tok.is_punct('}') {
            d -= 1;
            if d == 0 {
                return k;
            }
        }
    }
    t.len()
}

/// Index just past the `)` matching the `(` at `open`.
fn matching_paren(t: &[Tok], open: usize) -> usize {
    let mut d = 0i32;
    for (k, tok) in t.iter().enumerate().skip(open) {
        if tok.is_punct('(') {
            d += 1;
        } else if tok.is_punct(')') {
            d -= 1;
            if d == 0 {
                return k;
            }
        }
    }
    t.len()
}

/// One `unsafe` occurrence, for the generated inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
    pub col: u32,
    /// Whether a `// SAFETY:` comment accompanies it.
    pub documented: bool,
}

/// Rule 5 — **unsafe-audit**: every `unsafe` token (block, fn, impl,
/// trait) must carry a `// SAFETY:` comment on the same line or within the
/// three lines above it. Returns findings plus the full inventory
/// (documented sites included) for `report` mode.
pub fn unsafe_audit(ctx: &FileCtx<'_>) -> (Vec<RawDiag>, Vec<UnsafeSite>) {
    let mut out = Vec::new();
    let mut sites = Vec::new();
    for tok in ctx.toks {
        if !tok.is_ident("unsafe") {
            continue;
        }
        let documented = ctx.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && (c.line == tok.line || (c.end_line < tok.line && c.end_line + 3 >= tok.line))
        });
        sites.push(UnsafeSite {
            line: tok.line,
            col: tok.col,
            documented,
        });
        if !documented {
            out.push(diag(
                tok,
                "`unsafe` without a `// SAFETY:` comment — state the invariant that makes \
                 this sound (same line or within 3 lines above)",
            ));
        }
    }
    (out, sites)
}
