//! Rule identities and per-rule, per-path configuration.
//!
//! The project policy lives here as data: every rule carries a path scope
//! (prefix include/exclude lists over workspace-relative `/`-separated
//! paths), so invariants bind exactly where the architecture demands them
//! — panic-freedom on the decode/recovery modules, cast-safety on the
//! on-disk arithmetic, the contract rules everywhere.

/// The invariants the analyzer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!`/slice-indexing in decode/recovery code: corruption
    /// must surface as `StoreError::Corrupt`, never a panic.
    PanicFreedom,
    /// No `RwLock`/`Mutex` guard binding held across an
    /// `fsync`/`sync_all`/`sync_data` call or a `.snapshot()`
    /// construction: a reader stall must never wait on disk.
    LockDiscipline,
    /// No truncating `as` casts (to `u8`/`u16`/`u32`/`usize`/…) in
    /// offset/length arithmetic: use `try_into`/checked conversions.
    CastSafety,
    /// `StoreReader` impl methods take `&self`; every `VersionStore` impl
    /// has an `assert_send_sync::<T>()` static assertion in its crate.
    ApiContract,
    /// Every `unsafe` token carries a `// SAFETY:` comment.
    UnsafeAudit,
    /// No ad-hoc `Instant::now()` timing or `eprintln!`/`eprint!` event
    /// logging in non-test library code: operations are timed through
    /// `xarch_obs` timers/spans and events flow through the `Tracer`, so
    /// every measurement lands in the registry instead of vanishing into
    /// a local variable or the console.
    ObsDiscipline,
    /// Meta-rule: `xarch-allow` comments must be well-formed and used.
    Suppression,
}

impl Rule {
    /// The six path-scoped invariant rules (excludes the suppression
    /// meta-rule, which is always active).
    pub const CHECKABLE: [Rule; 6] = [
        Rule::PanicFreedom,
        Rule::LockDiscipline,
        Rule::CastSafety,
        Rule::ApiContract,
        Rule::UnsafeAudit,
        Rule::ObsDiscipline,
    ];

    /// The rule's stable name — used in diagnostics and in
    /// `// xarch-allow: <name> -- <reason>` suppression comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PanicFreedom => "panic-freedom",
            Rule::LockDiscipline => "lock-discipline",
            Rule::CastSafety => "cast-safety",
            Rule::ApiContract => "api-contract",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::ObsDiscipline => "obs-discipline",
            Rule::Suppression => "suppression",
        }
    }

    /// Parses a rule name as written in a suppression comment.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "panic-freedom" => Some(Rule::PanicFreedom),
            "lock-discipline" => Some(Rule::LockDiscipline),
            "cast-safety" => Some(Rule::CastSafety),
            "api-contract" => Some(Rule::ApiContract),
            "unsafe-audit" => Some(Rule::UnsafeAudit),
            "obs-discipline" => Some(Rule::ObsDiscipline),
            _ => None,
        }
    }

    /// Whether the rule also applies inside `#[cfg(test)]` / `#[test]`
    /// regions. Tests may unwrap and index freely; undocumented `unsafe`
    /// is never fine.
    pub fn applies_in_tests(self) -> bool {
        matches!(self, Rule::UnsafeAudit)
    }
}

/// A path scope: workspace-relative prefix matching. An empty `include`
/// list means "everywhere"; `exclude` wins over `include`.
#[derive(Debug, Clone, Default)]
pub struct PathFilter {
    pub include: Vec<String>,
    pub exclude: Vec<String>,
}

impl PathFilter {
    /// Scope matching everything.
    pub fn everywhere() -> Self {
        Self::default()
    }

    /// Scope matching only the given prefixes.
    pub fn only<I: IntoIterator<Item = S>, S: Into<String>>(prefixes: I) -> Self {
        Self {
            include: prefixes.into_iter().map(Into::into).collect(),
            exclude: Vec::new(),
        }
    }

    /// Whether `path` (workspace-relative, `/`-separated) is in scope.
    pub fn matches(&self, path: &str) -> bool {
        if self.exclude.iter().any(|p| path.starts_with(p.as_str())) {
            return false;
        }
        self.include.is_empty() || self.include.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// The analyzer's configuration: which rules run where, and which
/// directories are never scanned at all.
#[derive(Debug, Clone)]
pub struct Config {
    pub rules: Vec<(Rule, PathFilter)>,
    /// Path prefixes excluded from scanning entirely (vendored deps,
    /// build output, the analyzer's own intentionally-violating fixtures).
    pub skip: Vec<String>,
}

impl Config {
    /// The **project policy** — the scopes CI enforces on this workspace.
    ///
    /// * `panic-freedom` binds to the storage decode/recovery modules,
    ///   the external-memory event decoder, the wire-protocol crate, and
    ///   the server's request loop: every path a corrupted or hostile
    ///   byte can reach must answer with a typed error, never a panic —
    ///   on disk that is `StoreError::Corrupt`; on the wire it is a
    ///   `FrameError`/`DecodeError` or a structured error response.
    /// * `cast-safety` binds to the whole storage crate, where offsets and
    ///   lengths cross between `u64` file arithmetic and in-memory sizes.
    /// * `lock-discipline`, `api-contract` and `unsafe-audit` bind
    ///   workspace-wide.
    /// * `obs-discipline` binds to the library crates and the facade —
    ///   not to `crates/obs` (it *implements* the sanctioned timing), not
    ///   to `crates/analysis` (a CLI reporting to a console), not to
    ///   `crates/bench` (measurement harnesses own their stopwatches),
    ///   and not to the `xarch-server` binary entry point (startup and
    ///   usage errors go to stderr before any observability exists).
    ///   Examples and integration tests fall outside the include list.
    pub fn project_policy() -> Self {
        Self {
            rules: vec![
                (
                    Rule::PanicFreedom,
                    PathFilter::only([
                        "crates/storage/src/segment.rs",
                        "crates/storage/src/block.rs",
                        "crates/storage/src/payload.rs",
                        "crates/storage/src/superblock.rs",
                        "crates/storage/src/durable.rs",
                        "crates/storage/src/checkpoint.rs",
                        "crates/storage/src/cold.rs",
                        "crates/storage/src/mmap.rs",
                        "crates/extmem/src/events.rs",
                        "crates/proto/src/",
                        "crates/server/src/serve.rs",
                    ]),
                ),
                (Rule::LockDiscipline, PathFilter::everywhere()),
                (Rule::CastSafety, PathFilter::only(["crates/storage/src/"])),
                (Rule::ApiContract, PathFilter::everywhere()),
                (Rule::UnsafeAudit, PathFilter::everywhere()),
                (
                    Rule::ObsDiscipline,
                    PathFilter {
                        include: vec!["src/".into(), "crates/".into()],
                        exclude: vec![
                            "crates/obs/".into(),
                            "crates/analysis/".into(),
                            "crates/bench/".into(),
                            "crates/server/src/main.rs".into(),
                        ],
                    },
                ),
            ],
            skip: Self::default_skip(),
        }
    }

    /// One rule, scoped everywhere — what the golden-fixture tests use to
    /// exercise a single rule against a snippet.
    pub fn single(rule: Rule) -> Self {
        Self {
            rules: vec![(rule, PathFilter::everywhere())],
            skip: Self::default_skip(),
        }
    }

    fn default_skip() -> Vec<String> {
        [
            "vendor/",
            "target/",
            ".git/",
            // the fixtures violate rules on purpose
            "crates/analysis/tests/fixtures/",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    /// The scope for `rule`, if the rule is enabled.
    pub fn scope(&self, rule: Rule) -> Option<&PathFilter> {
        self.rules.iter().find(|(r, _)| *r == rule).map(|(_, f)| f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_filter_prefix_semantics() {
        let f = PathFilter::only(["crates/storage/src/"]);
        assert!(f.matches("crates/storage/src/block.rs"));
        assert!(!f.matches("crates/extmem/src/events.rs"));
        assert!(PathFilter::everywhere().matches("anything/at/all.rs"));
        let mut f = PathFilter::everywhere();
        f.exclude.push("vendor/".into());
        assert!(!f.matches("vendor/rand/src/lib.rs"));
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::CHECKABLE {
            assert_eq!(Rule::parse(r.name()), Some(r));
        }
        assert_eq!(Rule::parse("no-such-rule"), None);
    }

    #[test]
    fn policy_scopes_bind_where_the_architecture_demands() {
        let p = Config::project_policy();
        let pf = p.scope(Rule::PanicFreedom).unwrap();
        assert!(pf.matches("crates/storage/src/block.rs"));
        assert!(pf.matches("crates/extmem/src/events.rs"));
        assert!(pf.matches("crates/proto/src/msg.rs"), "wire decode paths");
        assert!(pf.matches("crates/proto/src/frame.rs"));
        assert!(pf.matches("crates/server/src/serve.rs"), "request loop");
        assert!(
            !pf.matches("crates/server/src/main.rs"),
            "the binary may expect() on startup"
        );
        assert!(!pf.matches("crates/core/src/archive.rs"));
        let cs = p.scope(Rule::CastSafety).unwrap();
        assert!(cs.matches("crates/storage/src/crc.rs"));
        assert!(!cs.matches("src/handle.rs"));
        assert!(p.scope(Rule::UnsafeAudit).unwrap().matches("src/handle.rs"));
        let od = p.scope(Rule::ObsDiscipline).unwrap();
        assert!(od.matches("src/handle.rs"));
        assert!(od.matches("crates/storage/src/segment.rs"));
        assert!(
            !od.matches("crates/obs/src/metrics.rs"),
            "obs implements the timers"
        );
        assert!(!od.matches("crates/analysis/src/main.rs"), "the CLI prints");
        assert!(
            od.matches("crates/server/src/serve.rs"),
            "servers report through obs"
        );
        assert!(
            !od.matches("crates/server/src/main.rs"),
            "startup errors print to stderr"
        );
        assert!(
            !od.matches("crates/bench/src/figures.rs"),
            "benches stopwatch"
        );
        assert!(
            !od.matches("examples/bulk_load.rs"),
            "examples narrate freely"
        );
        assert!(!od.matches("tests/concurrency.rs"));
    }
}
