//! `check` / `report` entry point for the workspace invariant analyzer.
//!
//! Exit codes: `0` clean (or report mode), `1` unsuppressed violations,
//! `2` usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use xarch_analysis::{analyze_workspace, find_workspace_root, render_check, render_report, Config};

const USAGE: &str = "usage: xarch_analysis <check|report> [--root <dir>]

  check    run the invariant rules; print rustc-style diagnostics and exit
           non-zero if any unsuppressed violation remains
  report   print the per-crate findings table, the suppression ledger with
           reasons, and the unsafe inventory (always exits 0)
  --root   workspace root to analyze (default: nearest ancestor of the
           current directory whose Cargo.toml declares [workspace])";

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let mode = match args.next() {
        Some(m) if m == "check" || m == "report" => m,
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let config = Config::project_policy();
    let analysis = match analyze_workspace(&root, &config) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if mode == "report" {
        print!("{}", render_report(&analysis));
        ExitCode::SUCCESS
    } else {
        print!("{}", render_check(&analysis));
        if analysis.violation_count() == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        }
    }
}
