//! Human-readable output: rustc-style diagnostics for `check` and the
//! per-crate summary table (violations, suppressions, unsafe inventory)
//! for `report`.

use std::collections::BTreeMap;

use crate::config::Rule;
use crate::engine::{crate_of, Analysis};

/// Renders `check` output: one rustc-style line per unsuppressed
/// violation, then a one-line summary. Returns the rendered text.
pub fn render_check(analysis: &Analysis) -> String {
    let mut out = String::new();
    for d in analysis.violations() {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let violations = analysis.violation_count();
    let suppressed = analysis.suppressed_count();
    out.push_str(&format!(
        "xarch-analysis: {} file(s) scanned, {} violation(s), {} finding(s) suppressed\n",
        analysis.files_scanned, violations, suppressed
    ));
    out
}

/// Renders `report` output: a per-crate, per-rule table of violation and
/// suppression counts, the suppression ledger with reasons, and the
/// `unsafe` inventory.
pub fn render_report(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("workspace invariant report\n");
    out.push_str(&format!("  files scanned: {}\n\n", analysis.files_scanned));

    // (crate, rule) -> (violations, suppressed)
    let mut table: BTreeMap<String, BTreeMap<&'static str, (usize, usize)>> = BTreeMap::new();
    for d in &analysis.diagnostics {
        let cell = table
            .entry(crate_of(&d.file))
            .or_default()
            .entry(d.rule.name())
            .or_default();
        if d.suppressed.is_some() {
            cell.1 += 1;
        } else {
            cell.0 += 1;
        }
    }

    let rule_names: Vec<&'static str> = Rule::CHECKABLE
        .iter()
        .map(|r| r.name())
        .chain(std::iter::once(Rule::Suppression.name()))
        .collect();
    let crate_width = table
        .keys()
        .map(String::len)
        .chain(std::iter::once("crate".len()))
        .max()
        .unwrap_or(5);

    out.push_str("per-crate findings (violations/suppressed):\n");
    out.push_str(&format!("  {:<crate_width$}", "crate"));
    for name in &rule_names {
        out.push_str(&format!("  {name:>15}"));
    }
    out.push('\n');
    if table.is_empty() {
        out.push_str("  (no findings anywhere)\n");
    }
    for (krate, cells) in &table {
        out.push_str(&format!("  {krate:<crate_width$}"));
        for name in &rule_names {
            let (v, s) = cells.get(name).copied().unwrap_or((0, 0));
            if v == 0 && s == 0 {
                out.push_str(&format!("  {:>15}", "-"));
            } else {
                out.push_str(&format!("  {:>15}", format!("{v}/{s}")));
            }
        }
        out.push('\n');
    }

    out.push_str("\nsuppression ledger:\n");
    if analysis.suppressions.is_empty() {
        out.push_str("  (none)\n");
    }
    for s in &analysis.suppressions {
        let rules = s
            .rules
            .iter()
            .map(|r| r.name())
            .collect::<Vec<_>>()
            .join(", ");
        let status = if s.used { "used" } else { "UNUSED" };
        out.push_str(&format!(
            "  {}:{} [{}] ({}) -- {}\n",
            s.file, s.line, rules, status, s.reason
        ));
    }

    out.push_str("\nunsafe inventory:\n");
    if analysis.unsafe_sites.is_empty() {
        out.push_str("  (the workspace contains no `unsafe` code)\n");
    }
    for u in &analysis.unsafe_sites {
        let status = if u.documented {
            "SAFETY-documented"
        } else {
            "UNDOCUMENTED"
        };
        out.push_str(&format!("  {}:{}:{} {}\n", u.file, u.line, u.col, status));
    }

    let violations = analysis.violation_count();
    out.push_str(&format!(
        "\ntotal: {} violation(s), {} suppressed finding(s)\n",
        violations,
        analysis.suppressed_count()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::{analyze_sources, SourceFile};

    #[test]
    fn report_groups_by_crate_and_lists_ledger() {
        let files = [
            SourceFile {
                path: "crates/storage/src/x.rs".into(),
                text: "fn f(x: u64) -> u32 { x as u32 }\n\
                       // xarch-allow: cast-safety -- bounded\n\
                       fn g(x: u64) -> u32 { x as u32 }\n"
                    .into(),
            },
            SourceFile {
                path: "src/y.rs".into(),
                text: "fn h(x: u64) -> u16 { x as u16 }\n".into(),
            },
        ];
        let a = analyze_sources(&files, &Config::single(Rule::CastSafety));
        let report = render_report(&a);
        assert!(report.contains("crates/storage"), "{report}");
        assert!(report.contains("xarch (root)"), "{report}");
        assert!(report.contains("1/1"), "{report}");
        assert!(report.contains("-- bounded"), "{report}");
        let check = render_check(&a);
        assert!(
            check.contains("crates/storage/src/x.rs:1:25: error[cast-safety]"),
            "{check}"
        );
    }
}
