//! A minimal Rust lexer — just enough to walk real source text with exact
//! line/column positions.
//!
//! It understands the constructs that defeat naive `grep`-style linting:
//! plain/raw/byte string literals, char literals vs. lifetimes, nested
//! block comments, numeric literals (so `1..n` is not a float), and
//! identifiers vs. punctuation. Comments are lexed onto a **side channel**
//! rather than discarded: rules match on code tokens, while suppression
//! (`xarch-allow:`) and `SAFETY:` comments stay inspectable.
//!
//! This is deliberately not a full Rust parser. The rules built on top are
//! token-sequence lints; anything that needs types or name resolution is
//! out of scope (and belongs in clippy, which the CI gate also runs).

/// What a code token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String literal: plain, raw, byte, or raw-byte.
    Str,
    /// Character or byte-character literal.
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation byte (`.`, `[`, `&`, …). Multi-byte operators are
    /// emitted as consecutive single-byte tokens.
    Punct,
}

/// One code token with its 1-based position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block) with its position. `//` / `/*` markers are
/// stripped; block comment bodies keep their interior newlines.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (== `line` for `//` comments).
    pub end_line: u32,
    pub col: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn take_while(&mut self, f: impl Fn(u8) -> bool) {
        while self.peek(0).is_some_and(&f) {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into code tokens and a comment side channel. Unterminated
/// literals/comments are tolerated (the rest of the file becomes that
/// token): the lexer is a lint substrate, not a validator.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    while let Some(b) = cur.peek(0) {
        let (line, col, start) = (cur.line, cur.col, cur.i);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.bump();
                cur.bump();
                let text_start = cur.i;
                cur.take_while(|b| b != b'\n');
                out.comments.push(Comment {
                    text: src[text_start..cur.i].to_string(),
                    line,
                    end_line: cur.line,
                    col,
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let text_start = cur.i;
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let end = cur.i.saturating_sub(2).max(text_start);
                out.comments.push(Comment {
                    text: src[text_start..end].to_string(),
                    line,
                    end_line: cur.line,
                    col,
                });
            }
            // raw strings r"..." / r#"..."# and their byte forms; also
            // raw identifiers r#name (no quote after the hashes)
            b'r' | b'b' if starts_raw_string(&cur) => {
                // consume r / br prefix
                cur.bump();
                if cur.peek(0) == Some(b'r') {
                    cur.bump();
                }
                let mut hashes = 0usize;
                while cur.peek(0) == Some(b'#') {
                    hashes += 1;
                    cur.bump();
                }
                cur.bump(); // opening quote
                loop {
                    match cur.bump() {
                        None => break,
                        Some(b'"') => {
                            let mut seen = 0usize;
                            while seen < hashes && cur.peek(0) == Some(b'#') {
                                seen += 1;
                                cur.bump();
                            }
                            if seen == hashes {
                                break;
                            }
                        }
                        Some(_) => {}
                    }
                }
                push_tok(&mut out, TokKind::Str, src, start, cur.i, line, col);
            }
            b'b' if cur.peek(1) == Some(b'"') => {
                cur.bump();
                lex_plain_string(&mut cur);
                push_tok(&mut out, TokKind::Str, src, start, cur.i, line, col);
            }
            b'b' if cur.peek(1) == Some(b'\'') => {
                cur.bump();
                cur.bump();
                lex_char_tail(&mut cur);
                push_tok(&mut out, TokKind::Char, src, start, cur.i, line, col);
            }
            b'"' => {
                lex_plain_string(&mut cur);
                push_tok(&mut out, TokKind::Str, src, start, cur.i, line, col);
            }
            b'\'' => {
                cur.bump();
                if is_char_literal(&cur) {
                    lex_char_tail(&mut cur);
                    push_tok(&mut out, TokKind::Char, src, start, cur.i, line, col);
                } else {
                    // lifetime: 'ident (no closing quote)
                    cur.take_while(is_ident_continue);
                    push_tok(&mut out, TokKind::Lifetime, src, start, cur.i, line, col);
                }
            }
            _ if is_ident_start(b) => {
                cur.take_while(is_ident_continue);
                push_tok(&mut out, TokKind::Ident, src, start, cur.i, line, col);
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                push_tok(&mut out, TokKind::Num, src, start, cur.i, line, col);
            }
            _ => {
                cur.bump();
                push_tok(&mut out, TokKind::Punct, src, start, cur.i, line, col);
            }
        }
    }
    out
}

fn push_tok(
    out: &mut Lexed,
    kind: TokKind,
    src: &str,
    start: usize,
    end: usize,
    line: u32,
    col: u32,
) {
    out.toks.push(Tok {
        kind,
        text: src[start..end].to_string(),
        line,
        col,
    });
}

/// At an `r`/`b`: does a raw string (`r"`, `r#`, `br"`, `br#`) start here?
/// `r#name` raw identifiers are excluded (hash not followed by a quote).
fn starts_raw_string(cur: &Cursor<'_>) -> bool {
    let rest = &cur.bytes[cur.i..];
    let after_prefix = match rest {
        [b'b', b'r', tail @ ..] => tail,
        [b'r', tail @ ..] => tail,
        _ => return false,
    };
    let mut k = 0;
    while after_prefix.get(k) == Some(&b'#') {
        k += 1;
    }
    after_prefix.get(k) == Some(&b'"')
}

/// Consumes a plain `"…"` string (cursor on the opening quote).
fn lex_plain_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None | Some(b'"') => break,
            Some(b'\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

/// After a `'`, decides char literal vs. lifetime: a char literal is an
/// escape, or a single char followed by a closing `'`.
fn is_char_literal(cur: &Cursor<'_>) -> bool {
    match cur.peek(0) {
        Some(b'\\') => true,
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            // 'x' is a char; 'x followed by anything else is a lifetime.
            // Multi-byte UTF-8 chars can't start lifetimes, so a non-ASCII
            // byte here is a char literal too.
            cur.peek(1) == Some(b'\'')
        }
        Some(_) => true, // '(', '❤', etc. — never a lifetime start
        None => false,
    }
}

/// Consumes the body + closing quote of a char literal (cursor just past
/// the opening `'`).
fn lex_char_tail(cur: &mut Cursor<'_>) {
    loop {
        match cur.bump() {
            None | Some(b'\'') => break,
            Some(b'\\') => {
                // escape: the next byte is literal (covers \' and \\);
                // \u{…} continues through the loop until the closing quote
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

/// Consumes a numeric literal: `0x…`, digits with `_`, a fractional part
/// (only when followed by a digit — `1..n` stays a range), an exponent,
/// and any alphanumeric suffix.
fn lex_number(cur: &mut Cursor<'_>) {
    if cur.peek(0) == Some(b'0')
        && matches!(cur.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
    {
        cur.bump();
        cur.bump();
        cur.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return;
    }
    cur.take_while(|b| b.is_ascii_digit() || b == b'_');
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        cur.take_while(|b| b.is_ascii_digit() || b == b'_');
    }
    if matches!(cur.peek(0), Some(b'e' | b'E'))
        && (cur.peek(1).is_some_and(|b| b.is_ascii_digit())
            || (matches!(cur.peek(1), Some(b'+' | b'-'))
                && cur.peek(2).is_some_and(|b| b.is_ascii_digit())))
    {
        cur.bump();
        cur.bump();
        cur.take_while(|b| b.is_ascii_digit() || b == b'_');
    }
    // type suffix (u32, f64, usize …)
    cur.take_while(is_ident_continue);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            let a = "unwrap() inside a string";
            // unwrap() inside a comment
            /* block with
               .unwrap() and /* nested */ layers */
            let b = r#"raw "quoted" unwrap()"#;
            let c = b"byte unwrap()";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[1].text.contains("nested"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' } const Q: char = '\\'';";
        let l = lex(src);
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\''"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let src = "let a = 1..3; let b = 1.5; let c = 7.min(9); let d = 0xFF_u32;";
        let l = lex(src);
        let nums: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1", "3", "1.5", "7", "9", "0xFF_u32"]);
        assert!(l.toks.iter().any(|t| t.is_ident("min")));
    }

    #[test]
    fn positions_are_one_based_lines_and_byte_columns() {
        let l = lex("ab\n  cd.unwrap()");
        let cd = l.toks.iter().find(|t| t.is_ident("cd")).unwrap();
        assert_eq!((cd.line, cd.col), (2, 3));
        let uw = l.toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!((uw.line, uw.col), (2, 6));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let l = lex("let r#type = 1; let s = r\"x\";");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }
}
