//! # xarch_analysis — workspace invariant analyzer
//!
//! A self-contained static-analysis pass over this workspace's own Rust
//! sources, enforcing the architectural invariants the type system cannot:
//!
//! * **panic-freedom** — decode/recovery modules
//!   (`crates/storage/src/{segment,block,payload,superblock,durable}.rs`,
//!   `crates/extmem/src/events.rs`) must never panic on untrusted bytes:
//!   no `unwrap`/`expect`/`panic!`-family macros/slice-indexing outside
//!   `#[cfg(test)]`.
//! * **lock-discipline** — no `RwLock`/`Mutex` guard binding may live
//!   across an fsync (`sync_all`/`sync_data`/`fsync`), a `.snapshot()`
//!   construction, or a `publish(..)` call (the snapshot-publication
//!   point must flip readers with no stripe or slot lock held).
//! * **cast-safety** — no truncating `as` casts on offset/length
//!   arithmetic in `crates/storage`; use `try_into`/checked conversions.
//! * **api-contract** — `StoreReader` impl methods take `&self`, and every
//!   `VersionStore` impl has an `assert_send_sync::<T>()` static assertion
//!   in its crate.
//! * **unsafe-audit** — every `unsafe` carries a `// SAFETY:` comment; a
//!   full inventory is generated in `report` mode.
//!
//! The pipeline: a hand-rolled [`lexer`] (strings, raw strings, char
//! literals, nested block comments, attributes) feeds token-sequence rules
//! in [`rules`], orchestrated by the [`engine`] with per-rule path scopes
//! from [`config`] and `// xarch-allow: <rule> -- <reason>` suppression
//! comments (counted, reported, and flagged when unused or malformed).
//!
//! Run it:
//!
//! ```text
//! cargo run -p xarch_analysis -- check    # rustc-style diagnostics, exit 1 on violations
//! cargo run -p xarch_analysis -- report   # per-crate table, suppression ledger, unsafe inventory
//! ```

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::{Config, PathFilter, Rule};
pub use engine::{
    analyze_sources, analyze_workspace, crate_of, find_workspace_root, workspace_files, Analysis,
    Diagnostic, SourceFile, SuppressionRecord, UnsafeRecord,
};
pub use report::{render_check, render_report};
