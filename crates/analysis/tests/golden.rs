//! Golden-fixture suite: every rule demonstrably fires.
//!
//! Each `tests/fixtures/*_violating.rs` file marks its expected
//! diagnostics with `//~ <rule-name>` trailing comments; the analyzer must
//! produce exactly those (line, rule) findings and no others. The paired
//! `*_clean.rs` file exercises the rule's known non-triggers (checked
//! conversions, scoped guards, test regions, …) and must come back empty.
//! Fixtures are analyzer *input*, not compile targets — `tests/fixtures/`
//! is not a cargo test directory and is excluded from workspace scans.

use std::fs;
use std::path::Path;

use xarch_analysis::{analyze_sources, Config, Rule, SourceFile};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The `(line, rule)` expectations a fixture declares via `//~ <rule>`.
fn markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(at) = line.find("//~ ") {
            let line_no = u32::try_from(i).unwrap() + 1;
            out.push((line_no, line[at + 4..].trim().to_string()));
        }
    }
    out.sort();
    out
}

/// The `(line, rule)` unsuppressed findings for one fixture under a
/// single-rule config.
fn findings(rule: Rule, src: &str) -> Vec<(u32, String)> {
    let files = [SourceFile {
        path: "fixture.rs".into(),
        text: src.into(),
    }];
    let analysis = analyze_sources(&files, &Config::single(rule));
    let mut out: Vec<(u32, String)> = analysis
        .violations()
        .map(|d| (d.line, d.rule.name().to_string()))
        .collect();
    out.sort();
    out
}

fn assert_fires(rule: Rule, fixture_name: &str) {
    let src = fixture(fixture_name);
    let expected = markers(&src);
    assert!(
        !expected.is_empty(),
        "{fixture_name} declares no //~ markers"
    );
    assert_eq!(findings(rule, &src), expected, "in {fixture_name}");
}

fn assert_clean(rule: Rule, fixture_name: &str) {
    let src = fixture(fixture_name);
    let got = findings(rule, &src);
    assert!(
        got.is_empty(),
        "{fixture_name} should be clean, got {got:?}"
    );
}

#[test]
fn panic_freedom_fires_at_marked_lines() {
    assert_fires(Rule::PanicFreedom, "panic_freedom_violating.rs");
}

#[test]
fn panic_freedom_clean_fixture_passes() {
    assert_clean(Rule::PanicFreedom, "panic_freedom_clean.rs");
}

#[test]
fn lock_discipline_fires_at_marked_lines() {
    assert_fires(Rule::LockDiscipline, "lock_discipline_violating.rs");
}

#[test]
fn lock_discipline_clean_fixture_passes() {
    assert_clean(Rule::LockDiscipline, "lock_discipline_clean.rs");
}

#[test]
fn cast_safety_fires_at_marked_lines() {
    assert_fires(Rule::CastSafety, "cast_safety_violating.rs");
}

#[test]
fn cast_safety_clean_fixture_passes() {
    assert_clean(Rule::CastSafety, "cast_safety_clean.rs");
}

#[test]
fn api_contract_fires_at_marked_lines() {
    assert_fires(Rule::ApiContract, "api_contract_violating.rs");
}

#[test]
fn api_contract_clean_fixture_passes() {
    assert_clean(Rule::ApiContract, "api_contract_clean.rs");
}

#[test]
fn unsafe_audit_fires_at_marked_lines() {
    assert_fires(Rule::UnsafeAudit, "unsafe_audit_violating.rs");
}

#[test]
fn unsafe_audit_clean_fixture_passes() {
    assert_clean(Rule::UnsafeAudit, "unsafe_audit_clean.rs");
}

#[test]
fn obs_discipline_fires_at_marked_lines() {
    assert_fires(Rule::ObsDiscipline, "obs_discipline_violating.rs");
}

#[test]
fn obs_discipline_clean_fixture_passes() {
    assert_clean(Rule::ObsDiscipline, "obs_discipline_clean.rs");
}

#[test]
fn suppression_misuse_fires_at_marked_lines() {
    // the meta-rule is always active; the carrier rule is irrelevant
    assert_fires(Rule::CastSafety, "suppression_violating.rs");
}

#[test]
fn used_suppressions_silence_findings_and_are_counted() {
    let src = fixture("suppression_clean.rs");
    let files = [SourceFile {
        path: "fixture.rs".into(),
        text: src,
    }];
    let analysis = analyze_sources(&files, &Config::single(Rule::CastSafety));
    let got: Vec<String> = analysis.violations().map(ToString::to_string).collect();
    assert!(got.is_empty(), "{got:?}");
    assert_eq!(analysis.suppressed_count(), 2);
    assert_eq!(analysis.suppressions.len(), 2);
    assert!(analysis.suppressions.iter().all(|s| s.used));
    assert!(analysis
        .suppressions
        .iter()
        .any(|s| s.reason.contains("payload cap")));
}

#[test]
fn diagnostics_render_rustc_style_positions() {
    let src = "pub fn f(x: u64) -> u32 {\n    x as u32\n}\n";
    let files = [SourceFile {
        path: "src/demo.rs".into(),
        text: src.into(),
    }];
    let analysis = analyze_sources(&files, &Config::single(Rule::CastSafety));
    let rendered: Vec<String> = analysis.violations().map(ToString::to_string).collect();
    assert_eq!(
        rendered,
        [
            "src/demo.rs:2:7: error[cast-safety]: truncating `as u32` cast on offset/length \
          arithmetic — use `try_into()`/`u32::try_from` and handle the failure"
        ]
    );
}
