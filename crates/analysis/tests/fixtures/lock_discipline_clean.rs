//! Golden fixture: lock discipline respected — guards scoped away from
//! fsyncs, value bindings that merely *pass through* a guard, and explicit
//! early drops. Must produce zero diagnostics.

pub fn fsync_after_scope(file: &std::fs::File, lock: &std::sync::RwLock<u32>) {
    {
        let guard = lock.write().unwrap();
        let _ = *guard;
    }
    file.sync_all().ok();
}

pub fn value_not_guard(shared: &std::sync::RwLock<Inner>, file: &std::fs::File) {
    // the binding holds `.latest()`'s return value — the guard is a
    // temporary that dies at the semicolon
    let pinned = shared.read().unwrap().latest();
    file.sync_all().ok();
    let _ = pinned;
}

pub fn early_drop(file: &std::fs::File, lock: &std::sync::Mutex<u32>) {
    let held = lock.lock().unwrap();
    drop(held);
    file.sync_data().ok();
}

pub fn io_read_is_not_a_lock(reader: &mut impl std::io::Read, file: &std::fs::File) {
    // `.read(buf)` takes an argument — only zero-arg read()/write()/lock()
    // acquire guards
    let mut buf = [0u8; 4];
    let n = reader.read(&mut buf).unwrap_or(0);
    file.sync_all().ok();
    let _ = n;
}

pub fn publish_after_guard_drops(shared: &Shared, lock: &std::sync::RwLock<u32>) {
    let guard = lock.write().unwrap();
    let pin = *guard;
    drop(guard);
    shared.publish(pin);
}
