//! Golden fixture: suppression-protocol misuse — unused, reason-less, and
//! unknown-rule `xarch-allow` comments. This file is analyzer input, not a
//! compile target.

// xarch-allow: cast-safety -- nothing on the next line triggers this //~ suppression
pub fn nothing_to_suppress() {}

// xarch-allow: cast-safety //~ suppression
pub fn missing_reason(len: u64) -> u32 {
    u32::try_from(len).unwrap_or(0)
}

// xarch-allow: no-such-rule -- the rule name is wrong //~ suppression
pub fn unknown_rule() {}
