//! Golden fixture: each tilde marker names the diagnostic the analyzer
//! must emit on that line. This file is analyzer input, not a compile
//! target.

pub fn decode(buf: &[u8]) -> u8 {
    let first = buf[0]; //~ panic-freedom
    let second = *buf.get(1).unwrap(); //~ panic-freedom
    let third = buf.get(2).copied().expect("third byte"); //~ panic-freedom
    if first == 0 {
        panic!("zero length prefix"); //~ panic-freedom
    }
    if second == 0 {
        unreachable!(); //~ panic-freedom
    }
    if third == 0 {
        todo!(); //~ panic-freedom
    }
    third
}
