//! Golden fixture: contracts honored — `&self` receivers on the read
//! trait, and a `VersionStore` impl backed by a send/sync static
//! assertion. Must produce zero diagnostics.

pub struct Reader;

impl StoreReader for Reader {
    fn latest(&self) -> u32 {
        0
    }

    fn document(&self, version: u32) -> Option<String> {
        let _ = version;
        None
    }
}

pub struct Store;

impl VersionStore for Store {}

const _: () = {
    fn assert_send_sync<T: Send + Sync>() {}
    fn check() {
        assert_send_sync::<Store>();
    }
};
