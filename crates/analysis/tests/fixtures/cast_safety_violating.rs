//! Golden fixture: truncating casts on offset/length arithmetic.
//! This file is analyzer input, not a compile target.

pub fn offsets(len: u64, offset: u64, small: u64) -> (u32, usize, u16) {
    let stored = len as u32; //~ cast-safety
    let index = offset as usize; //~ cast-safety
    let short = small as u16; //~ cast-safety
    (stored, index, short)
}
