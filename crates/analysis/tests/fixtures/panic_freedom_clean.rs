//! Golden fixture: panic-free decode — checked access, positioned errors,
//! and test-region exemptions. Must produce zero diagnostics.

pub fn decode(buf: &[u8]) -> Result<u8, String> {
    let first = buf.first().copied().ok_or("empty input")?;
    let rest = buf.get(1..).unwrap_or_default();
    debug_assert!(rest.len() < 1024);
    let padded = vec![first; 3];
    Ok(padded.iter().copied().fold(0, u8::wrapping_add))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_index_and_panic() {
        let v = vec![1u8, 2];
        assert_eq!(v[0], 1);
        v.get(1).copied().unwrap();
        if v.is_empty() {
            panic!("impossible");
        }
    }
}
