//! Golden fixture: `unsafe` without a SAFETY comment. This file is
//! analyzer input, not a compile target.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p } //~ unsafe-audit
}

pub fn far_comment(p: *const u8) -> u8 {
    // SAFETY: this comment is too far away to count

    //
    //
    unsafe { *p } //~ unsafe-audit
}
