//! Golden fixture: observability discipline respected — timing through
//! `xarch_obs` timers/spans, events through the tracer, stopwatches and
//! prints confined to test regions. Must produce zero diagnostics.

pub fn timed_through_the_registry(hist: &xarch_obs::Histogram) -> u64 {
    // the sanctioned way: a drop-guard timer recording into a histogram
    let _t = hist.start_timer();
    expensive_work()
}

pub fn event_through_the_tracer(tracer: &xarch_obs::Tracer) {
    tracer.event(
        xarch_obs::Level::Warn,
        "recovery.torn_tail",
        &[("dropped_bytes", 8.to_string())],
    );
}

pub fn instant_as_a_value_is_fine(at: std::time::Instant) -> std::time::Duration {
    // receiving or storing an `Instant` is not ad-hoc timing; only
    // `Instant::now()` call sites start a stopwatch
    at.elapsed()
}

pub fn println_is_not_event_logging(report: &str) {
    // stdout is for program *output* (reports, expositions); the rule
    // bans stderr event logging, not printing results
    println!("{report}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_stopwatch_and_print() {
        let start = std::time::Instant::now();
        eprintln!("elapsed: {:?}", start.elapsed());
    }
}
