//! Golden fixture: read-path and thread-safety contract violations.
//! This file is analyzer input, not a compile target.

pub struct Reader;

impl StoreReader for Reader {
    fn latest(&mut self) -> u32 { //~ api-contract
        0
    }

    fn spec(&self) -> &'static str {
        "fine: shared receiver"
    }
}

pub struct Store;

impl VersionStore for Store {} //~ api-contract
