//! Golden fixture: checked conversions and widening casts only. Must
//! produce zero diagnostics.

pub fn offsets(len: u64, offset: usize) -> Option<(u32, u64)> {
    let stored = u32::try_from(len).ok()?;
    let wide = offset as u64; // widening never truncates
    let index = usize::try_from(len).ok()?;
    let _ = index;
    Some((stored, wide))
}
