//! Golden fixture: a well-formed, *used* suppression — the finding is
//! recorded as suppressed and nothing gates. Must produce zero
//! unsuppressed diagnostics.

pub fn stored(len: u64) -> u32 {
    // xarch-allow: cast-safety -- length is pre-checked against the 1 GiB payload cap
    len as u32
}

pub fn trailing(len: u64) -> u32 {
    len as u32 // xarch-allow: cast-safety -- same-line exemption form
}
