//! Golden fixture: lock guards held across fsync / snapshot construction.
//! This file is analyzer input, not a compile target.

pub fn fsync_under_write_lock(file: &std::fs::File, lock: &std::sync::RwLock<u32>) {
    let guard = lock.write().unwrap();
    file.sync_all().ok(); //~ lock-discipline
    drop(guard);
}

pub fn snapshot_under_mutex(store: &Store, lock: &std::sync::Mutex<u32>) {
    let held = lock.lock().unwrap();
    let _snap = store.snapshot(); //~ lock-discipline
    drop(held);
}

pub fn fsync_under_read_guard_with_question_mark(
    file: &std::fs::File,
    lock: &std::sync::RwLock<u32>,
) -> Result<(), std::io::Error> {
    let pinned = lock.read()?;
    file.sync_data()?; //~ lock-discipline
    drop(pinned);
    Ok(())
}

pub fn publish_under_slot_guard(shared: &Shared, lock: &std::sync::RwLock<u32>) {
    let guard = lock.write().unwrap();
    shared.publish(*guard); //~ lock-discipline
    drop(guard);
}
