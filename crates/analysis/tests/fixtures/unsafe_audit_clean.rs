//! Golden fixture: every `unsafe` carries a SAFETY comment. Must produce
//! zero diagnostics.

pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points at a live, initialized byte
    unsafe { *p }
}

pub fn same_line(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: bounds checked by the caller
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_is_audited_even_in_tests() {
        let x = 7u8;
        // SAFETY: the reference is derived from a live local
        let y = unsafe { *(&x as *const u8) };
        assert_eq!(y, 7);
    }
}
