//! Golden fixture: ad-hoc timing and console event logging in library
//! code — every marked line must produce an `obs-discipline` diagnostic.

pub fn stopwatch_timing() -> std::time::Duration {
    let start = std::time::Instant::now(); //~ obs-discipline
    expensive_work();
    start.elapsed() // the sample dies in a local instead of a histogram
}

pub fn qualified_stopwatch() {
    use std::time::Instant;
    let t0 = Instant::now(); //~ obs-discipline
    expensive_work();
    let _ = t0.elapsed();
}

pub fn stderr_event_logging(dropped: u64) {
    eprintln!("torn tail truncated: {dropped} bytes"); //~ obs-discipline
}

pub fn partial_line_logging(path: &str) {
    eprint!("replaying {path} ..."); //~ obs-discipline
}
