//! Self-check: the live workspace passes the project policy.
//!
//! This is the same gate CI runs via `cargo run -p xarch_analysis --
//! check`, embedded as a test so `cargo test` alone catches a violation
//! introduced anywhere in the workspace.

use std::path::Path;

use xarch_analysis::{analyze_workspace, render_report, Config};

fn workspace_root() -> &'static Path {
    // crates/analysis/../.. = the workspace root
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn live_workspace_passes_project_policy() {
    let analysis = analyze_workspace(workspace_root(), &Config::project_policy()).unwrap();
    assert!(analysis.files_scanned > 50, "walk found too few files");
    let violations: Vec<String> = analysis.violations().map(ToString::to_string).collect();
    assert!(
        violations.is_empty(),
        "workspace invariant violations:\n{}",
        violations.join("\n")
    );
    // the deliberate, documented exemptions stay visible in the ledger
    assert_eq!(analysis.suppressed_count(), 2);
    assert!(analysis.suppressions.iter().all(|s| s.used));
}

#[test]
fn report_renders_ledger_and_inventory_for_live_workspace() {
    let analysis = analyze_workspace(workspace_root(), &Config::project_policy()).unwrap();
    let report = render_report(&analysis);
    assert!(report.contains("suppression ledger:"), "{report}");
    assert!(report.contains("crates/storage/src/crc.rs"), "{report}");
    assert!(report.contains("unsafe inventory:"), "{report}");
    // the only unsafe code is the cold reader's mmap wrapper, and every
    // block in it carries a SAFETY comment
    assert!(report.contains("crates/storage/src/mmap.rs"), "{report}");
    assert!(!report.contains("UNDOCUMENTED"), "{report}");
}
