//! A Swiss-Prot-like dataset (Appendix B.2) with the paper's measured
//! change profile: deletion/insertion/modification ratios of roughly
//! **14% / 26% / 1.2%** between consecutive releases (§5.3) — few versions,
//! each much bigger than the last, which is what makes the archive size
//! curve of Fig 11b/12b grow superlinearly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xarch_keys::KeySpec;
use xarch_xml::{Document, NodeId};

use crate::words;

/// The key specification of Appendix B.2 (fields we generate).
pub fn swissprot_spec() -> KeySpec {
    KeySpec::parse(
        "(/, (ROOT, {}))\n\
         (/ROOT, (Record, {pac}))\n\
         (/ROOT/Record, (id, {}))\n\
         (/ROOT/Record, (class, {}))\n\
         (/ROOT/Record, (type, {}))\n\
         (/ROOT/Record, (slen, {}))\n\
         (/ROOT/Record, (mod, {date, rel, comment}))\n\
         (/ROOT/Record, (protein, {name}))\n\
         (/ROOT/Record/protein, (from, {\\e}))\n\
         (/ROOT/Record/protein, (taxo, {\\e}))\n\
         (/ROOT/Record, (References, {}))\n\
         (/ROOT/Record/References, (Ref, {num}))\n\
         (/ROOT/Record/References/Ref, (pos, {}))\n\
         (/ROOT/Record/References/Ref, (comment, {\\e}))\n\
         (/ROOT/Record/References/Ref, (author, {\\e}))\n\
         (/ROOT/Record/References/Ref, (title, {}))\n\
         (/ROOT/Record/References/Ref, (in, {}))\n\
         (/ROOT/Record, (comment, {\\e}))\n\
         (/ROOT/Record, (keywords, {}))\n\
         (/ROOT/Record/keywords, (word, {\\e}))\n\
         (/ROOT/Record, (feature, {name, from, to}))\n\
         (/ROOT/Record/feature, (desc, {}))\n\
         (/ROOT/Record, (sequence, {}))\n\
         (/ROOT/Record/sequence, (aacid, {}))\n\
         (/ROOT/Record/sequence, (mweight, {}))\n\
         (/ROOT/Record/sequence, (seq, {}))",
    )
    .expect("Swiss-Prot spec is valid")
}

/// Generator/evolver for Swiss-Prot-like releases.
#[derive(Debug)]
pub struct SwissProtGen {
    rng: StdRng,
    next_pac: u32,
    /// Fraction of records deleted per release (paper: 0.14).
    pub del_ratio: f64,
    /// Fraction of records inserted per release (paper: 0.26).
    pub ins_ratio: f64,
    /// Fraction of records modified per release (paper: 0.012).
    pub mod_ratio: f64,
    /// Amino-acid sequence length range.
    pub seq_len: (usize, usize),
}

impl SwissProtGen {
    /// A generator with the paper's measured Swiss-Prot ratios.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            next_pac: 10_000,
            del_ratio: 0.14,
            ins_ratio: 0.26,
            mod_ratio: 0.012,
            seq_len: (120, 400),
        }
    }

    /// Generates the first release with `n` records.
    pub fn initial(&mut self, n: usize) -> Document {
        let mut doc = Document::new("ROOT");
        for _ in 0..n {
            self.add_record(&mut doc);
        }
        doc
    }

    fn add_record(&mut self, doc: &mut Document) {
        let root = doc.root();
        let rec = doc.add_element(root, "Record");
        let pac = self.next_pac;
        self.next_pac += self.rng.gen_range(1..=9);
        let (_, last) = words::person(&mut self.rng);
        doc.add_text_element(
            rec,
            "id",
            &format!("{:03}K_{}", pac % 1000, last.to_uppercase()),
        );
        doc.add_text_element(rec, "class", "STANDARD");
        doc.add_text_element(rec, "type", "PRT");
        let seq_len = self.rng.gen_range(self.seq_len.0..=self.seq_len.1);
        doc.add_text_element(rec, "slen", &seq_len.to_string());
        doc.add_text_element(rec, "pac", &format!("Q{pac}"));
        // modification history entries
        for r in 0..self.rng.gen_range(1..=2usize) {
            let m = doc.add_element(rec, "mod");
            let (mo, da, yr) = words::date(&mut self.rng);
            doc.add_text_element(m, "date", &format!("{da:02}-{mo:02}-{yr}"));
            doc.add_text_element(m, "rel", &(30 + r).to_string());
            doc.add_text_element(
                m,
                "comment",
                if r == 0 { "Created" } else { "Last modified" },
            );
        }
        let protein = doc.add_element(rec, "protein");
        let pname = words::sentence(&mut self.rng, 3).to_uppercase();
        doc.add_text_element(protein, "name", &format!("{pname} (EC 6.3.2.-)."));
        doc.add_text_element(protein, "from", "Rattus norvegicus (Rat).");
        doc.add_text_element(protein, "taxo", "Eukaryota");
        // references
        let refs = doc.add_element(rec, "References");
        for num in 1..=self.rng.gen_range(1..=3usize) {
            let r = doc.add_element(refs, "Ref");
            doc.add_text_element(r, "num", &num.to_string());
            doc.add_text_element(r, "pos", "SEQUENCE FROM N.A.");
            let (first, last) = words::person(&mut self.rng);
            doc.add_text_element(r, "author", &format!("{last} {}.", &first[..1]));
            let title = words::sentence(&mut self.rng, 6);
            doc.add_text_element(r, "title", &format!("\"{title}\""));
            doc.add_text_element(
                r,
                "in",
                &format!(
                    "Nucleic Acids Res. {}:1471-1475({})",
                    self.rng.gen_range(10..40),
                    1992
                ),
            );
        }
        let comment = words::paragraph(&mut self.rng, 25);
        doc.add_text_element(rec, "comment", &comment);
        // keywords
        let kw = doc.add_element(rec, "keywords");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..self.rng.gen_range(1..=4usize) {
            let w = words::sentence(&mut self.rng, 1);
            if seen.insert(w.clone()) {
                doc.add_text_element(kw, "word", &w);
            }
        }
        // features
        let mut used_spans = std::collections::HashSet::new();
        for _ in 0..self.rng.gen_range(0..=3usize) {
            let from = self.rng.gen_range(1..seq_len.max(2));
            let to = (from + self.rng.gen_range(1..30)).min(seq_len);
            if !used_spans.insert((from, to)) {
                continue;
            }
            let f = doc.add_element(rec, "feature");
            doc.add_text_element(f, "name", "DOMAIN");
            doc.add_text_element(f, "from", &from.to_string());
            doc.add_text_element(f, "to", &to.to_string());
            doc.add_text_element(f, "desc", &words::sentence(&mut self.rng, 3).to_uppercase());
        }
        // sequence
        let seq = doc.add_element(rec, "sequence");
        doc.add_text_element(seq, "aacid", &seq_len.to_string());
        doc.add_text_element(seq, "mweight", &(seq_len * 113).to_string());
        doc.add_text_element(seq, "seq", &words::amino(&mut self.rng, seq_len));
    }

    /// Produces the next release: heavy insertion, substantial deletion,
    /// light modification — each release much larger than the last.
    pub fn evolve(&mut self, prev: &Document) -> Document {
        let mut doc = prev.clone();
        let root = doc.root();
        let n = doc.child_elements(root, "Record").count().max(1);

        let dels = (n as f64 * self.del_ratio).round() as usize;
        for _ in 0..dels {
            let children = doc.children(root);
            if children.len() <= 1 {
                break;
            }
            let pos = self.rng.gen_range(0..children.len());
            doc.remove_child(root, pos);
        }
        let mods = (n as f64 * self.mod_ratio).round() as usize;
        let records: Vec<NodeId> = doc.child_elements(root, "Record").collect();
        for _ in 0..mods {
            if records.is_empty() {
                break;
            }
            let rec = records[self.rng.gen_range(0..records.len())];
            if let Some(c) = doc.first_child_element(rec, "comment") {
                let t = doc.children(c)[0];
                let newc = words::paragraph(&mut self.rng, 25);
                doc.set_text(t, &newc);
            }
        }
        let inss = (n as f64 * self.ins_ratio).round() as usize;
        for _ in 0..inss.max(1) {
            self.add_record(&mut doc);
        }
        doc
    }

    /// A full release sequence.
    pub fn sequence(&mut self, n: usize, versions: usize) -> Vec<Document> {
        let mut out = Vec::with_capacity(versions);
        out.push(self.initial(n));
        for _ in 1..versions {
            let next = self.evolve(out.last().expect("nonempty"));
            out.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_keys::validate;

    #[test]
    fn initial_release_is_valid() {
        let mut g = SwissProtGen::new(1);
        let doc = g.initial(30);
        let v = validate(&doc, &swissprot_spec());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn releases_grow_fast() {
        let mut g = SwissProtGen::new(2);
        let seq = g.sequence(50, 5);
        let count = |d: &Document| d.child_elements(d.root(), "Record").count();
        let first = count(&seq[0]);
        let last = count(seq.last().unwrap());
        // net growth ≈ (1 + 0.26 − 0.14)^4 ≈ 1.57×
        assert!(last as f64 >= first as f64 * 1.3, "{first} -> {last}");
        for (i, d) in seq.iter().enumerate() {
            let v = validate(d, &swissprot_spec());
            assert!(v.is_empty(), "release {i}: {v:?}");
        }
    }

    #[test]
    fn archives_cleanly() {
        let mut g = SwissProtGen::new(3);
        let seq = g.sequence(15, 4);
        let mut a = xarch_core::Archive::new(swissprot_spec());
        for d in &seq {
            a.add_version(d).unwrap();
        }
        a.check_invariants().unwrap();
        for (i, d) in seq.iter().enumerate() {
            let got = a.retrieve(i as u32 + 1).unwrap();
            assert!(
                xarch_core::equiv_modulo_key_order(&got, d, a.spec()),
                "release {}",
                i + 1
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SwissProtGen::new(5).initial(10);
        let b = SwissProtGen::new(5).initial(10);
        assert!(xarch_xml::value_equal(&a, a.root(), &b, b.root()));
    }
}
