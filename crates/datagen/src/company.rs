//! The running example of §2 (Figure 2): four versions of a company
//! database, plus its key specification (§3).

use xarch_keys::KeySpec;
use xarch_xml::{parse, Document};

/// The key specification of the company database (§3).
pub fn company_spec() -> KeySpec {
    KeySpec::parse(
        "(/, (db, {}))\n\
         (/db, (dept, {name}))\n\
         (/db/dept, (emp, {fn, ln}))\n\
         (/db/dept/emp, (sal, {}))\n\
         (/db/dept/emp, (tel, {.}))",
    )
    .expect("company spec is valid")
}

/// The four versions of Figure 2, in order.
pub fn company_versions() -> Vec<Document> {
    let v1 = "<db><dept><name>finance</name></dept></db>";
    let v2 = "<db><dept><name>finance</name>\
              <emp><fn>Jane</fn><ln>Smith</ln></emp></dept></db>";
    let v3 = "<db>\
              <dept><name>finance</name>\
                <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp></dept>\
              <dept><name>marketing</name>\
                <emp><fn>John</fn><ln>Doe</ln></emp></dept>\
              </db>";
    let v4 = "<db><dept><name>finance</name>\
              <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>\
              <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal><tel>123-6789</tel><tel>112-3456</tel></emp>\
              </dept></db>";
    [v1, v2, v3, v4]
        .iter()
        .map(|s| parse(s).expect("fixture parses"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_keys::validate;

    #[test]
    fn versions_satisfy_spec() {
        let spec = company_spec();
        for (i, v) in company_versions().iter().enumerate() {
            let violations = validate(v, &spec);
            assert!(violations.is_empty(), "version {}: {violations:?}", i + 1);
        }
    }

    #[test]
    fn four_versions() {
        assert_eq!(company_versions().len(), 4);
    }
}
