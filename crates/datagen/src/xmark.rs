//! An XMark-like auction site (Schmidt et al., VLDB 2002) with the key
//! specification of Appendix B.3 (the subset of the element inventory our
//! generator emits), plus the two change simulators of §5.3:
//!
//! * [`XmarkGen::random_change`] — "creates a new version by deleting n% of
//!   elements, inserting the same number of elements with random string
//!   values, and modifying string values of n% of elements to random
//!   strings" (Fig 13, App C.1);
//! * [`XmarkGen::key_mutation`] — the archiver's worst case: "our change
//!   simulator modifies part of key values for n% of elements instead of
//!   deleting and inserting ... simulating deletion and insertion of highly
//!   similar data at the exactly same location" (Fig 14, App C.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xarch_keys::KeySpec;
use xarch_xml::{Document, NodeId};

use crate::words;

const REGIONS: [&str; 2] = ["africa", "asia"];

/// The key specification (Appendix B.3, restricted to generated elements).
pub fn xmark_spec() -> KeySpec {
    let mut s = String::from(
        "(/, (site, {}))\n\
         (/site, (regions, {}))\n\
         (/site, (categories, {}))\n\
         (/site, (people, {}))\n\
         (/site, (open_auctions, {}))\n\
         (/site/categories, (category, {id}))\n\
         (/site/categories/category, (name, {}))\n\
         (/site/categories/category, (description, {\\e}))\n\
         (/site/people, (person, {id}))\n\
         (/site/people/person, (name, {}))\n\
         (/site/people/person, (emailaddress, {\\e}))\n\
         (/site/people/person, (phone, {\\e}))\n\
         (/site/open_auctions, (open_auction, {id}))\n\
         (/site/open_auctions/open_auction, (initial, {}))\n\
         (/site/open_auctions/open_auction, (current, {}))\n\
         (/site/open_auctions/open_auction, (quantity, {}))\n\
         (/site/open_auctions/open_auction, (type, {}))\n\
         (/site/open_auctions/open_auction, (bidder, {date, time, personref/person, increase}))\n\
         (/site/open_auctions/open_auction/bidder, (personref, {}))\n",
    );
    for r in REGIONS {
        s.push_str(&format!(
            "(/site/regions, ({r}, {{}}))\n\
             (/site/regions/{r}, (item, {{id}}))\n\
             (/site/regions/{r}/item, (location, {{}}))\n\
             (/site/regions/{r}/item, (quantity, {{}}))\n\
             (/site/regions/{r}/item, (name, {{}}))\n\
             (/site/regions/{r}/item, (payment, {{}}))\n\
             (/site/regions/{r}/item, (description, {{}}))\n\
             (/site/regions/{r}/item, (shipping, {{}}))\n\
             (/site/regions/{r}/item, (incategory, {{category}}))\n\
             (/site/regions/{r}/item, (mailbox, {{}}))\n\
             (/site/regions/{r}/item/mailbox, (mail, {{from, to, date, text}}))\n"
        ));
    }
    KeySpec::parse(&s).expect("XMark spec is valid")
}

/// The XMark-like generator and change simulator.
#[derive(Debug)]
pub struct XmarkGen {
    rng: StdRng,
    next_item: u32,
    next_person: u32,
    next_auction: u32,
    next_category: u32,
}

impl XmarkGen {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            next_item: 0,
            next_person: 0,
            next_auction: 0,
            next_category: 0,
        }
    }

    /// Generates the initial auction site, sized by `n_items`.
    pub fn generate(&mut self, n_items: usize) -> Document {
        let mut doc = Document::new("site");
        let site = doc.root();
        let regions = doc.add_element(site, "regions");
        let region_nodes: Vec<NodeId> = REGIONS
            .iter()
            .map(|r| doc.add_element(regions, r))
            .collect();
        let categories = doc.add_element(site, "categories");
        for _ in 0..(n_items / 10).max(2) {
            self.add_category(&mut doc, categories);
        }
        for _ in 0..n_items {
            let region = region_nodes[self.rng.gen_range(0..region_nodes.len())];
            self.add_item(&mut doc, region);
        }
        let people = doc.add_element(site, "people");
        for _ in 0..(n_items / 2).max(2) {
            self.add_person(&mut doc, people);
        }
        let auctions = doc.add_element(site, "open_auctions");
        for _ in 0..(n_items / 2).max(1) {
            self.add_auction(&mut doc, auctions);
        }
        doc
    }

    fn add_category(&mut self, doc: &mut Document, categories: NodeId) {
        let c = doc.add_element(categories, "category");
        let id = format!("category{}", self.next_category);
        self.next_category += 1;
        doc.set_attr(c, "id", &id);
        doc.add_text_element(c, "name", &words::sentence(&mut self.rng, 2));
        doc.add_text_element(c, "description", &words::sentence(&mut self.rng, 8));
    }

    fn add_item(&mut self, doc: &mut Document, region: NodeId) {
        let item = doc.add_element(region, "item");
        let id = format!("item{}", self.next_item);
        self.next_item += 1;
        doc.set_attr(item, "id", &id);
        let countries = [
            "Moldova, Republic Of",
            "United States",
            "Japan",
            "Scotland",
            "Brazil",
        ];
        doc.add_text_element(
            item,
            "location",
            countries[self.rng.gen_range(0..countries.len())],
        );
        doc.add_text_element(item, "quantity", &self.rng.gen_range(1..5u32).to_string());
        doc.add_text_element(item, "name", &words::sentence(&mut self.rng, 2));
        doc.add_text_element(item, "payment", "Money order, Creditcard, Cash");
        let desc = doc.add_element(item, "description");
        let text = doc.add_element(desc, "text");
        let para = words::paragraph(&mut self.rng, 20);
        doc.add_text(text, &para);
        doc.add_text_element(item, "shipping", "Will ship only within country");
        let n_cats = self.next_category.max(1);
        let mut cats = std::collections::BTreeSet::new();
        for _ in 0..self.rng.gen_range(1..=2usize) {
            cats.insert(self.rng.gen_range(0..n_cats));
        }
        for c in cats {
            let inc = doc.add_element(item, "incategory");
            doc.set_attr(inc, "category", &format!("category{c}"));
        }
        if self.rng.gen_bool(0.5) {
            let mb = doc.add_element(item, "mailbox");
            let mut seen = std::collections::HashSet::new();
            for _ in 0..self.rng.gen_range(1..=2usize) {
                let (f1, l1) = words::person(&mut self.rng);
                let (f2, l2) = words::person(&mut self.rng);
                let (mo, da, yr) = words::date(&mut self.rng);
                let key = (f1.clone(), l1.clone(), f2.clone(), l2.clone(), mo, da, yr);
                if !seen.insert(key) {
                    continue;
                }
                let mail = doc.add_element(mb, "mail");
                doc.add_text_element(mail, "from", &format!("{f1} {l1} mailto:{l1}@example.org"));
                doc.add_text_element(mail, "to", &format!("{f2} {l2} mailto:{l2}@example.org"));
                doc.add_text_element(mail, "date", &format!("{mo:02}/{da:02}/{yr}"));
                let body = words::paragraph(&mut self.rng, 12);
                doc.add_text_element(mail, "text", &body);
            }
        }
    }

    fn add_person(&mut self, doc: &mut Document, people: NodeId) {
        let p = doc.add_element(people, "person");
        let id = format!("person{}", self.next_person);
        self.next_person += 1;
        doc.set_attr(p, "id", &id);
        let (first, last) = words::person(&mut self.rng);
        doc.add_text_element(p, "name", &format!("{first} {last}"));
        doc.add_text_element(p, "emailaddress", &format!("mailto:{last}@example.org"));
        if self.rng.gen_bool(0.4) {
            doc.add_text_element(
                p,
                "phone",
                &format!(
                    "+1 ({}) 555-{:04}",
                    self.rng.gen_range(200..999),
                    self.rng.gen_range(0..9999)
                ),
            );
        }
    }

    fn add_auction(&mut self, doc: &mut Document, auctions: NodeId) {
        let a = doc.add_element(auctions, "open_auction");
        let id = format!("open_auction{}", self.next_auction);
        self.next_auction += 1;
        doc.set_attr(a, "id", &id);
        doc.add_text_element(
            a,
            "initial",
            &format!("{:.2}", self.rng.gen_range(1.0..200.0)),
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..self.rng.gen_range(0..=3usize) {
            let (mo, da, yr) = words::date(&mut self.rng);
            let time = format!(
                "{:02}:{:02}:{:02}",
                self.rng.gen_range(0..24),
                self.rng.gen_range(0..60),
                self.rng.gen_range(0..60)
            );
            let person = self.rng.gen_range(0..self.next_person.max(1));
            let increase = format!("{:.2}", self.rng.gen_range(1.0..20.0));
            let key = (mo, da, yr, time.clone(), person, increase.clone());
            if !seen.insert(key) {
                continue;
            }
            let b = doc.add_element(a, "bidder");
            doc.add_text_element(b, "date", &format!("{mo:02}/{da:02}/{yr}"));
            doc.add_text_element(b, "time", &time);
            let pr = doc.add_element(b, "personref");
            doc.set_attr(pr, "person", &format!("person{person}"));
            doc.add_text_element(b, "increase", &increase);
        }
        doc.add_text_element(
            a,
            "current",
            &format!("{:.2}", self.rng.gen_range(1.0..500.0)),
        );
        doc.add_text_element(a, "quantity", &self.rng.gen_range(1..4u32).to_string());
        doc.add_text_element(
            a,
            "type",
            if self.rng.gen_bool(0.5) {
                "Regular"
            } else {
                "Featured"
            },
        );
    }

    /// All item nodes of a document, with their region parents.
    fn items(doc: &Document) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        if let Some(regions) = doc.first_child_element(doc.root(), "regions") {
            for r in REGIONS {
                for region in doc.child_elements(regions, r) {
                    for item in doc.child_elements(region, "item") {
                        out.push((region, item));
                    }
                }
            }
        }
        out
    }

    /// §5.3 random change: delete `pct`% of items, insert the same number
    /// of fresh items, and rewrite the string content of `pct`% of items'
    /// text fields.
    pub fn random_change(&mut self, prev: &Document, pct: f64) -> Document {
        let mut doc = prev.clone();
        let items = Self::items(&doc);
        let n = items.len();
        let k = ((n as f64) * pct / 100.0).round() as usize;

        // deletions
        let mut chosen: Vec<usize> = (0..n).collect();
        for _ in 0..k.min(n) {
            let idx = self.rng.gen_range(0..chosen.len());
            let (region, item) = items[chosen.swap_remove(idx)];
            if let Some(pos) = doc.children(region).iter().position(|&c| c == item) {
                doc.remove_child(region, pos);
            }
        }
        // modifications (on survivors)
        let survivors = Self::items(&doc);
        for _ in 0..k.min(survivors.len()) {
            let (_, item) = survivors[self.rng.gen_range(0..survivors.len())];
            // rewrite the item's name and description text to random strings
            if let Some(name) = doc.first_child_element(item, "name") {
                let t = doc.children(name)[0];
                let s = words::sentence(&mut self.rng, 2);
                doc.set_text(t, &s);
            }
            if let Some(desc) = doc.first_child_element(item, "description") {
                if let Some(text) = doc.first_child_element(desc, "text") {
                    let t = doc.children(text)[0];
                    let s = words::paragraph(&mut self.rng, 20);
                    doc.set_text(t, &s);
                }
            }
        }
        // insertions
        let regions = doc
            .first_child_element(doc.root(), "regions")
            .expect("regions");
        let region_nodes: Vec<NodeId> = REGIONS
            .iter()
            .filter_map(|r| doc.first_child_element(regions, r))
            .collect();
        for _ in 0..k {
            let region = region_nodes[self.rng.gen_range(0..region_nodes.len())];
            self.add_item(&mut doc, region);
        }
        doc
    }

    /// §5.3 worst case: rewrite the `id` key of `pct`% of items, leaving
    /// their contents untouched — the archive must store each mutated item
    /// twice while a diff stores only the one-line id change.
    pub fn key_mutation(&mut self, prev: &Document, pct: f64) -> Document {
        let mut doc = prev.clone();
        let items = Self::items(&doc);
        let n = items.len();
        let k = ((n as f64) * pct / 100.0).round() as usize;
        let mut chosen: Vec<usize> = (0..n).collect();
        for _ in 0..k.min(n) {
            let idx = self.rng.gen_range(0..chosen.len());
            let (_, item) = items[chosen.swap_remove(idx)];
            let id = format!("item{}", self.next_item);
            self.next_item += 1;
            doc.set_attr(item, "id", &id);
        }
        doc
    }

    /// A version sequence under random change.
    pub fn random_change_sequence(
        &mut self,
        n_items: usize,
        versions: usize,
        pct: f64,
    ) -> Vec<Document> {
        let mut out = vec![self.generate(n_items)];
        for _ in 1..versions {
            let next = self.random_change(out.last().expect("nonempty"), pct);
            out.push(next);
        }
        out
    }

    /// A version sequence under key mutation.
    pub fn key_mutation_sequence(
        &mut self,
        n_items: usize,
        versions: usize,
        pct: f64,
    ) -> Vec<Document> {
        let mut out = vec![self.generate(n_items)];
        for _ in 1..versions {
            let next = self.key_mutation(out.last().expect("nonempty"), pct);
            out.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_keys::validate;

    #[test]
    fn generated_site_is_valid() {
        let mut g = XmarkGen::new(1);
        let doc = g.generate(40);
        let v = validate(&doc, &xmark_spec());
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(XmarkGen::items(&doc).len(), 40);
    }

    #[test]
    fn random_change_keeps_validity_and_count() {
        let mut g = XmarkGen::new(2);
        let v1 = g.generate(60);
        let v2 = g.random_change(&v1, 10.0);
        let violations = validate(&v2, &xmark_spec());
        assert!(violations.is_empty(), "{violations:?}");
        // deleted k, inserted k → same item count
        assert_eq!(XmarkGen::items(&v2).len(), 60);
        // and some content actually changed
        assert!(!xarch_xml::value_equal(&v1, v1.root(), &v2, v2.root()));
    }

    #[test]
    fn key_mutation_changes_ids_only() {
        let mut g = XmarkGen::new(3);
        let v1 = g.generate(50);
        let v2 = g.key_mutation(&v1, 10.0);
        assert!(validate(&v2, &xmark_spec()).is_empty());
        let ids = |d: &Document| -> std::collections::HashSet<String> {
            XmarkGen::items(d)
                .iter()
                .map(|&(_, i)| d.attr(i, "id").unwrap().to_owned())
                .collect()
        };
        let i1 = ids(&v1);
        let i2 = ids(&v2);
        assert_eq!(i1.len(), i2.len());
        let changed = i1.difference(&i2).count();
        assert_eq!(changed, 5, "10% of 50 items mutated");
        // the textual change is tiny: only the mutated id lines differ
        let p1 = xarch_xml::writer::to_pretty_string(&v1, 1);
        let p2 = xarch_xml::writer::to_pretty_string(&v2, 1);
        let l1: Vec<&str> = p1.lines().collect();
        let l2: Vec<&str> = p2.lines().collect();
        assert_eq!(l1.len(), l2.len(), "key mutation must not restructure");
        let diff_lines = l1.iter().zip(l2.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(diff_lines, 5, "exactly one changed line per mutated item");
    }

    #[test]
    fn archives_under_random_change() {
        let mut g = XmarkGen::new(4);
        let seq = g.random_change_sequence(20, 4, 10.0);
        let mut a = xarch_core::Archive::new(xmark_spec());
        for d in &seq {
            a.add_version(d).unwrap();
        }
        a.check_invariants().unwrap();
        for (i, d) in seq.iter().enumerate() {
            let got = a.retrieve(i as u32 + 1).unwrap();
            assert!(
                xarch_core::equiv_modulo_key_order(&got, d, a.spec()),
                "version {}",
                i + 1
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = XmarkGen::new(9).generate(10);
        let b = XmarkGen::new(9).generate(10);
        assert!(xarch_xml::value_equal(&a, a.root(), &b, b.root()));
    }
}
