//! An OMIM-like dataset (Appendix B.1) with the accretive change profile
//! the paper measured: deletion/insertion/modification ratios of roughly
//! **0.02% / 0.2% / 0.03%** of records per version (§5.3), published very
//! frequently (the paper recorded 100 versions over ~100 days).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xarch_keys::KeySpec;
use xarch_xml::{Document, NodeId};

use crate::words;

/// The key specification of Appendix B.1 (fields we generate).
pub fn omim_spec() -> KeySpec {
    KeySpec::parse(
        "(/, (ROOT, {}))\n\
         (/ROOT, (Record, {Num}))\n\
         (/ROOT/Record, (Title, {}))\n\
         (/ROOT/Record, (AlternativeTitle, {\\e}))\n\
         (/ROOT/Record, (Text, {}))\n\
         (/ROOT/Record, (Contributors, {Name, CNtype, Date/Month, Date/Day, Date/Year}))\n\
         (/ROOT/Record/Contributors, (Date, {}))\n\
         (/ROOT/Record, (Creation_Date, {Name, Date/Month, Date/Day, Date/Year}))\n\
         (/ROOT/Record/Creation_Date, (Date, {}))",
    )
    .expect("OMIM spec is valid")
}

/// The generator/evolver. Change ratios are per-record probabilities
/// applied at each [`OmimGen::evolve`] step.
#[derive(Debug)]
pub struct OmimGen {
    rng: StdRng,
    next_num: u32,
    /// Fraction of records deleted per version (paper: 0.0002).
    pub del_ratio: f64,
    /// Fraction of records inserted per version (paper: 0.002).
    pub ins_ratio: f64,
    /// Fraction of records modified per version (paper: 0.0003).
    pub mod_ratio: f64,
    /// Words per record `Text` field.
    pub text_words: usize,
}

impl OmimGen {
    /// A generator with the paper's measured OMIM ratios.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            next_num: 100_000,
            del_ratio: 0.0002,
            ins_ratio: 0.002,
            mod_ratio: 0.0003,
            text_words: 60,
        }
    }

    /// Generates the initial version with `n` records.
    pub fn initial(&mut self, n: usize) -> Document {
        let mut doc = Document::new("ROOT");
        for _ in 0..n {
            self.add_record(&mut doc);
        }
        doc
    }

    fn add_record(&mut self, doc: &mut Document) {
        let root = doc.root();
        let rec = doc.add_element(root, "Record");
        let num = self.next_num;
        self.next_num += self.rng.gen_range(1..=17);
        doc.add_text_element(rec, "Num", &num.to_string());
        let title = words::sentence(&mut self.rng, 5).to_uppercase();
        doc.add_text_element(rec, "Title", &format!("*{num} {title}"));
        for _ in 0..self.rng.gen_range(0..=2usize) {
            let alt = words::sentence(&mut self.rng, 3).to_uppercase();
            doc.add_text_element(rec, "AlternativeTitle", &alt);
        }
        let text = words::paragraph(&mut self.rng, self.text_words);
        doc.add_text_element(rec, "Text", &text);
        for _ in 0..self.rng.gen_range(1..=3usize) {
            self.add_contributor(doc, rec, "Contributors");
        }
        self.add_contributor(doc, rec, "Creation_Date");
    }

    fn add_contributor(&mut self, doc: &mut Document, rec: NodeId, tag: &str) {
        let c = doc.add_element(rec, tag);
        let (first, last) = words::person(&mut self.rng);
        doc.add_text_element(c, "Name", &format!("{first} {last}"));
        if tag == "Contributors" {
            let kinds = ["updated", "edited", "re-reviewed"];
            doc.add_text_element(c, "CNtype", kinds[self.rng.gen_range(0..kinds.len())]);
        }
        let (m, d, y) = words::date(&mut self.rng);
        let date = doc.add_element(c, "Date");
        doc.add_text_element(date, "Month", &m.to_string());
        doc.add_text_element(date, "Day", &d.to_string());
        doc.add_text_element(date, "Year", &y.to_string());
    }

    /// Produces the next version: mostly insertions, a few modifications,
    /// very rare deletions — "scientific data is largely accretive" (§1).
    pub fn evolve(&mut self, prev: &Document) -> Document {
        let mut doc = prev.clone();
        let root = doc.root();
        let records: Vec<NodeId> = doc.child_elements(root, "Record").collect();
        let n = records.len().max(1);

        // deletions
        let dels = count(&mut self.rng, n, self.del_ratio);
        for _ in 0..dels {
            let children = doc.children(root);
            if children.is_empty() {
                break;
            }
            let pos = self.rng.gen_range(0..children.len());
            doc.remove_child(root, pos);
        }
        // modifications: replace the Text paragraph of a few records
        let mods = count(&mut self.rng, n, self.mod_ratio);
        let records: Vec<NodeId> = doc.child_elements(root, "Record").collect();
        for _ in 0..mods {
            if records.is_empty() {
                break;
            }
            let rec = records[self.rng.gen_range(0..records.len())];
            if let Some(text_el) = doc.first_child_element(rec, "Text") {
                let t = doc.children(text_el)[0];
                let new_text = words::paragraph(&mut self.rng, self.text_words);
                doc.set_text(t, &new_text);
            }
        }
        // insertions
        let inss = count(&mut self.rng, n, self.ins_ratio);
        for _ in 0..inss.max(1) {
            self.add_record(&mut doc);
        }
        doc
    }

    /// A full version sequence: initial size `n`, `versions` versions.
    pub fn sequence(&mut self, n: usize, versions: usize) -> Vec<Document> {
        let mut out = Vec::with_capacity(versions);
        out.push(self.initial(n));
        for _ in 1..versions {
            let next = self.evolve(out.last().expect("nonempty"));
            out.push(next);
        }
        out
    }
}

/// Expected-value count with probabilistic rounding, so tiny ratios still
/// fire occasionally on small datasets.
fn count(rng: &mut StdRng, n: usize, ratio: f64) -> usize {
    let x = n as f64 * ratio;
    let base = x.floor() as usize;
    let frac = x - base as f64;
    base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_keys::validate;

    #[test]
    fn initial_version_is_valid() {
        let mut g = OmimGen::new(42);
        let doc = g.initial(50);
        assert_eq!(doc.child_elements(doc.root(), "Record").count(), 50);
        let v = validate(&doc, &omim_spec());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn evolution_is_accretive() {
        let mut g = OmimGen::new(7);
        let seq = g.sequence(100, 10);
        let first = seq
            .first()
            .unwrap()
            .child_elements(seq[0].root(), "Record")
            .count();
        let last_doc = seq.last().unwrap();
        let last = last_doc.child_elements(last_doc.root(), "Record").count();
        assert!(last >= first, "records should grow: {first} -> {last}");
        for (i, d) in seq.iter().enumerate() {
            let v = validate(d, &omim_spec());
            assert!(v.is_empty(), "version {i}: {v:?}");
        }
    }

    #[test]
    fn record_numbers_are_unique() {
        let mut g = OmimGen::new(3);
        let doc = g.initial(200);
        let mut nums: Vec<String> = doc
            .child_elements(doc.root(), "Record")
            .map(|r| {
                let num = doc.first_child_element(r, "Num").unwrap();
                doc.text_content(num)
            })
            .collect();
        let before = nums.len();
        nums.sort();
        nums.dedup();
        assert_eq!(nums.len(), before);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = OmimGen::new(9).sequence(20, 3);
        let b = OmimGen::new(9).sequence(20, 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(xarch_xml::value_equal(x, x.root(), y, y.root()));
        }
    }

    #[test]
    fn archives_cleanly() {
        let mut g = OmimGen::new(11);
        let seq = g.sequence(30, 5);
        let mut a = xarch_core::Archive::new(omim_spec());
        for d in &seq {
            a.add_version(d).unwrap();
        }
        a.check_invariants().unwrap();
        for (i, d) in seq.iter().enumerate() {
            let got = a.retrieve(i as u32 + 1).unwrap();
            assert!(xarch_core::equiv_modulo_key_order(&got, d, a.spec()));
        }
    }
}
