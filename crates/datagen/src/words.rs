//! Deterministic text generators: words, names, titles, DNA sequences.

use rand::rngs::StdRng;
use rand::Rng;

const WORDS: &[&str] = &[
    "protein",
    "factor",
    "replication",
    "sequence",
    "binding",
    "domain",
    "kinase",
    "receptor",
    "gene",
    "promoter",
    "transcription",
    "ligase",
    "ubiquitin",
    "enzyme",
    "pathway",
    "membrane",
    "nuclear",
    "cytoplasmic",
    "conserved",
    "homolog",
    "variant",
    "mutation",
    "deletion",
    "insertion",
    "expression",
    "regulation",
    "complex",
    "subunit",
    "terminal",
    "residue",
    "alpha",
    "beta",
    "gamma",
    "delta",
    "phosphorylation",
    "signal",
    "transduction",
    "growth",
    "tumor",
    "suppressor",
    "oncogene",
    "chromosome",
    "locus",
    "allele",
    "phenotype",
    "genotype",
    "disorder",
    "syndrome",
    "deficiency",
    "autosomal",
];

const FIRST_NAMES: &[&str] = &[
    "John", "Jane", "Paul", "Anna", "Victor", "Maria", "Keishi", "Wang", "Sanjeev", "Peter",
    "Carmem", "Susan", "Wenfei", "Alin", "Dan", "Hartmut", "Rajeev", "Gerome", "Serge", "Laurent",
];

const LAST_NAMES: &[&str] = &[
    "Doe",
    "Smith",
    "Converse",
    "Macke",
    "McKusick",
    "Tan",
    "Khanna",
    "Buneman",
    "Tajima",
    "Davidson",
    "Fan",
    "Deutsch",
    "Suciu",
    "Liefke",
    "Motwani",
    "Abiteboul",
    "Marian",
    "Cobena",
    "Chawathe",
    "Widom",
];

/// A pseudo-English sentence of `n` words.
pub fn sentence(rng: &mut StdRng, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out
}

/// A paragraph of roughly `n` words with sentence structure.
pub fn paragraph(rng: &mut StdRng, n: usize) -> String {
    let mut out = String::new();
    let mut left = n;
    while left > 0 {
        let len = rng.gen_range(5..=12).min(left);
        let s = sentence(rng, len);
        let mut chars = s.chars();
        if let Some(c) = chars.next() {
            out.push(c.to_ascii_uppercase());
            out.push_str(chars.as_str());
        }
        out.push_str(". ");
        left = left.saturating_sub(len);
    }
    out.trim_end().to_owned()
}

/// A person name `(first, last)`.
pub fn person(rng: &mut StdRng) -> (String, String) {
    (
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_owned(),
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())].to_owned(),
    )
}

/// A DNA-ish sequence of length `n`.
pub fn dna(rng: &mut StdRng, n: usize) -> String {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    (0..n).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

/// An amino-acid-ish sequence of length `n` (Swiss-Prot `seq` fields).
pub fn amino(rng: &mut StdRng, n: usize) -> String {
    const AA: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
    (0..n)
        .map(|_| AA[rng.gen_range(0..AA.len())] as char)
        .collect()
}

/// A date triple `(month, day, year)`.
pub fn date(rng: &mut StdRng) -> (u32, u32, u32) {
    (
        rng.gen_range(1..=12),
        rng.gen_range(1..=28),
        rng.gen_range(1990..=2002),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(sentence(&mut a, 10), sentence(&mut b, 10));
        assert_eq!(dna(&mut a, 30), dna(&mut b, 30));
    }

    #[test]
    fn lengths_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(dna(&mut rng, 50).len(), 50);
        assert_eq!(amino(&mut rng, 64).len(), 64);
        assert_eq!(sentence(&mut rng, 8).split(' ').count(), 8);
    }

    #[test]
    fn paragraph_has_sentences() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = paragraph(&mut rng, 40);
        assert!(p.contains(". "));
        assert!(p.split_whitespace().count() >= 35);
    }

    #[test]
    fn date_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let (m, d, y) = date(&mut rng);
            assert!((1..=12).contains(&m));
            assert!((1..=28).contains(&d));
            assert!((1990..=2002).contains(&y));
        }
    }
}
