//! # xarch-datagen
//!
//! Dataset generators and change simulators for the experiments of §5.
//!
//! The paper's evaluation uses three datasets: **OMIM** (curated gene
//! descriptions, near-daily versions, almost purely accretive), **Swiss-Prot**
//! (protein records, few versions, fast growth) and **XMark** (synthetic
//! auction data driven by a change simulator). The real OMIM/Swiss-Prot
//! snapshot sequences are not redistributable, so this crate generates
//! documents with the *schemas of Appendix B* and evolves them with the
//! *change ratios the paper reports* (§5.3: OMIM ≈ 0.02%/0.2%/0.03% and
//! Swiss-Prot ≈ 14%/26%/1.2% deletion/insertion/modification):
//!
//! * [`company`] — the Figure 2 running example,
//! * [`omim`] — Appendix B.1 records + accretive evolution,
//! * [`swissprot`] — Appendix B.2 records + growth-heavy evolution,
//! * [`xmark`] — Appendix B.3 auction site + the two simulators of
//!   §5.3: `random_change` (Fig 13) and `key_mutation` (Fig 14's
//!   worst case: "deletion and insertion of highly similar data at the
//!   exactly same location"),
//! * [`words`] — deterministic text/name/DNA generators.
//!
//! Everything is seeded; no generator touches wall-clock or global state.

pub mod company;
pub mod omim;
pub mod swissprot;
pub mod words;
pub mod xmark;

pub use company::company_versions;
