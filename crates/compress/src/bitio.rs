//! Bit-level I/O over byte buffers (LSB-first), plus LEB128 varints.

/// Writes bits LSB-first into a growing byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    cur: u8,
    nbits: u8,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `n` bits of `v` (n ≤ 32).
    pub fn write_bits(&mut self, v: u32, n: u8) {
        debug_assert!(n <= 32);
        for i in 0..n {
            let bit = (v >> i) & 1;
            self.cur |= (bit as u8) << self.nbits;
            self.nbits += 1;
            if self.nbits == 8 {
                self.buf.push(self.cur);
                self.cur = 0;
                self.nbits = 0;
            }
        }
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u32, 1);
    }

    /// Flushes any partial byte and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push(self.cur);
        }
        self.buf
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            bit: 0,
        }
    }

    /// Reads `n` bits (n ≤ 32); `None` at end of input.
    pub fn read_bits(&mut self, n: u8) -> Option<u32> {
        let mut v = 0u32;
        for i in 0..n {
            if self.pos >= self.buf.len() {
                return None;
            }
            let bit = (self.buf[self.pos] >> self.bit) & 1;
            v |= (bit as u32) << i;
            self.bit += 1;
            if self.bit == 8 {
                self.bit = 0;
                self.pos += 1;
            }
        }
        Some(v)
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b != 0)
    }
}

/// Appends an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint, advancing `pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bit(true);
        w.write_bits(0xABCD, 16);
        w.write_bits(7, 5);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(16), Some(0xABCD));
        assert_eq!(r.read_bits(5), Some(7));
    }

    #[test]
    fn read_past_end_is_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn varint_round_trip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncated_is_none() {
        let buf = [0x80u8]; // continuation bit but no next byte
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn bit_len_tracks() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
    }
}
