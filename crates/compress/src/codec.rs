//! Pluggable block codecs for storage payloads.
//!
//! The durable archive journal (`xarch_storage`) stores one payload per
//! committed version and tags each block with the codec that encoded it,
//! so compression is a per-block choice rather than a file-level one —
//! the same framing trick cold-storage formats use so old blocks stay
//! readable when the preferred codec changes.

use std::borrow::Cow;

use crate::lzss;

/// How a storage block's payload is encoded on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockCodec {
    /// Payload bytes are stored verbatim.
    #[default]
    Raw,
    /// Payload is compressed with the LZSS (gzip-class) coder.
    Lzss,
}

impl BlockCodec {
    /// The on-disk codec tag.
    pub const fn id(self) -> u8 {
        match self {
            BlockCodec::Raw => 0,
            BlockCodec::Lzss => 1,
        }
    }

    /// Resolves an on-disk tag back to a codec.
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(BlockCodec::Raw),
            1 => Some(BlockCodec::Lzss),
            _ => None,
        }
    }

    /// Encodes `data`, returning the codec actually used and the encoded
    /// bytes. A compressing codec falls back to [`BlockCodec::Raw`] when
    /// compression does not shrink the payload, so callers must record the
    /// returned codec, not the requested one. Raw (and fallback) output
    /// borrows the input — no copy on the uncompressed hot path.
    pub fn encode(self, data: &[u8]) -> (BlockCodec, Cow<'_, [u8]>) {
        match self {
            BlockCodec::Raw => (BlockCodec::Raw, Cow::Borrowed(data)),
            BlockCodec::Lzss => {
                let c = lzss::compress(data);
                if c.len() < data.len() {
                    (BlockCodec::Lzss, Cow::Owned(c))
                } else {
                    (BlockCodec::Raw, Cow::Borrowed(data))
                }
            }
        }
    }

    /// Decodes bytes written by [`BlockCodec::encode`]. Returns `None` when
    /// the payload is not a valid encoding under this codec.
    pub fn decode(self, data: &[u8]) -> Option<Vec<u8>> {
        match self {
            BlockCodec::Raw => Some(data.to_vec()),
            BlockCodec::Lzss => lzss::decompress(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for c in [BlockCodec::Raw, BlockCodec::Lzss] {
            assert_eq!(BlockCodec::from_id(c.id()), Some(c));
        }
        assert_eq!(BlockCodec::from_id(9), None);
    }

    #[test]
    fn raw_round_trips() {
        let data = b"hello world".to_vec();
        let (c, enc) = BlockCodec::Raw.encode(&data);
        assert_eq!(c, BlockCodec::Raw);
        assert!(matches!(enc, std::borrow::Cow::Borrowed(_)));
        assert_eq!(c.decode(&enc).unwrap(), data);
    }

    #[test]
    fn lzss_round_trips_and_shrinks_repetitive_data() {
        let data: Vec<u8> = b"<rec><id>1</id><val>abc</val></rec>"
            .iter()
            .cycle()
            .take(3500)
            .copied()
            .collect();
        let (c, enc) = BlockCodec::Lzss.encode(&data);
        assert_eq!(c, BlockCodec::Lzss);
        assert!(enc.len() < data.len());
        assert_eq!(c.decode(&enc).unwrap(), data);
    }

    #[test]
    fn lzss_falls_back_to_raw_on_incompressible_input() {
        // a short, non-repeating payload: LZSS adds overhead, so encode
        // must report Raw and store the bytes verbatim
        let data: Vec<u8> = (0u8..=50).collect();
        let (c, enc) = BlockCodec::Lzss.encode(&data);
        assert_eq!(c, BlockCodec::Raw);
        assert!(matches!(enc, std::borrow::Cow::Borrowed(_)));
        assert_eq!(enc.as_ref(), &data[..]);
    }
}
