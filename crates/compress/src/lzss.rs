//! LZSS: LZ77 with a flag bit per token (literal vs back-reference).
//!
//! * window: 32 KiB (like DEFLATE);
//! * distances: variable-length (4-bit width + payload), so *near* matches
//!   cost fewer bits than far ones — the locality property that makes
//!   container grouping (XMill) and text grouping generally pay off, just
//!   as gzip's Huffman-coded distances do;
//! * matches: length 3..=258, encoded in 8 bits (`len - 3`);
//! * match finder: 3-byte hash chains with a bounded probe depth, greedy
//!   with one-step lazy matching (the standard gzip heuristic).
//!
//! The format is self-delimiting via a leading varint holding the
//! uncompressed length.

use crate::bitio::{read_varint, write_varint, BitReader, BitWriter};

const WINDOW: usize = 1 << 15; // 32 KiB
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 255;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 64;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data`; output starts with a varint of the original length.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut header = Vec::with_capacity(10);
    write_varint(&mut header, data.len() as u64);
    let mut w = BitWriter::new();

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len().max(1)];

    let find = |head: &[usize], prev: &[usize], i: usize| -> Option<(usize, usize)> {
        if i + MIN_MATCH > data.len() {
            return None;
        }
        let mut best: Option<(usize, usize)> = None; // (len, dist)
        let mut cand = head[hash3(data, i)];
        let mut chain = 0;
        while cand != usize::MAX && chain < MAX_CHAIN {
            if i - cand > WINDOW {
                break;
            }
            let max_len = MAX_MATCH.min(data.len() - i);
            let mut len = 0;
            while len < max_len && data[cand + len] == data[i + len] {
                len += 1;
            }
            if len >= MIN_MATCH && best.is_none_or(|(bl, _)| len > bl) {
                best = Some((len, i - cand));
                if len == max_len {
                    break;
                }
            }
            cand = prev[cand];
            chain += 1;
        }
        best
    };
    let insert = |head: &mut [usize], prev: &mut [usize], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i] = head[h];
            head[h] = i;
        }
    };

    let mut i = 0usize;
    while i < data.len() {
        let m = find(&head, &prev, i);
        // lazy matching: prefer a longer match starting at i+1
        let take = match m {
            Some((len, dist)) => {
                let next = if i + 1 < data.len() {
                    // peek without inserting i first (conservative)
                    find(&head, &prev, i + 1)
                } else {
                    None
                };
                match next {
                    Some((nlen, _)) if nlen > len + 1 => None, // emit literal, match next round
                    _ => Some((len, dist)),
                }
            }
            None => None,
        };
        match take {
            Some((len, dist)) => {
                w.write_bit(false);
                write_dist(&mut w, dist);
                w.write_bits((len - MIN_MATCH) as u32, 8);
                for k in 0..len {
                    insert(&mut head, &mut prev, i + k);
                }
                i += len;
            }
            None => {
                w.write_bit(true);
                w.write_bits(data[i] as u32, 8);
                insert(&mut head, &mut prev, i);
                i += 1;
            }
        }
    }
    let mut out = header;
    out.extend_from_slice(&w.finish());
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(buf: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let n = read_varint(buf, &mut pos)? as usize;
    let mut r = BitReader::new(&buf[pos..]);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let is_lit = r.read_bit()?;
        if is_lit {
            out.push(r.read_bits(8)? as u8);
        } else {
            let dist = read_dist(&mut r)?;
            let len = r.read_bits(8)? as usize + MIN_MATCH;
            if dist > out.len() {
                return None;
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    (out.len() == n).then_some(out)
}

/// Encodes `dist - 1` as a 4-bit width followed by that many payload bits.
/// Distance 1 costs 4 bits; distance 32768 costs 19.
fn write_dist(w: &mut BitWriter, dist: usize) {
    let v = (dist - 1) as u32;
    let nbits = if v == 0 { 0 } else { 32 - v.leading_zeros() } as u8;
    debug_assert!(nbits <= 15);
    w.write_bits(nbits as u32, 4);
    if nbits > 0 {
        w.write_bits(v, nbits);
    }
}

fn read_dist(r: &mut BitReader<'_>) -> Option<usize> {
    let nbits = r.read_bits(4)? as u8;
    let v = if nbits == 0 { 0 } else { r.read_bits(nbits)? };
    Some(v as usize + 1)
}

/// Compressed size of `data` (convenience for the size series).
pub fn compressed_len(data: &[u8]) -> usize {
    compress(data).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c).as_deref(), Some(data));
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = b"abcabcabcabcabcabcabcabcabcabcabcabc".repeat(100);
        let c = round_trip(&data);
        assert!(c < data.len() / 10, "{} vs {}", c, data.len());
    }

    #[test]
    fn xml_like_text_compresses() {
        let mut s = String::new();
        for i in 0..500 {
            s.push_str(&format!(
                "<emp><fn>Name{i}</fn><ln>Surname{i}</ln><sal>90K</sal></emp>\n"
            ));
        }
        let c = round_trip(s.as_bytes());
        assert!(c < s.len() / 3, "{} vs {}", c, s.len());
    }

    #[test]
    fn incompressible_data_expands_bounded() {
        // pseudo-random bytes: ~9/8 expansion + header at worst
        let mut data = Vec::with_capacity(4096);
        let mut x = 0x12345678u32;
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            data.push(x as u8);
        }
        let c = round_trip(&data);
        assert!(c <= data.len() * 9 / 8 + 16);
    }

    #[test]
    fn long_runs_use_max_match() {
        let data = vec![b'x'; 100_000];
        let c = round_trip(&data);
        assert!(c < 2_000, "run-length-ish compression expected, got {c}");
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "aaaaa..." forces dist=1 matches that overlap the output cursor
        let data = b"a".repeat(1000);
        round_trip(&data);
    }

    #[test]
    fn matches_across_window_boundary_are_rejected() {
        // data longer than the window still round-trips
        let mut data = Vec::new();
        for i in 0..(WINDOW * 3) {
            data.push((i % 251) as u8);
        }
        round_trip(&data);
    }

    #[test]
    fn corrupt_input_returns_none() {
        let c = compress(b"hello world hello world");
        assert!(decompress(&c[..c.len() - 1]).is_none() || decompress(&c[..c.len() - 1]).is_some());
        // truncated header
        assert_eq!(decompress(&[0x80]), None);
        // declared length longer than stream
        let mut bogus = Vec::new();
        write_varint(&mut bogus, 1000);
        assert_eq!(decompress(&bogus), None);
    }

    #[test]
    fn utf8_text_round_trips() {
        let s = "naïve café — ναι — 日本語のテキスト".repeat(50);
        round_trip(s.as_bytes());
    }
}
