//! An XMill-style XML compressor (Liefke & Suciu, SIGMOD 2000), rebuilt
//! from scratch on the LZSS backend.
//!
//! The document is separated into:
//!
//! * a **structure stream** — open/attr/text/close tokens with interned
//!   names, varint-encoded;
//! * one **text container per path** — all text occurring under the same
//!   element path (and all values of the same attribute) are concatenated,
//!   length-prefixed, into one buffer.
//!
//! Each part is compressed independently. "Since text data that belong to
//! elements of the same name tend to be fairly similar, high compression
//! ratios can usually be achieved" (§5.4) — the grouping is exactly why
//! `xmill(archive)` beats `gzip(diff repo)` in the paper's Fig 12–14.

use std::collections::HashMap;

use xarch_xml::{Document, NodeId, NodeKind};

use crate::bitio::{read_varint, write_varint};
use crate::lzss;

const TOKEN_CLOSE: u64 = 0;
const TOKEN_TEXT: u64 = 1;

#[inline]
fn token_open(name: u64) -> u64 {
    2 + name * 2
}

#[inline]
fn token_attr(name: u64) -> u64 {
    3 + name * 2
}

#[derive(Default)]
struct Containers {
    by_path: HashMap<String, usize>,
    bufs: Vec<(String, Vec<u8>)>,
}

impl Containers {
    fn push(&mut self, path: &str, data: &[u8]) {
        let idx = match self.by_path.get(path) {
            Some(&i) => i,
            None => {
                let i = self.bufs.len();
                self.by_path.insert(path.to_owned(), i);
                self.bufs.push((path.to_owned(), Vec::new()));
                i
            }
        };
        let buf = &mut self.bufs[idx].1;
        write_varint(buf, data.len() as u64);
        buf.extend_from_slice(data);
    }
}

/// Compresses a document. The output is self-contained.
pub fn xml_compress(doc: &Document) -> Vec<u8> {
    let mut names: Vec<String> = Vec::new();
    let mut name_ids: HashMap<String, u64> = HashMap::new();
    let mut structure: Vec<u8> = Vec::new();
    let mut containers = Containers::default();
    let mut path: Vec<String> = Vec::new();

    fn name_id(names: &mut Vec<String>, ids: &mut HashMap<String, u64>, name: &str) -> u64 {
        if let Some(&i) = ids.get(name) {
            return i;
        }
        let i = names.len() as u64;
        names.push(name.to_owned());
        ids.insert(name.to_owned(), i);
        i
    }

    fn walk(
        doc: &Document,
        id: NodeId,
        names: &mut Vec<String>,
        ids: &mut HashMap<String, u64>,
        structure: &mut Vec<u8>,
        containers: &mut Containers,
        path: &mut Vec<String>,
    ) {
        match &doc.node(id).kind {
            NodeKind::Text(t) => {
                write_varint(structure, TOKEN_TEXT);
                containers.push(&path.join("/"), t.as_bytes());
            }
            NodeKind::Element(s) => {
                let tag = doc.syms().resolve(*s).to_owned();
                let tid = name_id(names, ids, &tag);
                write_varint(structure, token_open(tid));
                path.push(tag);
                for (a, v) in doc.attrs(id) {
                    let an = doc.syms().resolve(*a).to_owned();
                    let aid = name_id(names, ids, &an);
                    write_varint(structure, token_attr(aid));
                    let cpath = format!("{}/@{an}", path.join("/"));
                    containers.push(&cpath, v.as_bytes());
                }
                for &c in doc.children(id) {
                    walk(doc, c, names, ids, structure, containers, path);
                }
                write_varint(structure, TOKEN_CLOSE);
                path.pop();
            }
        }
    }

    walk(
        doc,
        doc.root(),
        &mut names,
        &mut name_ids,
        &mut structure,
        &mut containers,
        &mut path,
    );

    let mut out = Vec::new();
    write_varint(&mut out, names.len() as u64);
    for n in &names {
        write_varint(&mut out, n.len() as u64);
        out.extend_from_slice(n.as_bytes());
    }
    let cstructure = lzss::compress(&structure);
    write_varint(&mut out, cstructure.len() as u64);
    out.extend_from_slice(&cstructure);
    write_varint(&mut out, containers.bufs.len() as u64);
    for (cpath, buf) in &containers.bufs {
        write_varint(&mut out, cpath.len() as u64);
        out.extend_from_slice(cpath.as_bytes());
        let cbuf = lzss::compress(buf);
        write_varint(&mut out, cbuf.len() as u64);
        out.extend_from_slice(&cbuf);
    }
    out
}

/// Decompresses the output of [`xml_compress`] back into a document.
pub fn xml_decompress(buf: &[u8]) -> Option<Document> {
    let mut pos = 0usize;
    let n_names = read_varint(buf, &mut pos)? as usize;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        let len = read_varint(buf, &mut pos)? as usize;
        let s = std::str::from_utf8(buf.get(pos..pos + len)?).ok()?;
        names.push(s.to_owned());
        pos += len;
    }
    let slen = read_varint(buf, &mut pos)? as usize;
    let structure = lzss::decompress(buf.get(pos..pos + slen)?)?;
    pos += slen;
    let n_containers = read_varint(buf, &mut pos)? as usize;
    // container path -> (entries buffer, cursor)
    let mut containers: HashMap<String, (Vec<u8>, usize)> = HashMap::new();
    for _ in 0..n_containers {
        let plen = read_varint(buf, &mut pos)? as usize;
        let cpath = std::str::from_utf8(buf.get(pos..pos + plen)?)
            .ok()?
            .to_owned();
        pos += plen;
        let clen = read_varint(buf, &mut pos)? as usize;
        let data = lzss::decompress(buf.get(pos..pos + clen)?)?;
        pos += clen;
        containers.insert(cpath, (data, 0));
    }

    let mut next_entry = |cpath: &str| -> Option<String> {
        let (data, cur) = containers.get_mut(cpath)?;
        let mut p = *cur;
        let len = read_varint(data, &mut p)? as usize;
        let s = std::str::from_utf8(data.get(p..p + len)?).ok()?.to_owned();
        *cur = p + len;
        Some(s)
    };

    let mut spos = 0usize;
    let mut doc: Option<Document> = None;
    let mut stack: Vec<NodeId> = Vec::new();
    let mut path: Vec<String> = Vec::new();
    while spos < structure.len() {
        let tok = read_varint(&structure, &mut spos)?;
        match tok {
            TOKEN_CLOSE => {
                stack.pop()?;
                path.pop();
            }
            TOKEN_TEXT => {
                let text = next_entry(&path.join("/"))?;
                let d = doc.as_mut()?;
                let top = *stack.last()?;
                d.add_text(top, &text);
            }
            t if t % 2 == 0 => {
                // OPEN
                let name = names.get(((t - 2) / 2) as usize)?;
                match (&mut doc, stack.last().copied()) {
                    (None, _) => {
                        let d = Document::new(name);
                        stack.push(d.root());
                        doc = Some(d);
                    }
                    (Some(d), Some(top)) => {
                        let e = d.add_element(top, name);
                        stack.push(e);
                    }
                    (Some(_), None) => return None, // second root
                }
                path.push(name.clone());
            }
            t => {
                // ATTR
                let name = names.get(((t - 3) / 2) as usize)?.clone();
                let cpath = format!("{}/@{name}", path.join("/"));
                let value = next_entry(&cpath)?;
                let d = doc.as_mut()?;
                let top = *stack.last()?;
                d.set_attr(top, &name, &value);
            }
        }
    }
    if !stack.is_empty() {
        return None;
    }
    doc
}

/// Compressed size of a document (convenience for size series).
pub fn xml_compressed_len(doc: &Document) -> usize {
    xml_compress(doc).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_xml::parse;
    use xarch_xml::value_equal;

    fn round_trip(src: &str) -> usize {
        let doc = parse(src).unwrap();
        let c = xml_compress(&doc);
        let back = xml_decompress(&c).unwrap();
        assert!(
            value_equal(&doc, doc.root(), &back, back.root()),
            "round trip failed for {src}"
        );
        c.len()
    }

    #[test]
    fn company_example_round_trips() {
        round_trip(
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp></dept></db>",
        );
    }

    #[test]
    fn attributes_round_trip() {
        round_trip(r#"<site><item id="i1" featured="yes"><name>x &amp; y</name></item></site>"#);
    }

    #[test]
    fn archive_style_t_tags_round_trip() {
        round_trip(
            r#"<T t="1-4"><root><db><dept><name>finance</name><T t="3-4"><emp><fn>John</fn><T t="3"><sal>90K</sal></T><T t="4"><sal>95K</sal></T></emp></T></dept></db></root></T>"#,
        );
    }

    #[test]
    fn mixed_content_round_trips() {
        round_trip("<p>hello <b>world</b> goodbye <i>moon</i> end</p>");
    }

    #[test]
    fn empty_elements_round_trip() {
        round_trip("<a><b/><c/><b/></a>");
    }

    #[test]
    fn grouping_beats_plain_lzss_on_columnar_text() {
        // Interleaved dissimilar fields: grouping by path brings similar
        // text together, which plain LZSS over the serialized form cannot.
        let mut src = String::from("<recs>");
        for i in 0..400 {
            src.push_str(&format!(
                "<r><seq>AGCTAGCTAGGA{i:04}TTAGGACCA</seq><num>{}</num><flag>f{}</flag></r>",
                i * 37 % 1000,
                i % 2
            ));
        }
        src.push_str("</recs>");
        let doc = parse(&src).unwrap();
        let xmill_len = xml_compress(&doc).len();
        let plain_len = crate::lzss::compress(src.as_bytes()).len();
        assert!(
            xmill_len < plain_len,
            "xmill {} should beat plain lzss {}",
            xmill_len,
            plain_len
        );
        // and it must still round-trip
        let back = xml_decompress(&xml_compress(&doc)).unwrap();
        assert!(value_equal(&doc, doc.root(), &back, back.root()));
    }

    #[test]
    fn corrupt_buffer_is_rejected() {
        let doc = parse("<a><b>hi</b></a>").unwrap();
        let c = xml_compress(&doc);
        assert!(xml_decompress(&c[..c.len() / 2]).is_none());
        assert!(xml_decompress(&[]).is_none());
    }

    #[test]
    fn unicode_text_round_trips() {
        round_trip("<a><t>日本語 ✓ naïve</t><t>ελληνικά</t></a>");
    }
}
