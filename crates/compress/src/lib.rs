//! # xarch-compress
//!
//! The compression substrate for §5.4 of *Archiving Scientific Data*.
//! The paper compresses delta repositories with `gzip -9` and archives with
//! `XMill -9`; both are closed tools from the paper's era, so this crate
//! implements the same two *mechanisms* from scratch:
//!
//! * [`lzss`] — an LZ77/LZSS byte compressor (sliding window, hash-chain
//!   match finder). Plays the role of gzip: a general-purpose LZ-family
//!   coder applied to flat text.
//! * [`xmill`] — an XMill-style XML compressor: the document is split into
//!   a *structure stream* and per-path *text containers* ("XMill groups
//!   text data according to the names of the elements in which they occur
//!   and compresses each group separately", §5.4), each compressed with the
//!   LZSS backend. Grouping similar text multiplies LZ locality — the
//!   effect that makes `xmill(archive)` the smallest series in Fig 12.
//!
//! Both codecs are real (lossless, round-trip tested), so the size series
//! they produce are honest measurements, not estimates.

pub mod bitio;
pub mod codec;
pub mod lzss;
pub mod xmill;

pub use codec::BlockCodec;
pub use lzss::{compress, decompress};
pub use xmill::{xml_compress, xml_decompress};
