//! Myers' O(ND) difference algorithm (Algorithmica '86), linear-space
//! variant (the "middle snake" divide and conquer of §4b of the paper, as
//! used by GNU diff). Produces a *minimal* edit script, matching the paper's
//! use of `diff -d`: "the sizes of our diff repositories are always the
//! smallest possible" (§5).
//!
//! Sequences are interned to `u32` ids first so all comparisons inside the
//! O(ND) core are integer compares.

use std::collections::HashMap;

use crate::script::{Edit, Script};

/// Computes a minimal line-based edit script transforming `a` into `b`.
pub fn diff_lines(a: &[&str], b: &[&str]) -> Script {
    // Intern lines so the hot loop compares u32s.
    let mut table: HashMap<&str, u32> = HashMap::new();
    let mut ai: Vec<u32> = Vec::with_capacity(a.len());
    for &s in a {
        let next = table.len() as u32;
        ai.push(*table.entry(s).or_insert(next));
    }
    let mut bi: Vec<u32> = Vec::with_capacity(b.len());
    for &s in b {
        let next = table.len() as u32;
        bi.push(*table.entry(s).or_insert(next));
    }

    let mut matches = Vec::new();
    lcs_rec(&ai, &bi, 0, 0, &mut matches);
    hunks_from_matches(&matches, a.len(), b.len(), b)
}

/// Convenience: diff two texts split on `\n`.
pub fn diff_texts(a: &str, b: &str) -> Script {
    let al: Vec<&str> = split_lines(a);
    let bl: Vec<&str> = split_lines(b);
    diff_lines(&al, &bl)
}

/// Splits on newlines, keeping the convention that a trailing newline does
/// not produce an empty final line.
pub fn split_lines(s: &str) -> Vec<&str> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.strip_suffix('\n').unwrap_or(s).split('\n').collect()
    }
}

/// Recursively collects LCS matches `(i, j)` (with global offsets) between
/// `a` and `b`.
fn lcs_rec(a: &[u32], b: &[u32], a_off: usize, b_off: usize, out: &mut Vec<(usize, usize)>) {
    // Strip common prefix.
    let mut p = 0;
    while p < a.len() && p < b.len() && a[p] == b[p] {
        out.push((a_off + p, b_off + p));
        p += 1;
    }
    let (a, b) = (&a[p..], &b[p..]);
    let (a_off, b_off) = (a_off + p, b_off + p);
    // Strip common suffix.
    let mut s = 0;
    while s < a.len() && s < b.len() && a[a.len() - 1 - s] == b[b.len() - 1 - s] {
        s += 1;
    }
    let suffix_a = a.len() - s;
    let suffix_b = b.len() - s;
    let (a_core, b_core) = (&a[..suffix_a], &b[..suffix_b]);

    if !a_core.is_empty() && !b_core.is_empty() {
        let (d, (x, y, u, v)) = middle_snake(a_core, b_core);
        if d > 1 {
            lcs_rec(&a_core[..x], &b_core[..y], a_off, b_off, out);
            for i in 0..(u - x) {
                out.push((a_off + x + i, b_off + y + i));
            }
            lcs_rec(&a_core[u..], &b_core[v..], a_off + u, b_off + v, out);
        } else {
            // Edit distance ≤ 1: one sequence is the other with a single
            // insertion or deletion; a greedy walk aligns them.
            let (mut i, mut j) = (0usize, 0usize);
            while i < a_core.len() && j < b_core.len() {
                if a_core[i] == b_core[j] {
                    out.push((a_off + i, b_off + j));
                    i += 1;
                    j += 1;
                } else if a_core.len() > b_core.len() {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    // Emit suffix matches.
    for i in 0..s {
        out.push((a_off + suffix_a + i, b_off + suffix_b + i));
    }
}

/// Finds the middle snake of the minimal edit path between `a` and `b`
/// (both non-empty). Returns `(d, (x, y, u, v))`: the minimal edit distance
/// `d` and a (possibly empty) snake from `(x,y)` to `(u,v)` lying on some
/// minimal path.
fn middle_snake(a: &[u32], b: &[u32]) -> (usize, (usize, usize, usize, usize)) {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let delta = n - m;
    let odd = delta.rem_euclid(2) == 1;
    let max = (n + m + 1) / 2 + 1;
    let sz = (2 * max + 3) as usize;
    let idx = |k: isize| (k + max + 1) as usize;
    let mut vf = vec![0isize; sz];
    let mut vb = vec![0isize; sz];

    for d in 0..=max {
        // Forward D-paths.
        let mut k = -d;
        while k <= d {
            let mut x = if k == -d || (k != d && vf[idx(k - 1)] < vf[idx(k + 1)]) {
                vf[idx(k + 1)]
            } else {
                vf[idx(k - 1)] + 1
            };
            let mut y = x - k;
            let (x0, y0) = (x, y);
            while x < n && y < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            vf[idx(k)] = x;
            if odd && (k - delta).abs() < d {
                // Overlap with the furthest reverse (d-1)-path on the same
                // diagonal: reverse diagonal is delta - k.
                let xr = vb[idx(delta - k)];
                if x + xr >= n {
                    return (
                        (2 * d - 1) as usize,
                        (x0 as usize, y0 as usize, x as usize, y as usize),
                    );
                }
            }
            k += 2;
        }
        // Reverse D-paths (computed on the reversed sequences).
        let mut k = -d;
        while k <= d {
            let mut x = if k == -d || (k != d && vb[idx(k - 1)] < vb[idx(k + 1)]) {
                vb[idx(k + 1)]
            } else {
                vb[idx(k - 1)] + 1
            };
            let mut y = x - k;
            let (x0, y0) = (x, y);
            while x < n && y < m && a[(n - 1 - x) as usize] == b[(m - 1 - y) as usize] {
                x += 1;
                y += 1;
            }
            vb[idx(k)] = x;
            if !odd && (k - delta).abs() <= d {
                let xf = vf[idx(delta - k)];
                if x + xf >= n {
                    // Convert the reverse snake to forward coordinates:
                    // it runs from (n-x, m-y) to (n-x0, m-y0).
                    return (
                        (2 * d) as usize,
                        (
                            (n - x) as usize,
                            (m - y) as usize,
                            (n - x0) as usize,
                            (m - y0) as usize,
                        ),
                    );
                }
            }
            k += 2;
        }
    }
    unreachable!("middle snake must exist for non-empty inputs")
}

/// Converts an ordered match list into replace-edits against `a`.
fn hunks_from_matches(
    matches: &[(usize, usize)],
    a_len: usize,
    b_len: usize,
    b: &[&str],
) -> Script {
    let mut edits = Vec::new();
    let (mut ai, mut bi) = (0usize, 0usize);
    let mut push = |a_start: usize, a_end: usize, b_start: usize, b_end: usize| {
        if a_start != a_end || b_start != b_end {
            edits.push(Edit {
                a_start,
                a_len: a_end - a_start,
                b_lines: b[b_start..b_end].iter().map(|s| (*s).to_owned()).collect(),
            });
        }
    };
    for &(mi, mj) in matches {
        push(ai, mi, bi, mj);
        ai = mi + 1;
        bi = mj + 1;
    }
    push(ai, a_len, bi, b_len);
    Script { edits }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_str(a: &str, s: &Script) -> String {
        let al = split_lines(a);
        s.apply(&al).join("\n")
    }

    fn roundtrip(a: &str, b: &str) -> Script {
        let s = diff_texts(a, b);
        assert_eq!(apply_str(a, &s), b.strip_suffix('\n').unwrap_or(b));
        s
    }

    #[test]
    fn identical_inputs_empty_script() {
        let s = roundtrip("a\nb\nc", "a\nb\nc");
        assert!(s.edits.is_empty());
    }

    #[test]
    fn pure_insert() {
        let s = roundtrip("a\nc", "a\nb\nc");
        assert_eq!(s.edits.len(), 1);
        assert_eq!(s.edits[0].a_len, 0);
        assert_eq!(s.edits[0].b_lines, vec!["b"]);
    }

    #[test]
    fn pure_delete() {
        let s = roundtrip("a\nb\nc", "a\nc");
        assert_eq!(s.edits.len(), 1);
        assert_eq!(s.edits[0].a_len, 1);
        assert!(s.edits[0].b_lines.is_empty());
    }

    #[test]
    fn replace() {
        let s = roundtrip("a\nb\nc", "a\nx\nc");
        assert_eq!(s.edits.len(), 1);
        assert_eq!(s.edits[0].a_len, 1);
        assert_eq!(s.edits[0].b_lines, vec!["x"]);
    }

    #[test]
    fn empty_to_something_and_back() {
        roundtrip("", "a\nb");
        roundtrip("a\nb", "");
    }

    #[test]
    fn classic_myers_example() {
        // ABCABBA -> CBABAC has edit distance 5
        let a: Vec<&str> = "A B C A B B A".split(' ').collect();
        let b: Vec<&str> = "C B A B A C".split(' ').collect();
        let s = diff_lines(&a, &b);
        assert_eq!(s.apply(&a), b);
        assert_eq!(s.edit_cost(), 5);
    }

    #[test]
    fn paper_figure_1_diff_shape() {
        // The gene-swap example: diff explains the change as id/name edits.
        let v1 = "<gene>\n<id>6230</id>\n<name>GRTM</name>\n<seq>GTCG...</seq>\n<pos>11A52</pos>\n</gene>\n<gene>\n<id>2953</id>\n<name>ACV2</name>\n<seq>AGTT...</seq>\n<pos>08A96</pos>\n</gene>";
        let v2 = "<gene>\n<id>2953</id>\n<name>ACV2</name>\n<seq>GTCG...</seq>\n<pos>11A52</pos>\n</gene>\n<gene>\n<id>6230</id>\n<name>GRTM</name>\n<seq>AGTT...</seq>\n<pos>08A96</pos>\n</gene>";
        let s = roundtrip(v1, v2);
        // Minimal diff touches the two id/name pairs: 4 deleted + 4 inserted.
        assert_eq!(s.edit_cost(), 8);
    }

    /// Reference O(N·M) DP edit distance (insert/delete unit cost).
    #[allow(clippy::needless_range_loop)]
    fn dp_distance(a: &[&str], b: &[&str]) -> usize {
        let n = a.len();
        let m = b.len();
        let mut dp = vec![vec![0usize; m + 1]; n + 1];
        for i in 0..=n {
            dp[i][0] = i;
        }
        for j in 0..=m {
            dp[0][j] = j;
        }
        for i in 1..=n {
            for j in 1..=m {
                dp[i][j] = if a[i - 1] == b[j - 1] {
                    dp[i - 1][j - 1]
                } else {
                    1 + dp[i - 1][j].min(dp[i][j - 1])
                };
            }
        }
        dp[n][m]
    }

    #[test]
    fn minimality_against_dp_reference() {
        let alphabet = ["x", "y", "z", "w"];
        // Deterministic pseudo-random small cases.
        let mut seed = 0x243F6A8885A308D3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..300 {
            let la = (next() % 9) as usize;
            let lb = (next() % 9) as usize;
            let a: Vec<&str> = (0..la).map(|_| alphabet[(next() % 4) as usize]).collect();
            let b: Vec<&str> = (0..lb).map(|_| alphabet[(next() % 4) as usize]).collect();
            let s = diff_lines(&a, &b);
            assert_eq!(s.apply(&a), b, "apply failed for {a:?} -> {b:?}");
            assert_eq!(
                s.edit_cost(),
                dp_distance(&a, &b),
                "non-minimal script for {a:?} -> {b:?}"
            );
        }
    }

    #[test]
    fn large_disjoint_inputs() {
        // Completely different sequences: cost = n + m, no quadratic memory.
        let a: Vec<String> = (0..2000).map(|i| format!("a{i}")).collect();
        let b: Vec<String> = (0..2000).map(|i| format!("b{i}")).collect();
        let ar: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
        let br: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
        let s = diff_lines(&ar, &br);
        assert_eq!(s.apply(&ar), br);
        assert_eq!(s.edit_cost(), 4000);
    }

    #[test]
    fn split_lines_conventions() {
        assert_eq!(split_lines(""), Vec::<&str>::new());
        assert_eq!(split_lines("a"), vec!["a"]);
        assert_eq!(split_lines("a\n"), vec!["a"]);
        assert_eq!(split_lines("a\nb\n"), vec!["a", "b"]);
        assert_eq!(split_lines("\n"), vec![""]);
    }
}
