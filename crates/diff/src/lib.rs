//! # xarch-diff
//!
//! The diff-based machinery of *Archiving Scientific Data*: the competitors
//! the paper benchmarks against (§5) and the fallback the archiver itself
//! uses beneath frontier nodes.
//!
//! * [`myers`] — Myers' O(ND) minimal line diff (the algorithm behind
//!   `unix diff -d`), in the linear-space divide-and-conquer formulation;
//! * [`script`] — edit scripts: application, inversion, and the byte-sized
//!   "normal format" serialization used for the paper's size series;
//! * [`repo`] — the **incremental** (V1 + successive deltas) and
//!   **cumulative** (V1 + deltas-from-V1) repositories of §5;
//! * [`sccs`] — an SCCS-style weave (Rochkind '75), the closest ancestor of
//!   the paper's merging approach (§8).

pub mod myers;
pub mod repo;
pub mod sccs;
pub mod script;

pub use myers::{diff_lines, diff_texts, split_lines};
pub use repo::{CumulativeRepo, IncrementalRepo};
pub use sccs::Weave;
pub use script::{Edit, Script};
