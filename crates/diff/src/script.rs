//! Edit scripts over line sequences.
//!
//! A [`Script`] is an ordered, non-overlapping list of replace-[`Edit`]s
//! against the source sequence. Scripts can be applied, inverted (given the
//! source they were computed from), and serialized to the `diff` *normal
//! format* — the byte size of that serialization is what the paper's size
//! series measure for delta repositories.

use std::fmt::Write as _;

/// One edit: replace `a[a_start .. a_start + a_len]` with `b_lines`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Start position in the source sequence.
    pub a_start: usize,
    /// Number of source lines replaced (0 = pure insertion before `a_start`).
    pub a_len: usize,
    /// Replacement lines (empty = pure deletion).
    pub b_lines: Vec<String>,
}

/// A minimal edit script: edits sorted by `a_start`, non-overlapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Script {
    pub edits: Vec<Edit>,
}

impl Script {
    /// True if the script changes nothing.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Total deleted + inserted line count (the Myers edit distance `D`).
    pub fn edit_cost(&self) -> usize {
        self.edits.iter().map(|e| e.a_len + e.b_lines.len()).sum()
    }

    /// Applies the script to `a`, producing the target sequence.
    pub fn apply(&self, a: &[&str]) -> Vec<String> {
        let mut out = Vec::with_capacity(a.len());
        let mut pos = 0usize;
        for e in &self.edits {
            debug_assert!(e.a_start >= pos, "edits must be sorted and disjoint");
            out.extend(a[pos..e.a_start].iter().map(|s| (*s).to_owned()));
            out.extend(e.b_lines.iter().cloned());
            pos = e.a_start + e.a_len;
        }
        out.extend(a[pos..].iter().map(|s| (*s).to_owned()));
        out
    }

    /// Applies the script to a text, treating it as newline-separated lines.
    pub fn apply_text(&self, a: &str) -> String {
        let lines = crate::myers::split_lines(a);
        self.apply(&lines).join("\n")
    }

    /// Inverts the script relative to the source `a` it was computed from:
    /// applying the result to `apply(a)` yields `a` again. This is how the
    /// backward-delta variants of §5 are obtained.
    pub fn invert(&self, a: &[&str]) -> Script {
        let mut edits = Vec::with_capacity(self.edits.len());
        // Track the offset between source and target positions.
        let mut shift = 0isize;
        for e in &self.edits {
            let b_start = (e.a_start as isize + shift) as usize;
            edits.push(Edit {
                a_start: b_start,
                a_len: e.b_lines.len(),
                b_lines: a[e.a_start..e.a_start + e.a_len]
                    .iter()
                    .map(|s| (*s).to_owned())
                    .collect(),
            });
            shift += e.b_lines.len() as isize - e.a_len as isize;
        }
        Script { edits }
    }

    /// Serializes in `diff` normal format (`5,7c5,6` / `3a4` / `8,9d7`
    /// commands with `< ` / `---` / `> ` payload lines). The source lines
    /// `a` are needed to print deletions.
    pub fn to_normal_format(&self, a: &[&str]) -> String {
        let mut out = String::new();
        let mut shift = 0isize;
        for e in &self.edits {
            let b_start = (e.a_start as isize + shift) as usize;
            let range = |start: usize, len: usize| -> String {
                // diff numbers lines from 1; empty ranges print the line
                // *before* the gap.
                if len == 0 {
                    format!("{}", start)
                } else if len == 1 {
                    format!("{}", start + 1)
                } else {
                    format!("{},{}", start + 1, start + len)
                }
            };
            let ar = range(e.a_start, e.a_len);
            let br = range(b_start, e.b_lines.len());
            if e.a_len == 0 {
                let _ = writeln!(out, "{ar}a{br}");
            } else if e.b_lines.is_empty() {
                let _ = writeln!(out, "{ar}d{br}");
            } else {
                let _ = writeln!(out, "{ar}c{br}");
            }
            for line in &a[e.a_start..e.a_start + e.a_len] {
                let _ = writeln!(out, "< {line}");
            }
            if e.a_len > 0 && !e.b_lines.is_empty() {
                out.push_str("---\n");
            }
            for line in &e.b_lines {
                let _ = writeln!(out, "> {line}");
            }
            shift += e.b_lines.len() as isize - e.a_len as isize;
        }
        out
    }

    /// Byte size of the normal-format serialization (the repository size
    /// contribution of this delta).
    pub fn size_bytes(&self, a: &[&str]) -> usize {
        self.to_normal_format(a).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::myers::{diff_texts, split_lines};

    #[test]
    fn invert_round_trips() {
        let a = "one\ntwo\nthree\nfour";
        let b = "one\n2\n2.5\nthree";
        let s = diff_texts(a, b);
        let al = split_lines(a);
        let bl_owned = s.apply(&al);
        let bl: Vec<&str> = bl_owned.iter().map(|s| s.as_str()).collect();
        let inv = s.invert(&al);
        assert_eq!(inv.apply(&bl), al);
    }

    #[test]
    fn invert_of_invert_is_original_effect() {
        let a = "a\nb\nc";
        let b = "x\nb\ny\nz";
        let s = diff_texts(a, b);
        let al = split_lines(a);
        let bl_owned = s.apply(&al);
        let bl: Vec<&str> = bl_owned.iter().map(|s| s.as_str()).collect();
        let inv2 = s.invert(&al).invert(&bl);
        assert_eq!(inv2.apply(&al), bl_owned);
    }

    #[test]
    fn normal_format_change() {
        let a = "keep\nold1\nold2\nkeep2";
        let b = "keep\nnew1\nkeep2";
        let s = diff_texts(a, b);
        let f = s.to_normal_format(&split_lines(a));
        assert_eq!(f, "2,3c2\n< old1\n< old2\n---\n> new1\n");
    }

    #[test]
    fn normal_format_add_and_delete() {
        let a = "a\nb";
        let b = "a\nx\nb";
        let s = diff_texts(a, b);
        assert_eq!(s.to_normal_format(&split_lines(a)), "1a2\n> x\n");

        let s2 = diff_texts(b, a);
        assert_eq!(s2.to_normal_format(&split_lines(b)), "2d1\n< x\n");
    }

    #[test]
    fn size_counts_payload() {
        let a = "a";
        let b = "a\nlonger line here";
        let s = diff_texts(a, b);
        assert!(s.size_bytes(&split_lines(a)) >= "longer line here".len());
    }

    #[test]
    fn edit_cost_sums_both_sides() {
        let s = Script {
            edits: vec![Edit {
                a_start: 0,
                a_len: 2,
                b_lines: vec!["x".into(), "y".into(), "z".into()],
            }],
        };
        assert_eq!(s.edit_cost(), 5);
    }

    #[test]
    fn apply_text_convenience() {
        let s = diff_texts("a\nb", "a\nc");
        assert_eq!(s.apply_text("a\nb"), "a\nc");
    }
}
