//! The two diff-based repository layouts the paper benchmarks against (§5).
//!
//! * [`IncrementalRepo`] — "stores the first version and diffs of every
//!   successive pair of versions". Space-optimal among delta schemes
//!   ("logically achieves the smallest space cost", §5.3), but retrieving
//!   version *i* applies *i−1* deltas.
//! * [`CumulativeRepo`] — "stores the first version and diffs of every
//!   version from the first version". One delta application retrieves any
//!   version, but space grows quadratically with the number of versions
//!   (§5.2, Fig 11).
//!
//! Repositories store the line-oriented serialization of each XML version,
//! which is exactly how the paper ran `unix diff`.

use crate::myers::{diff_texts, split_lines};
use crate::script::Script;

/// V1 + successive deltas (forward direction; the paper notes forward and
/// backward variants have the same size).
#[derive(Debug, Default, Clone)]
pub struct IncrementalRepo {
    first: String,
    /// `deltas[i]` transforms version `i+1` into version `i+2`.
    deltas: Vec<Script>,
    /// Byte sizes of the normal-format serialization of each delta.
    delta_sizes: Vec<usize>,
    /// The latest version, kept so the next delta can be computed without
    /// replaying the chain.
    latest: String,
}

impl IncrementalRepo {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored versions.
    pub fn versions(&self) -> usize {
        if self.latest.is_empty() && self.deltas.is_empty() && self.first.is_empty() {
            0
        } else {
            self.deltas.len() + 1
        }
    }

    /// Appends a new version (its line-oriented text).
    pub fn add_version(&mut self, text: &str) {
        if self.versions() == 0 {
            self.first = text.to_owned();
            self.latest = text.to_owned();
            return;
        }
        let script = diff_texts(&self.latest, text);
        let prev_lines = split_lines(&self.latest);
        self.delta_sizes.push(script.size_bytes(&prev_lines));
        self.deltas.push(script);
        self.latest = text.to_owned();
    }

    /// Total repository size: first version plus all delta scripts.
    pub fn size_bytes(&self) -> usize {
        self.first.len() + self.delta_sizes.iter().sum::<usize>()
    }

    /// Retrieves version `v` (1-based) by replaying `v-1` deltas.
    pub fn retrieve(&self, v: usize) -> Option<String> {
        if v == 0 || v > self.versions() {
            return None;
        }
        let mut cur = self.first.clone();
        for script in &self.deltas[..v - 1] {
            cur = script.apply_text(&cur);
        }
        Some(cur)
    }

    /// Number of delta applications needed to retrieve version `v` — the
    /// paper's "retrieving an old version might involve undoing or applying
    /// many deltas" (§1).
    pub fn retrieval_work(&self, v: usize) -> usize {
        v.saturating_sub(1)
    }

    /// Concatenated repository content (first version + all delta texts),
    /// which is what gets compressed in the `gzip(V1+inc diffs)` series.
    pub fn serialized(&self) -> String {
        let mut out = self.first.clone();
        let mut prev = self.first.clone();
        for script in &self.deltas {
            let prev_lines = split_lines(&prev);
            out.push('\n');
            out.push_str(&script.to_normal_format(&prev_lines));
            prev = script.apply_text(&prev);
        }
        out
    }
}

/// V1 + cumulative deltas (each from V1).
#[derive(Debug, Default, Clone)]
pub struct CumulativeRepo {
    first: String,
    deltas: Vec<Script>,
    delta_sizes: Vec<usize>,
    versions: usize,
}

impl CumulativeRepo {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored versions.
    pub fn versions(&self) -> usize {
        self.versions
    }

    /// Appends a new version.
    pub fn add_version(&mut self, text: &str) {
        self.versions += 1;
        if self.versions == 1 {
            self.first = text.to_owned();
            return;
        }
        let script = diff_texts(&self.first, text);
        let first_lines = split_lines(&self.first);
        self.delta_sizes.push(script.size_bytes(&first_lines));
        self.deltas.push(script);
    }

    /// Total repository size.
    pub fn size_bytes(&self) -> usize {
        self.first.len() + self.delta_sizes.iter().sum::<usize>()
    }

    /// Retrieves version `v` with a single delta application.
    pub fn retrieve(&self, v: usize) -> Option<String> {
        if v == 0 || v > self.versions {
            return None;
        }
        if v == 1 {
            return Some(self.first.clone());
        }
        Some(self.deltas[v - 2].apply_text(&self.first))
    }

    /// Always 1 (or 0 for V1): the advantage cumulative diffs buy.
    pub fn retrieval_work(&self, v: usize) -> usize {
        usize::from(v > 1)
    }

    /// Concatenated repository content for compression experiments.
    pub fn serialized(&self) -> String {
        let first_lines = split_lines(&self.first);
        let mut out = self.first.clone();
        for script in &self.deltas {
            out.push('\n');
            out.push_str(&script.to_normal_format(&first_lines));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn versions() -> Vec<String> {
        vec![
            "a\nb\nc".to_owned(),
            "a\nb2\nc".to_owned(),
            "a\nb2\nc\nd".to_owned(),
            "a\nc\nd".to_owned(),
        ]
    }

    #[test]
    fn incremental_retrieves_every_version() {
        let vs = versions();
        let mut repo = IncrementalRepo::new();
        for v in &vs {
            repo.add_version(v);
        }
        assert_eq!(repo.versions(), 4);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(repo.retrieve(i + 1).as_deref(), Some(v.as_str()));
        }
        assert_eq!(repo.retrieve(0), None);
        assert_eq!(repo.retrieve(5), None);
    }

    #[test]
    fn cumulative_retrieves_every_version() {
        let vs = versions();
        let mut repo = CumulativeRepo::new();
        for v in &vs {
            repo.add_version(v);
        }
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(repo.retrieve(i + 1).as_deref(), Some(v.as_str()));
        }
    }

    #[test]
    fn retrieval_work_contrast() {
        let vs = versions();
        let mut inc = IncrementalRepo::new();
        let mut cum = CumulativeRepo::new();
        for v in &vs {
            inc.add_version(v);
            cum.add_version(v);
        }
        assert_eq!(inc.retrieval_work(4), 3);
        assert_eq!(cum.retrieval_work(4), 1);
    }

    #[test]
    fn cumulative_grows_faster_on_drifting_data() {
        // As versions drift from V1, cumulative deltas each repeat the whole
        // drift while incremental deltas stay small (Fig 11's shape).
        let mut text = (0..200)
            .map(|i| format!("line{i}"))
            .collect::<Vec<_>>()
            .join("\n");
        let mut inc = IncrementalRepo::new();
        let mut cum = CumulativeRepo::new();
        inc.add_version(&text);
        cum.add_version(&text);
        for v in 0..10 {
            // change a few lines each version, cumulatively
            let mut lines: Vec<String> = text.split('\n').map(|s| s.to_owned()).collect();
            for j in 0..5 {
                let idx = (v * 5 + j) % lines.len();
                lines[idx] = format!("changed-{v}-{j}");
            }
            text = lines.join("\n");
            inc.add_version(&text);
            cum.add_version(&text);
        }
        assert!(cum.size_bytes() > inc.size_bytes());
    }

    #[test]
    fn empty_version_texts() {
        let mut repo = IncrementalRepo::new();
        repo.add_version("a");
        repo.add_version("");
        repo.add_version("b");
        assert_eq!(repo.retrieve(2).as_deref(), Some(""));
        assert_eq!(repo.retrieve(3).as_deref(), Some("b"));
    }

    #[test]
    fn serialized_contains_first_and_deltas() {
        let vs = versions();
        let mut repo = IncrementalRepo::new();
        for v in &vs {
            repo.add_version(v);
        }
        let s = repo.serialized();
        assert!(s.starts_with("a\nb\nc"));
        assert!(s.contains("b2"));
        // size accounting is consistent with serialization (up to the
        // newline separators between segments)
        assert!(s.len() >= repo.size_bytes());
    }
}
