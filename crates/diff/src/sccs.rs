//! An SCCS-style weave (Rochkind 1975).
//!
//! The paper positions its archiver as a key-aware generalization of SCCS
//! (§1, §8): SCCS merges all versions of a *text file* into one sequence
//! where each line carries the interval of versions it exists in, and any
//! version is retrieved by a single scan. The archiver does the same for
//! *keyed trees*. We implement the weave both as the paper's point of
//! comparison and as the mechanism behind "further compaction" beneath
//! frontier nodes (§4.2) — `xarch-core` weaves child sequences the same way
//! this module weaves lines.
//!
//! SCCS's known weakness (quoted in §8) is reproduced faithfully: a line
//! that is deleted and later re-inserted appears twice in the weave, because
//! lines have no keys.

use crate::myers::{diff_texts, split_lines};

/// One woven line: the text plus the half-open interval of versions in
/// which the line is live. `deleted == None` means still live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeaveLine {
    pub text: String,
    /// Version that introduced the line (1-based).
    pub inserted: u32,
    /// First version in which the line is absent.
    pub deleted: Option<u32>,
}

impl WeaveLine {
    /// True if the line belongs to version `v`.
    pub fn live_at(&self, v: u32) -> bool {
        self.inserted <= v && self.deleted.is_none_or(|d| v < d)
    }
}

/// An SCCS-style weave of all versions of a text.
#[derive(Debug, Default, Clone)]
pub struct Weave {
    lines: Vec<WeaveLine>,
    versions: u32,
}

impl Weave {
    /// Creates an empty weave.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of archived versions.
    pub fn versions(&self) -> u32 {
        self.versions
    }

    /// The woven lines (for inspection and size accounting).
    pub fn lines(&self) -> &[WeaveLine] {
        &self.lines
    }

    /// Adds the next version of the text.
    pub fn add_version(&mut self, text: &str) {
        self.versions += 1;
        let v = self.versions;
        if v == 1 {
            for line in split_lines(text) {
                self.lines.push(WeaveLine {
                    text: line.to_owned(),
                    inserted: 1,
                    deleted: None,
                });
            }
            return;
        }
        let prev = self.retrieve(v - 1).expect("previous version exists");
        let script = diff_texts(&prev, text);

        // Rebuild the weave, applying the script relative to the positions
        // of lines live at v-1.
        let mut out: Vec<WeaveLine> = Vec::with_capacity(self.lines.len() + script.edit_cost());
        let mut live_idx = 0usize; // position among lines live at v-1
        let mut edits = script.edits.iter().peekable();
        for mut line in self.lines.drain(..) {
            let was_live = line.live_at(v - 1);
            if was_live {
                // Pure insertions land *before* the live line at a_start.
                while let Some(e) = edits.peek() {
                    if e.a_start == live_idx && e.a_len == 0 {
                        for b in &e.b_lines {
                            out.push(WeaveLine {
                                text: b.clone(),
                                inserted: v,
                                deleted: None,
                            });
                        }
                        edits.next();
                    } else {
                        break;
                    }
                }
                if let Some(e) = edits.peek() {
                    if e.a_start <= live_idx && live_idx < e.a_start + e.a_len {
                        line.deleted = Some(v);
                        let is_last_deleted = live_idx == e.a_start + e.a_len - 1;
                        out.push(line);
                        if is_last_deleted {
                            for b in &e.b_lines {
                                out.push(WeaveLine {
                                    text: b.clone(),
                                    inserted: v,
                                    deleted: None,
                                });
                            }
                            edits.next();
                        }
                        live_idx += 1;
                        continue;
                    }
                }
                out.push(line);
                live_idx += 1;
            } else {
                out.push(line);
            }
        }
        // Trailing insertion at end of file.
        for e in edits {
            debug_assert_eq!(e.a_len, 0, "only a trailing insert may remain");
            for b in &e.b_lines {
                out.push(WeaveLine {
                    text: b.clone(),
                    inserted: v,
                    deleted: None,
                });
            }
        }
        self.lines = out;
    }

    /// Retrieves version `v` with a single scan of the weave.
    pub fn retrieve(&self, v: u32) -> Option<String> {
        if v == 0 || v > self.versions {
            return None;
        }
        let lines: Vec<&str> = self
            .lines
            .iter()
            .filter(|l| l.live_at(v))
            .map(|l| l.text.as_str())
            .collect();
        Some(lines.join("\n"))
    }

    /// Serializes the weave in an SCCS-like block format: runs of lines with
    /// identical (inserted, deleted) marks share `^AI`/`^AD` control lines.
    pub fn serialized(&self) -> String {
        let mut out = String::new();
        let mut current: Option<(u32, Option<u32>)> = None;
        for line in &self.lines {
            let mark = (line.inserted, line.deleted);
            if current != Some(mark) {
                match mark.1 {
                    Some(d) => out.push_str(&format!("\x01I {} D {}\n", mark.0, d)),
                    None => out.push_str(&format!("\x01I {}\n", mark.0)),
                }
                current = Some(mark);
            }
            out.push_str(&line.text);
            out.push('\n');
        }
        out
    }

    /// Byte size of the serialized weave.
    pub fn size_bytes(&self) -> usize {
        self.serialized().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_version_round_trip() {
        let mut w = Weave::new();
        w.add_version("a\nb\nc");
        assert_eq!(w.retrieve(1).as_deref(), Some("a\nb\nc"));
    }

    #[test]
    fn all_versions_retrievable() {
        let vs = ["a\nb\nc", "a\nx\nc", "a\nx\nc\nd", "x\nc\nd", "a\nx\nc\nd"];
        let mut w = Weave::new();
        for v in &vs {
            w.add_version(v);
        }
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(
                w.retrieve(i as u32 + 1).as_deref(),
                Some(*v),
                "version {}",
                i + 1
            );
        }
    }

    #[test]
    fn shared_lines_stored_once() {
        let mut w = Weave::new();
        w.add_version("keep\nchange1");
        w.add_version("keep\nchange2");
        w.add_version("keep\nchange3");
        let keeps = w.lines().iter().filter(|l| l.text == "keep").count();
        assert_eq!(keeps, 1);
    }

    #[test]
    fn reinsertion_duplicates_lines() {
        // The SCCS weakness §8 describes: delete then re-insert the same
        // line and it is stored twice.
        let mut w = Weave::new();
        w.add_version("a\nflicker\nb");
        w.add_version("a\nb");
        w.add_version("a\nflicker\nb");
        let flickers = w.lines().iter().filter(|l| l.text == "flicker").count();
        assert_eq!(flickers, 2);
        assert_eq!(w.retrieve(3).as_deref(), Some("a\nflicker\nb"));
        assert_eq!(w.retrieve(2).as_deref(), Some("a\nb"));
    }

    #[test]
    fn empty_versions_handled() {
        let mut w = Weave::new();
        w.add_version("");
        w.add_version("a");
        w.add_version("");
        assert_eq!(w.retrieve(1).as_deref(), Some(""));
        assert_eq!(w.retrieve(2).as_deref(), Some("a"));
        assert_eq!(w.retrieve(3).as_deref(), Some(""));
    }

    #[test]
    fn serialized_groups_blocks() {
        let mut w = Weave::new();
        w.add_version("a\nb");
        w.add_version("a\nb\nc\nd");
        let s = w.serialized();
        // one block for v1 lines, one for v2 insertions
        assert_eq!(s.matches('\x01').count(), 2);
    }

    #[test]
    fn growing_file_weave_size_near_last_version() {
        // Accretive growth: weave stores each line once, so its size stays
        // close to the size of the last version.
        let mut w = Weave::new();
        let mut lines: Vec<String> = (0..50).map(|i| format!("rec{i}")).collect();
        w.add_version(&lines.join("\n"));
        for v in 0..10 {
            for j in 0..5 {
                lines.push(format!("rec-new-{v}-{j}"));
            }
            w.add_version(&lines.join("\n"));
        }
        let last = lines.join("\n").len();
        assert!(
            w.size_bytes() < last + last / 5,
            "weave should stay near last version size"
        );
    }
}
