//! Fingerprints of canonical XML values (§4.3).
//!
//! The paper fingerprints key values (DOMHash / MD5 in the original) so
//! comparisons touch a few bytes instead of whole subtrees. We use a 128-bit
//! FNV-1a over the canonical form — collision probability `O(1/2^128)` per
//! pair, matching the paper's `O(1/t)` analysis with `t = 2^128`.
//!
//! Because fingerprints may collide, the merge protocol *verifies* actual
//! key values whenever fingerprints match. [`Fingerprinter`] can be
//! configured with a deliberately small width (e.g. 8 bits) so tests can
//! force collisions and demonstrate that verification keeps the archive
//! correct.

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// Full-width (128-bit) fingerprint of a byte string.
pub fn fingerprint(data: &str) -> u128 {
    fnv1a(data.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A fingerprint function with configurable width.
///
/// `t = 2^bits`; the expected number of collisions for `n` values is
/// `O(n²/t)` (§4.3). Widths below 128 exist only to exercise the
/// collision-verification path in tests and benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprinter {
    bits: u32,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self { bits: 128 }
    }
}

impl Fingerprinter {
    /// A fingerprinter truncated to `bits` (1..=128).
    pub fn with_bits(bits: u32) -> Self {
        assert!((1..=128).contains(&bits), "bits must be in 1..=128");
        Self { bits }
    }

    /// Width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Fingerprints a canonical string.
    pub fn fp(&self, data: &str) -> u128 {
        let h = fnv1a(data.as_bytes());
        if self.bits >= 128 {
            h
        } else {
            h & ((1u128 << self.bits) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
    }

    #[test]
    fn distinguishes_simple_strings() {
        assert_ne!(fingerprint("<a>1</a>"), fingerprint("<a>2</a>"));
        assert_ne!(fingerprint(""), fingerprint("\0"));
    }

    #[test]
    fn empty_string_is_offset_basis() {
        assert_eq!(fingerprint(""), FNV_OFFSET);
    }

    #[test]
    fn truncation_masks_high_bits() {
        let f = Fingerprinter::with_bits(8);
        assert!(f.fp("anything at all") < 256);
    }

    #[test]
    fn weak_fingerprints_do_collide() {
        // With 4 bits and 100 distinct strings, pigeonhole guarantees
        // collisions — the property the verification protocol exists for.
        let f = Fingerprinter::with_bits(4);
        let fps: Vec<u128> = (0..100).map(|i| f.fp(&format!("value-{i}"))).collect();
        let mut sorted = fps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() < fps.len());
    }

    #[test]
    #[should_panic]
    fn zero_bits_rejected() {
        Fingerprinter::with_bits(0);
    }
}
