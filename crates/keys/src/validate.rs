//! Validation of a document against a key specification.
//!
//! [`validate`] collects *all* violations rather than stopping at the first,
//! so data producers can fix their exports in one pass:
//!
//! * a key path that does not exist, or exists more than once, at a keyed
//!   node (uniqueness of `Pᵢ` at `n'`, Appendix A.4, condition 1);
//! * two sibling target nodes with the same key value (condition 2);
//! * an element above the frontier not covered by any key (§3's coverage
//!   assumption — the archiver tolerates these with a diff fallback, but
//!   they deserve a warning).

use std::collections::HashMap;
use std::fmt;

use xarch_xml::{Document, NodeId, NodeKind};

use crate::annotate::{annotate_lenient, NodeClass};
use crate::spec::KeySpec;

/// The kind of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A key path was missing at a keyed node.
    MissingKeyPath,
    /// A key path matched more than one node.
    DuplicateKeyPath,
    /// Two siblings share a key value.
    DuplicateKeyValue,
    /// An element above the frontier is not covered by any key.
    CoverageGap,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::MissingKeyPath => "missing key path",
            ViolationKind::DuplicateKeyPath => "duplicate key path",
            ViolationKind::DuplicateKeyValue => "duplicate key value",
            ViolationKind::CoverageGap => "coverage gap",
        };
        f.write_str(s)
    }
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Slash-joined label path of the offending node.
    pub at: String,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at /{}: {}", self.kind, self.at, self.detail)
    }
}

/// Validates `doc` against `spec`, returning all findings (empty = valid).
pub fn validate(doc: &Document, spec: &KeySpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let ann = annotate_lenient(doc, spec, &mut out);
    // sibling uniqueness + coverage
    for id in doc.preorder(doc.root()) {
        if !matches!(doc.node(id).kind, NodeKind::Element(_)) {
            continue;
        }
        match ann.class(id) {
            NodeClass::Unkeyed
                // Key-path nodes (e.g. `fn` under `emp`) are implicitly keyed
                // by the paper's "implied keys" convention; only flag nodes
                // that are not part of any parent's key value.
                if !is_key_path_node(doc, id, spec) => {
                    out.push(Violation {
                        kind: ViolationKind::CoverageGap,
                        at: doc.label_path(id).join("/"),
                        detail: "element above the frontier is not keyed".into(),
                    });
                }
            NodeClass::Keyed | NodeClass::Frontier => {
                check_sibling_uniqueness(doc, id, &ann, &mut out);
            }
            _ => {}
        }
    }
    out
}

/// Groups keyed children of `parent` by (tag, key value) and reports groups
/// of size > 1. Called once per keyed node but deduplicated by parent.
fn check_sibling_uniqueness(
    doc: &Document,
    id: NodeId,
    ann: &crate::annotate::Annotations,
    out: &mut Vec<Violation>,
) {
    // Only run the check from the *first* keyed child of each parent so each
    // sibling group is reported once.
    let parent = match doc.parent(id) {
        Some(p) => p,
        None => return,
    };
    let first_keyed = doc
        .children(parent)
        .iter()
        .copied()
        .find(|&c| ann.key(c).is_some());
    if first_keyed != Some(id) {
        return;
    }
    let mut groups: HashMap<String, usize> = HashMap::new();
    for &c in doc.children(parent) {
        if let Some(kv) = ann.key(c) {
            let tag = match doc.node(c).kind {
                NodeKind::Element(s) => doc.syms().resolve(s),
                NodeKind::Text(_) => continue,
            };
            let label = format!("{tag}{kv}");
            *groups.entry(label).or_insert(0) += 1;
        }
    }
    for (label, count) in groups {
        if count > 1 {
            out.push(Violation {
                kind: ViolationKind::DuplicateKeyValue,
                at: doc.label_path(parent).join("/"),
                detail: format!("{count} siblings share key {label}"),
            });
        }
    }
}

/// True if `id` lies on (or beneath) some key path of its nearest keyed
/// ancestor — such nodes are part of a key value, not coverage gaps.
fn is_key_path_node(doc: &Document, id: NodeId, spec: &KeySpec) -> bool {
    let labels = doc.label_path(id);
    for key in spec.keys() {
        let kp = key.keyed_path();
        let ks = kp.steps();
        if labels.len() <= ks.len() || labels[..ks.len()] != ks[..] {
            continue;
        }
        let rest = &labels[ks.len()..];
        for p in &key.key_paths {
            let steps = p.steps();
            let n = rest.len().min(steps.len());
            if rest[..n] == steps[..n] {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_xml::parse;

    fn company_spec() -> KeySpec {
        KeySpec::parse(
            "(/, (db, {}))\n\
             (/db, (dept, {name}))\n\
             (/db/dept, (emp, {fn, ln}))\n\
             (/db/dept/emp, (sal, {}))\n\
             (/db/dept/emp, (tel, {.}))",
        )
        .unwrap()
    }

    #[test]
    fn valid_document_has_no_violations() {
        let doc = parse(
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp>\
             </dept></db>",
        )
        .unwrap();
        let v = validate(&doc, &company_spec());
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn detects_duplicate_key_values() {
        let doc = parse(
            "<db><dept><name>f</name>\
             <emp><fn>J</fn><ln>D</ln></emp>\
             <emp><fn>J</fn><ln>D</ln></emp>\
             </dept></db>",
        )
        .unwrap();
        let v = validate(&doc, &company_spec());
        assert!(v.iter().any(|x| x.kind == ViolationKind::DuplicateKeyValue));
    }

    #[test]
    fn same_key_under_different_parents_is_fine() {
        // John Doe may exist in two distinct departments (paper §2).
        let doc = parse(
            "<db><dept><name>finance</name><emp><fn>J</fn><ln>D</ln></emp></dept>\
                 <dept><name>marketing</name><emp><fn>J</fn><ln>D</ln></emp></dept></db>",
        )
        .unwrap();
        assert!(validate(&doc, &company_spec()).is_empty());
    }

    #[test]
    fn detects_missing_key_path() {
        let doc = parse("<db><dept><emp><fn>J</fn><ln>D</ln></emp></dept></db>").unwrap();
        let v = validate(&doc, &company_spec());
        assert!(v.iter().any(|x| x.kind == ViolationKind::MissingKeyPath));
    }

    #[test]
    fn detects_duplicate_key_path() {
        let doc = parse("<db><dept><name>a</name><name>b</name></dept></db>").unwrap();
        let v = validate(&doc, &company_spec());
        assert!(v.iter().any(|x| x.kind == ViolationKind::DuplicateKeyPath));
    }

    #[test]
    fn detects_coverage_gap() {
        let doc = parse(
            "<db><dept><name>f</name><mystery/>\
             <emp><fn>J</fn><ln>D</ln></emp></dept></db>",
        )
        .unwrap();
        let v = validate(&doc, &company_spec());
        assert!(v
            .iter()
            .any(|x| x.kind == ViolationKind::CoverageGap && x.at == "db/dept/mystery"));
    }

    #[test]
    fn key_path_nodes_are_not_gaps() {
        // name/fn/ln are key-path nodes — they must not be flagged.
        let doc =
            parse("<db><dept><name>f</name><emp><fn>J</fn><ln>D</ln></emp></dept></db>").unwrap();
        let v = validate(&doc, &company_spec());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn duplicate_tel_content_flagged() {
        let doc = parse(
            "<db><dept><name>f</name>\
             <emp><fn>J</fn><ln>D</ln><tel>1</tel><tel>1</tel></emp></dept></db>",
        )
        .unwrap();
        let v = validate(&doc, &company_spec());
        assert!(v.iter().any(|x| x.kind == ViolationKind::DuplicateKeyValue));
    }
}
