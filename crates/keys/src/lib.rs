//! # xarch-keys
//!
//! Keys for XML (Buneman et al., WWW'01) as used by the archiver of
//! *Archiving Scientific Data* (§3, Appendix A/B).
//!
//! A **relative key** `(Q, (Q', {P1..Pk}))` states that, beneath any node
//! reached by the *context path* `Q`, nodes reached by the *target path*
//! `Q'` are uniquely identified by the values found at their *key paths*
//! `P1..Pk`. Key paths may be empty (`{.}` / `{\e}`), meaning the node is
//! identified by its whole content, or absent (`{}`), meaning at most one
//! such node exists.
//!
//! This crate provides:
//!
//! * the key-specification model and textual parser ([`spec`]) in exactly
//!   the paper's syntax — the specs of Appendix B parse verbatim;
//! * frontier-path computation ([`spec::KeySpec::frontier_paths`]);
//! * document validation against a spec ([`mod@validate`]);
//! * the **Annotate Keys** stack machine of §4.1 ([`mod@annotate`]), producing
//!   per-node key values;
//! * canonical-form **fingerprints** with the collision-verification
//!   protocol of §4.3 ([`mod@fingerprint`]).

pub mod annotate;
pub mod fingerprint;
pub mod spec;
pub mod validate;

pub use annotate::{annotate, annotate_with, Annotations, KeyError, KeyPart, KeyValue, NodeClass};
pub use fingerprint::{fingerprint, Fingerprinter};
pub use spec::{Key, KeySpec, SpecError};
pub use validate::{validate, Violation, ViolationKind};
