//! Key specifications and their textual syntax.
//!
//! The paper writes a relative key as `(Q, (Q', {P1, ..., Pk}))`, e.g.
//!
//! ```text
//! (/db/dept, (emp, {fn, ln}))
//! (/db/dept/emp, (tel, {.}))      # "." (or \e) is the empty key path
//! (/ROOT, (Record, {Num}))
//! ```
//!
//! [`KeySpec::parse`] accepts one key per line with `#` comments, which is
//! the format the Appendix B specs are written in.

use std::collections::HashSet;
use std::fmt;

use xarch_xml::Path;

/// One relative key `(context, (target, {key paths}))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key {
    /// Context path `Q`, anchored at the root (the paper writes a leading `/`).
    pub context: Path,
    /// Target path `Q'`, relative to the context.
    pub target: Path,
    /// Key paths `P1..Pk`, relative to the target. An empty key path means
    /// "identified by content"; an empty *list* means "at most one".
    pub key_paths: Vec<Path>,
    /// True for keys synthesized by the implied-keys rule of §3: "whenever a
    /// key `(Q, (Q', {P1..Pk}))` exists, the keys `(Q/Q', (Pi, {}))` are
    /// implied ... we shall always assume that they are part of the key
    /// specification".
    pub implied: bool,
}

impl Key {
    /// The keyed path `Q/Q'` — the absolute label path of nodes this key
    /// constrains.
    pub fn keyed_path(&self) -> Path {
        self.context.concat(&self.target)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ctx = if self.context.is_empty() {
            "/".to_owned()
        } else {
            format!("/{}", self.context)
        };
        let paths: Vec<String> = self.key_paths.iter().map(|p| p.to_string()).collect();
        write!(f, "({}, ({}, {{{}}}))", ctx, self.target, paths.join(", "))
    }
}

/// Errors raised while parsing or checking a key specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number in the spec source (0 when not line-specific).
    pub line: usize,
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key spec error (line {}): {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// A complete key specification: a list of relative keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeySpec {
    keys: Vec<Key>,
}

impl KeySpec {
    /// Builds a spec from keys, adding the implied keys of §3 and checking
    /// the structural assumptions.
    pub fn new(keys: Vec<Key>) -> Result<Self, SpecError> {
        let mut spec = Self { keys };
        spec.add_implied_keys();
        spec.check_assumptions()?;
        Ok(spec)
    }

    /// Synthesizes the implied keys: for every explicit key
    /// `(Q, (Q', {..., Pi, ...}))` with a non-empty key path
    /// `Pi = p1/.../pm`, each node along `Q/Q'/p1/.../pj` exists uniquely,
    /// so the unit keys `(Q/Q'/p1/../p(j-1), (pj, {}))` hold. These make
    /// key-path nodes (e.g. `fn`, `name`) *frontier nodes* — exactly the
    /// frontier the paper lists for the company database in §3.
    fn add_implied_keys(&mut self) {
        let mut have: HashSet<Path> = self.keys.iter().map(|k| k.keyed_path()).collect();
        let mut extra = Vec::new();
        for k in &self.keys {
            for p in &k.key_paths {
                let mut ctx = k.keyed_path();
                for step in p.steps() {
                    let kp = ctx.child(step);
                    if have.insert(kp) {
                        extra.push(Key {
                            context: ctx.clone(),
                            target: Path::from_steps([step.clone()]),
                            key_paths: Vec::new(),
                            implied: true,
                        });
                    }
                    ctx = ctx.child(step);
                }
            }
        }
        self.keys.extend(extra);
    }

    /// Parses the paper's line-oriented syntax. Blank lines and `#` comments
    /// are ignored.
    pub fn parse(src: &str) -> Result<Self, SpecError> {
        let mut keys = Vec::new();
        for (i, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            keys.push(parse_key(line).map_err(|m| SpecError {
                line: i + 1,
                message: m,
            })?);
        }
        Self::new(keys)
    }

    /// The keys, in declaration order.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Number of keys `q`.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the spec has no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// All keyed paths `Q/Q'` (with duplicates removed, declaration order).
    pub fn keyed_paths(&self) -> Vec<Path> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for k in &self.keys {
            let p = k.keyed_path();
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
        out
    }

    /// The **frontier paths** (§3): keyed paths that are not a proper prefix
    /// of any other keyed path. Frontier nodes are the deepest keyed nodes;
    /// beneath them, Nested Merge switches to value-based matching.
    pub fn frontier_paths(&self) -> Vec<Path> {
        let all = self.keyed_paths();
        all.iter()
            .filter(|p| !all.iter().any(|q| p.is_proper_prefix_of(q)))
            .cloned()
            .collect()
    }

    /// Finds the key whose keyed path equals `path` (the key that governs a
    /// node at that label path). The paper's assumptions guarantee at most
    /// one.
    pub fn key_for_path(&self, path: &Path) -> Option<&Key> {
        self.keys.iter().find(|k| &k.keyed_path() == path)
    }

    /// True if `path` is a keyed path of this spec.
    pub fn is_keyed_path(&self, path: &Path) -> bool {
        self.key_for_path(path).is_some()
    }

    /// True if `path` is a frontier path of this spec.
    pub fn is_frontier_path(&self, path: &Path) -> bool {
        self.is_keyed_path(path)
            && !self
                .keyed_paths()
                .iter()
                .any(|q| path.is_proper_prefix_of(q))
    }

    /// Checks the structural assumptions of §3:
    ///
    /// 1. **insertion-friendly**: every key's context is either the root or
    ///    itself a keyed path (keys are relative to the parent's key);
    /// 2. keyed paths are unique (one key per target path);
    /// 3. no keyed path lies strictly beneath a *key path* of another key —
    ///    nodes inside key values must not themselves be keyed (the paper's
    ///    third restriction).
    fn check_assumptions(&self) -> Result<(), SpecError> {
        let keyed: Vec<Path> = self.keyed_paths();
        let mut seen: HashSet<Path> = HashSet::new();
        for k in &self.keys {
            let kp = k.keyed_path();
            if !seen.insert(kp.clone()) {
                return Err(SpecError {
                    line: 0,
                    message: format!("duplicate key for path {kp}"),
                });
            }
            if !k.context.is_empty() && !keyed.iter().any(|p| p == &k.context) {
                return Err(SpecError {
                    line: 0,
                    message: format!(
                        "key {k} is not insertion-friendly: context {} is not itself keyed",
                        k.context
                    ),
                });
            }
        }
        // restriction 3: nothing keyed strictly below a key path
        for k in &self.keys {
            for p in &k.key_paths {
                if p.is_empty() {
                    continue;
                }
                let full = k.keyed_path().concat(p);
                for other in &keyed {
                    if full.is_proper_prefix_of(other) {
                        return Err(SpecError {
                            line: 0,
                            message: format!(
                                "keyed path {other} lies beneath key path {full} of {k}"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Parses a single `(/ctx, (target, {p1, p2}))` line.
fn parse_key(line: &str) -> Result<Key, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or("key must be wrapped in ( ... )")?;
    // split at the first comma that is at depth 0
    let mut depth = 0usize;
    let mut split = None;
    for (i, c) in inner.char_indices() {
        match c {
            '(' | '{' => depth += 1,
            ')' | '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                split = Some(i);
                break;
            }
            _ => {}
        }
    }
    let split = split.ok_or("expected `,` between context and (target, {..})")?;
    let ctx_str = inner[..split].trim();
    let rest = inner[split + 1..].trim();
    let rest = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or("expected `(target, {key paths})`")?;
    let brace = rest.find('{').ok_or("expected `{`")?;
    let target_str = rest[..brace].trim().trim_end_matches(',').trim();
    let paths_str = rest[brace..]
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("expected `{key paths}`")?;
    let key_paths: Vec<Path> = if paths_str.trim().is_empty() {
        Vec::new()
    } else {
        paths_str.split(',').map(Path::parse).collect()
    };
    if target_str.is_empty() {
        return Err("empty target path".into());
    }
    Ok(Key {
        context: Path::parse(ctx_str),
        target: Path::parse(target_str),
        key_paths,
        implied: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The company-database key spec of §3.
    pub(crate) fn company_spec() -> KeySpec {
        KeySpec::parse(
            "(/, (db, {}))\n\
             (/db, (dept, {name}))\n\
             (/db/dept, (emp, {fn, ln}))\n\
             (/db/dept/emp, (sal, {}))\n\
             (/db/dept/emp, (tel, {.}))",
        )
        .unwrap()
    }

    #[test]
    fn parses_company_spec() {
        let spec = company_spec();
        // 5 explicit keys + implied keys for the key-path nodes name, fn, ln
        assert_eq!(spec.keys().iter().filter(|k| !k.implied).count(), 5);
        assert_eq!(spec.len(), 8);
        let emp = spec.key_for_path(&Path::parse("db/dept/emp")).unwrap();
        assert_eq!(emp.key_paths.len(), 2);
        assert_eq!(emp.key_paths[0].to_string(), "fn");
        let tel = spec.key_for_path(&Path::parse("db/dept/emp/tel")).unwrap();
        assert_eq!(tel.key_paths, vec![Path::empty()]);
        let db = spec.key_for_path(&Path::parse("db")).unwrap();
        assert!(db.key_paths.is_empty());
    }

    #[test]
    fn frontier_paths_of_company_spec() {
        // §3: "the key specification for the company database has frontier
        // paths /db/dept/name, /db/dept/emp/fn, /db/dept/emp/ln,
        // /db/dept/emp/sal, and /db/dept/emp/tel."
        let spec = company_spec();
        let mut f: Vec<String> = spec
            .frontier_paths()
            .iter()
            .map(|p| p.to_string())
            .collect();
        f.sort();
        assert_eq!(
            f,
            vec![
                "db/dept/emp/fn",
                "db/dept/emp/ln",
                "db/dept/emp/sal",
                "db/dept/emp/tel",
                "db/dept/name",
            ]
        );
        assert!(spec.is_frontier_path(&Path::parse("db/dept/emp/tel")));
        assert!(!spec.is_frontier_path(&Path::parse("db/dept")));
        assert!(!spec.is_frontier_path(&Path::parse("db/dept/emp")));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = KeySpec::parse("# header\n\n(/, (db, {}))  # root key\n").unwrap();
        assert_eq!(spec.len(), 1);
    }

    #[test]
    fn backslash_e_empty_path() {
        let spec = KeySpec::parse("(/, (ROOT, {}))\n(/ROOT, (word, {\\e}))").unwrap();
        let k = spec.key_for_path(&Path::parse("ROOT/word")).unwrap();
        assert_eq!(k.key_paths, vec![Path::empty()]);
    }

    #[test]
    fn rejects_non_insertion_friendly() {
        // context db/dept is never declared as a keyed path
        let err = KeySpec::parse("(/db/dept, (emp, {fn}))").unwrap_err();
        assert!(err.message.contains("insertion-friendly"));
    }

    #[test]
    fn rejects_duplicate_keyed_paths() {
        let err = KeySpec::parse("(/, (db, {}))\n(/, (db, {x}))").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_keyed_nodes_beneath_key_paths() {
        // emp is keyed by fn, but fn/inner is itself declared keyed
        let err = KeySpec::parse(
            "(/, (db, {}))\n(/db, (emp, {fn}))\n(/db/emp, (fn, {}))\n(/db/emp/fn, (inner, {}))",
        )
        .unwrap_err();
        assert!(err.message.contains("beneath key path"));
    }

    #[test]
    fn implied_key_paths_are_allowed() {
        // (Q/Q', (Pi, {})) implied keys may be stated explicitly (the paper
        // always assumes them); a key path with an *empty-path* key on the
        // same node is the (tel, {.}) pattern.
        let spec =
            KeySpec::parse("(/, (db, {}))\n(/db, (emp, {fn}))\n(/db/emp, (fn, {}))").unwrap();
        assert!(spec.is_keyed_path(&Path::parse("db/emp/fn")));
    }

    #[test]
    fn display_round_trips() {
        let spec = company_spec();
        for k in spec.keys().iter().filter(|k| !k.implied) {
            let printed = k.to_string();
            let reparsed = parse_key(&printed).unwrap();
            assert_eq!(&reparsed, k);
        }
    }

    #[test]
    fn appendix_b1_omim_spec_parses() {
        let spec = KeySpec::parse(
            "(/, (ROOT, {}))\n\
             (/ROOT, (Record, {Num}))\n\
             (/ROOT/Record, (Title, {}))\n\
             (/ROOT/Record, (AlternativeTitle, {\\e}))\n\
             (/ROOT/Record, (Text, {}))\n\
             (/ROOT/Record, (Contributors, {Name, CNtype, Date/Month, Date/Day, Date/Year}))\n\
             (/ROOT/Record/Contributors, (Date, {}))\n\
             (/ROOT/Record, (Creation_Date, {Name, Date/Month, Date/Day, Date/Year}))\n\
             (/ROOT/Record/Creation_Date, (Date, {}))",
        )
        .unwrap();
        assert_eq!(spec.keys().iter().filter(|k| !k.implied).count(), 9);
        let c = spec
            .key_for_path(&Path::parse("ROOT/Record/Contributors"))
            .unwrap();
        assert_eq!(c.key_paths[2].to_string(), "Date/Month");
        // implied keys cover the key-path interior, e.g. Contributors/Date/Month
        assert!(spec.is_keyed_path(&Path::parse("ROOT/Record/Contributors/Date/Month")));
        assert!(spec.is_frontier_path(&Path::parse("ROOT/Record/Contributors/Date/Month")));
    }
}
