//! The **Annotate Keys** module (§4.1).
//!
//! Given a document and a key specification, computes for every keyed node
//! its *key value* — the list of values found at the ends of its key paths —
//! together with a classification of every node relative to the frontier.
//! This is the information Nested Merge needs to pair corresponding nodes
//! between an archive and an incoming version.
//!
//! The paper formulates the algorithm as a single document-order scan with
//! a stack per active key path; we traverse the arena recursively (the call
//! stack plays the role of the paper's main stack `M`) and resolve key paths
//! directly against the tree, which performs the same `O(N·h·(Σmᵢ+q))` work
//! with the "pointer" representation of key-path values the paper's analysis
//! assumes. Values are canonicalized and fingerprinted on extraction.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

use xarch_xml::canon::canonical;
use xarch_xml::escape::escape_attr;
use xarch_xml::{Document, NodeId, NodeKind, Path};

use crate::fingerprint::Fingerprinter;
use crate::spec::KeySpec;

/// One component of a key value: the key path, the canonical form of the
/// value found at its end, and the fingerprint of that canonical form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPart {
    /// The key path, e.g. `fn` or `Date/Month` (`.` for the empty path).
    pub path: String,
    /// Canonical form of the key-path value (attribute values are encoded
    /// as `@name="value"` so they can never collide with element content).
    pub canon: String,
    /// Fingerprint of `canon`.
    pub fp: u128,
}

/// A node's key value: its key parts sorted by key-path name (the paper's
/// `≤lab` assumes lexicographically ordered `pᵢ`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyValue {
    pub parts: Vec<KeyPart>,
}

impl KeyValue {
    /// The empty key value (for `{}` keys — "at most one such node").
    pub fn unit() -> Self {
        Self { parts: Vec::new() }
    }

    /// Compares two key values as `≤lab` does after equal tags: by arity,
    /// then per part by path name, then by value.
    ///
    /// Fingerprints short-circuit the common unequal case; on fingerprint
    /// equality the canonical values are compared — this is the §4.3
    /// collision-verification protocol, so a weak fingerprinter can never
    /// cause two distinct keys to be treated as equal.
    pub fn cmp_parts(&self, other: &Self) -> Ordering {
        self.parts.len().cmp(&other.parts.len()).then_with(|| {
            for (a, b) in self.parts.iter().zip(other.parts.iter()) {
                let o = a.path.cmp(&b.path);
                if o != Ordering::Equal {
                    return o;
                }
                if a.fp != b.fp || a.canon != b.canon {
                    let o = a.canon.cmp(&b.canon);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
            }
            Ordering::Equal
        })
    }
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", p.path, p.canon)?;
        }
        write!(f, "}}")
    }
}

/// Classification of a node relative to the key structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Keyed, and some keyed path extends below it.
    Keyed,
    /// Keyed and deepest — a frontier node (§3).
    Frontier,
    /// Below a frontier node (matched by value, not by key).
    BeyondFrontier,
    /// An element above the frontier not covered by any key (the archiver
    /// falls back to value-based matching for these, per §3's discussion).
    Unkeyed,
    /// A text node above the frontier.
    Text,
}

/// An error raised while extracting key values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyError {
    /// Slash-joined label path of the offending node.
    pub at: String,
    pub message: String,
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key error at /{}: {}", self.at, self.message)
    }
}

impl std::error::Error for KeyError {}

/// Per-node key annotations for one document.
#[derive(Debug, Clone)]
pub struct Annotations {
    classes: Vec<NodeClass>,
    keys: Vec<Option<KeyValue>>,
}

impl Annotations {
    /// The classification of `id`.
    pub fn class(&self, id: NodeId) -> NodeClass {
        self.classes[id.index()]
    }

    /// The key value of `id` (None unless keyed/frontier).
    pub fn key(&self, id: NodeId) -> Option<&KeyValue> {
        self.keys[id.index()].as_ref()
    }

    /// True if `id` is keyed (including frontier nodes).
    pub fn is_keyed(&self, id: NodeId) -> bool {
        matches!(self.class(id), NodeClass::Keyed | NodeClass::Frontier)
    }

    /// True if `id` is a frontier node.
    pub fn is_frontier(&self, id: NodeId) -> bool {
        self.class(id) == NodeClass::Frontier
    }

    /// Number of keyed nodes (diagnostics).
    pub fn keyed_count(&self) -> usize {
        self.keys.iter().filter(|k| k.is_some()).count()
    }
}

/// Runs Annotate Keys over `doc` with the default (128-bit) fingerprinter.
pub fn annotate(doc: &Document, spec: &KeySpec) -> Result<Annotations, KeyError> {
    annotate_with(doc, spec, Fingerprinter::default())
}

/// Runs Annotate Keys with an explicit fingerprinter (tests use narrow
/// widths to force collisions).
pub fn annotate_with(
    doc: &Document,
    spec: &KeySpec,
    fper: Fingerprinter,
) -> Result<Annotations, KeyError> {
    let mut ann = Annotations {
        classes: vec![NodeClass::Text; doc.len()],
        keys: vec![None; doc.len()],
    };
    // Map absolute keyed path -> key index, plus the frontier set.
    let mut keyed: HashMap<Vec<String>, usize> = HashMap::new();
    for (i, k) in spec.keys().iter().enumerate() {
        keyed.insert(k.keyed_path().steps().to_vec(), i);
    }
    let frontier: Vec<Vec<String>> = spec
        .frontier_paths()
        .iter()
        .map(|p| p.steps().to_vec())
        .collect();
    let mut labels: Vec<String> = Vec::new();
    walk(
        doc,
        doc.root(),
        spec,
        &keyed,
        &frontier,
        &fper,
        &mut labels,
        false,
        &mut ann,
    )?;
    Ok(ann)
}

/// Lenient annotation used by [`crate::validate`]: key-extraction failures
/// are recorded as violations instead of aborting, and the offending node is
/// left key-less (it will also not participate in sibling-uniqueness checks).
pub(crate) fn annotate_lenient(
    doc: &Document,
    spec: &KeySpec,
    violations: &mut Vec<crate::validate::Violation>,
) -> Annotations {
    use crate::validate::{Violation, ViolationKind};
    let mut ann = Annotations {
        classes: vec![NodeClass::Text; doc.len()],
        keys: vec![None; doc.len()],
    };
    let mut keyed: HashMap<Vec<String>, usize> = HashMap::new();
    for (i, k) in spec.keys().iter().enumerate() {
        keyed.insert(k.keyed_path().steps().to_vec(), i);
    }
    let frontier: Vec<Vec<String>> = spec
        .frontier_paths()
        .iter()
        .map(|p| p.steps().to_vec())
        .collect();
    let fper = Fingerprinter::default();
    // Iterative preorder with explicit label stack and per-node classification.
    let mut labels: Vec<String> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn rec(
        doc: &Document,
        id: NodeId,
        spec: &KeySpec,
        keyed: &HashMap<Vec<String>, usize>,
        frontier: &[Vec<String>],
        fper: &Fingerprinter,
        labels: &mut Vec<String>,
        beyond: bool,
        ann: &mut Annotations,
        violations: &mut Vec<Violation>,
    ) {
        let tag = match &doc.node(id).kind {
            NodeKind::Text(_) => {
                ann.classes[id.index()] = if beyond {
                    NodeClass::BeyondFrontier
                } else {
                    NodeClass::Text
                };
                return;
            }
            NodeKind::Element(s) => doc.syms().resolve(*s).to_owned(),
        };
        labels.push(tag);
        let mut child_beyond = beyond;
        if beyond {
            ann.classes[id.index()] = NodeClass::BeyondFrontier;
        } else if let Some(&ki) = keyed.get(labels.as_slice()) {
            let key = &spec.keys()[ki];
            match extract_key_value(doc, id, &key.key_paths, fper, labels) {
                Ok(kv) => ann.keys[id.index()] = Some(kv),
                Err(e) => {
                    let kind = if e.message.contains("not unique") {
                        ViolationKind::DuplicateKeyPath
                    } else {
                        ViolationKind::MissingKeyPath
                    };
                    violations.push(Violation {
                        kind,
                        at: e.at,
                        detail: e.message,
                    });
                }
            }
            let is_frontier = frontier.iter().any(|f| f == labels);
            ann.classes[id.index()] = if is_frontier {
                child_beyond = true;
                NodeClass::Frontier
            } else {
                NodeClass::Keyed
            };
        } else {
            ann.classes[id.index()] = NodeClass::Unkeyed;
        }
        for &c in doc.children(id) {
            rec(
                doc,
                c,
                spec,
                keyed,
                frontier,
                fper,
                labels,
                child_beyond,
                ann,
                violations,
            );
        }
        labels.pop();
    }
    rec(
        doc,
        doc.root(),
        spec,
        &keyed,
        &frontier,
        &fper,
        &mut labels,
        false,
        &mut ann,
        violations,
    );
    ann
}

#[allow(clippy::too_many_arguments)]
fn walk(
    doc: &Document,
    id: NodeId,
    spec: &KeySpec,
    keyed: &HashMap<Vec<String>, usize>,
    frontier: &[Vec<String>],
    fper: &Fingerprinter,
    labels: &mut Vec<String>,
    beyond: bool,
    ann: &mut Annotations,
) -> Result<(), KeyError> {
    let tag = match &doc.node(id).kind {
        NodeKind::Text(_) => {
            ann.classes[id.index()] = if beyond {
                NodeClass::BeyondFrontier
            } else {
                NodeClass::Text
            };
            return Ok(());
        }
        NodeKind::Element(s) => doc.syms().resolve(*s).to_owned(),
    };
    labels.push(tag);
    let mut child_beyond = beyond;
    if beyond {
        ann.classes[id.index()] = NodeClass::BeyondFrontier;
    } else if let Some(&ki) = keyed.get(labels.as_slice()) {
        let key = &spec.keys()[ki];
        let kv = extract_key_value(doc, id, &key.key_paths, fper, labels)?;
        ann.keys[id.index()] = Some(kv);
        let is_frontier = frontier.iter().any(|f| f == labels);
        ann.classes[id.index()] = if is_frontier {
            child_beyond = true;
            NodeClass::Frontier
        } else {
            NodeClass::Keyed
        };
    } else {
        ann.classes[id.index()] = NodeClass::Unkeyed;
    }
    for &c in doc.children(id) {
        walk(
            doc,
            c,
            spec,
            keyed,
            frontier,
            fper,
            labels,
            child_beyond,
            ann,
        )?;
    }
    labels.pop();
    Ok(())
}

/// Extracts the key value of the keyed node `id`: resolves every key path to
/// a unique node (or attribute) and canonicalizes the value found there.
fn extract_key_value(
    doc: &Document,
    id: NodeId,
    key_paths: &[Path],
    fper: &Fingerprinter,
    labels: &[String],
) -> Result<KeyValue, KeyError> {
    let mut parts = Vec::with_capacity(key_paths.len());
    for p in key_paths {
        let canon = resolve_key_path(doc, id, p, labels)?;
        let fp = fper.fp(&canon);
        parts.push(KeyPart {
            path: p.to_string(),
            canon,
            fp,
        });
    }
    // ≤lab assumes key paths sorted lexicographically by path name.
    parts.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(KeyValue { parts })
}

/// Resolves one key path from `id`, returning the canonical value string.
fn resolve_key_path(
    doc: &Document,
    id: NodeId,
    path: &Path,
    labels: &[String],
) -> Result<String, KeyError> {
    let err = |msg: String| KeyError {
        at: labels.join("/"),
        message: msg,
    };
    if path.is_empty() {
        // `{.}`: the node is identified by its own value.
        return Ok(canonical(doc, id));
    }
    let mut cur = id;
    let steps = path.steps();
    for (i, step) in steps.iter().enumerate() {
        let matches: Vec<NodeId> = doc.child_elements(cur, step).collect();
        match matches.len() {
            1 => cur = matches[0],
            0 => {
                // The final step may name an attribute (paths consist of
                // "node and attribute names", Appendix A.2).
                if i == steps.len() - 1 {
                    if let Some(v) = doc.attr(cur, step) {
                        return Ok(format!("@{}=\"{}\"", step, escape_attr(v)));
                    }
                }
                return Err(err(format!("key path `{path}`: step `{step}` not found")));
            }
            n => {
                return Err(err(format!(
                    "key path `{path}`: step `{step}` is not unique ({n} matches)"
                )))
            }
        }
    }
    Ok(canonical(doc, cur))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_xml::parse;

    fn company_spec() -> KeySpec {
        KeySpec::parse(
            "(/, (db, {}))\n\
             (/db, (dept, {name}))\n\
             (/db/dept, (emp, {fn, ln}))\n\
             (/db/dept/emp, (sal, {}))\n\
             (/db/dept/emp, (tel, {.}))",
        )
        .unwrap()
    }

    /// Version 4 of the paper's Figure 2.
    fn version4() -> Document {
        parse(
            "<db><dept><name>finance</name>\
               <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>\
               <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal><tel>123-6789</tel><tel>112-3456</tel></emp>\
             </dept></db>",
        )
        .unwrap()
    }

    #[test]
    fn annotates_figure_3() {
        let doc = version4();
        let spec = company_spec();
        let ann = annotate(&doc, &spec).unwrap();
        let dept = doc.first_child_element(doc.root(), "dept").unwrap();
        let kv = ann.key(dept).unwrap();
        assert_eq!(kv.parts.len(), 1);
        assert_eq!(kv.parts[0].path, "name");
        assert_eq!(kv.parts[0].canon, "<name>finance</name>");

        let emps: Vec<NodeId> = doc.child_elements(dept, "emp").collect();
        let john = ann.key(emps[0]).unwrap();
        assert_eq!(john.to_string(), "{fn=<fn>John</fn>, ln=<ln>Doe</ln>}");
        let jane = ann.key(emps[1]).unwrap();
        assert_ne!(john.cmp_parts(jane), Ordering::Equal);
    }

    #[test]
    fn classes_match_paper() {
        let doc = version4();
        let ann = annotate(&doc, &company_spec()).unwrap();
        let dept = doc.first_child_element(doc.root(), "dept").unwrap();
        let emp = doc.first_child_element(dept, "emp").unwrap();
        let sal = doc.first_child_element(emp, "sal").unwrap();
        let tel = doc.first_child_element(emp, "tel").unwrap();
        let fnn = doc.first_child_element(emp, "fn").unwrap();
        assert_eq!(ann.class(doc.root()), NodeClass::Keyed);
        assert_eq!(ann.class(dept), NodeClass::Keyed);
        assert_eq!(ann.class(emp), NodeClass::Keyed);
        assert_eq!(ann.class(sal), NodeClass::Frontier);
        assert_eq!(ann.class(tel), NodeClass::Frontier);
        // fn is a key-path node: the implied key (/db/dept/emp, (fn, {}))
        // makes it a frontier node, exactly as §3 lists /db/dept/emp/fn
        // among the frontier paths.
        assert_eq!(ann.class(fnn), NodeClass::Frontier);
        // text under sal is beyond the frontier
        let sal_text = doc.children(sal)[0];
        assert_eq!(ann.class(sal_text), NodeClass::BeyondFrontier);
    }

    #[test]
    fn tel_keyed_by_own_content() {
        let doc = version4();
        let ann = annotate(&doc, &company_spec()).unwrap();
        let dept = doc.first_child_element(doc.root(), "dept").unwrap();
        let jane = doc.child_elements(dept, "emp").nth(1).unwrap();
        let tels: Vec<NodeId> = doc.child_elements(jane, "tel").collect();
        let k1 = ann.key(tels[0]).unwrap();
        let k2 = ann.key(tels[1]).unwrap();
        assert_ne!(k1.cmp_parts(k2), Ordering::Equal);
        assert!(k1.parts[0].canon.contains("123-6789"));
    }

    #[test]
    fn sal_has_unit_key() {
        let doc = version4();
        let ann = annotate(&doc, &company_spec()).unwrap();
        let dept = doc.first_child_element(doc.root(), "dept").unwrap();
        let emp = doc.first_child_element(dept, "emp").unwrap();
        let sal = doc.first_child_element(emp, "sal").unwrap();
        assert_eq!(ann.key(sal).unwrap(), &KeyValue::unit());
    }

    #[test]
    fn attribute_key_paths() {
        let spec = KeySpec::parse("(/, (site, {}))\n(/site, (item, {id}))").unwrap();
        let doc = parse(r#"<site><item id="i1"/><item id="i2"/></site>"#).unwrap();
        let ann = annotate(&doc, &spec).unwrap();
        let items: Vec<NodeId> = doc.child_elements(doc.root(), "item").collect();
        let k1 = ann.key(items[0]).unwrap();
        assert_eq!(k1.parts[0].canon, "@id=\"i1\"");
        assert_ne!(k1.cmp_parts(ann.key(items[1]).unwrap()), Ordering::Equal);
    }

    #[test]
    fn missing_key_path_is_error() {
        let spec = company_spec();
        let doc = parse("<db><dept><emp><fn>J</fn><ln>D</ln></emp></dept></db>").unwrap();
        let e = annotate(&doc, &spec).unwrap_err();
        assert!(e.message.contains("name"));
        assert_eq!(e.at, "db/dept");
    }

    #[test]
    fn duplicate_key_path_is_error() {
        let spec = company_spec();
        let doc = parse("<db><dept><name>a</name><name>b</name></dept></db>").unwrap();
        let e = annotate(&doc, &spec).unwrap_err();
        assert!(e.message.contains("not unique"));
    }

    #[test]
    fn multi_step_key_paths() {
        let spec = KeySpec::parse(
            "(/, (ROOT, {}))\n(/ROOT, (Contributors, {Name, Date/Month, Date/Year}))",
        )
        .unwrap();
        let doc = parse(
            "<ROOT><Contributors><Name>Paul</Name>\
             <Date><Month>11</Month><Year>2000</Year></Date></Contributors></ROOT>",
        )
        .unwrap();
        let ann = annotate(&doc, &spec).unwrap();
        let c = doc.first_child_element(doc.root(), "Contributors").unwrap();
        let kv = ann.key(c).unwrap();
        assert_eq!(kv.parts.len(), 3);
        // parts sorted by path name
        assert_eq!(kv.parts[0].path, "Date/Month");
        assert_eq!(kv.parts[1].path, "Date/Year");
        assert_eq!(kv.parts[2].path, "Name");
    }

    #[test]
    fn key_value_ordering_is_total_and_consistent() {
        let doc = version4();
        let ann = annotate(&doc, &company_spec()).unwrap();
        let dept = doc.first_child_element(doc.root(), "dept").unwrap();
        let emps: Vec<NodeId> = doc.child_elements(dept, "emp").collect();
        let a = ann.key(emps[0]).unwrap();
        let b = ann.key(emps[1]).unwrap();
        assert_eq!(a.cmp_parts(b), b.cmp_parts(a).reverse());
        assert_eq!(a.cmp_parts(a), Ordering::Equal);
    }

    #[test]
    fn weak_fingerprints_never_merge_distinct_keys() {
        // With a 1-bit fingerprinter nearly all fingerprints collide; the
        // verification step must still distinguish distinct key values.
        let doc = version4();
        let spec = company_spec();
        let ann = annotate_with(&doc, &spec, Fingerprinter::with_bits(1)).unwrap();
        let dept = doc.first_child_element(doc.root(), "dept").unwrap();
        let emps: Vec<NodeId> = doc.child_elements(dept, "emp").collect();
        let a = ann.key(emps[0]).unwrap();
        let b = ann.key(emps[1]).unwrap();
        assert_ne!(a.cmp_parts(b), Ordering::Equal);
    }

    #[test]
    fn keyed_count_counts_all_keyed_nodes() {
        let doc = version4();
        let ann = annotate(&doc, &company_spec()).unwrap();
        // db, dept, name, 2×emp, 2×fn, 2×ln, 2×sal, 3×tel = 14
        assert_eq!(ann.keyed_count(), 14);
    }
}
