//! The polymorphic archiver contract: one archiving *model*, many storage
//! tiers.
//!
//! The paper contributes a single archiving model — key-based nested merge
//! with interval-set timestamps — and then describes three ways of running
//! it: wholly in memory (§4.2), hash-partitioned into chunks when the data
//! outgrows memory (§5), and as a streaming external-memory pipeline
//! (§6.3). [`VersionStore`] captures the contract all three share, so
//! callers (tests, benches, services) are written once and the storage
//! tier becomes a configuration choice — the separation of logical archive
//! from physical tier that production cold-storage archives make.
//!
//! The contract is split along the read/write axis. [`StoreReader`] holds
//! every query method with a `&self` receiver: versions are immutable once
//! merged (a later merge only decides membership of *its own* version
//! number in each timestamp, never of earlier ones), so reads never need
//! to exclude each other and backends account their per-pass costs with
//! atomics instead of `&mut self`. [`VersionStore`] adds the two mutators
//! on top. Both traits are object-safe: `Box<dyn VersionStore>` is the
//! unit the `xarch::ArchiveBuilder` facade hands out, and `VersionStore`
//! requires `Send + Sync` so one store can serve many reader threads
//! behind a shared handle (`xarch::ArchiveHandle`).

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::ops::RangeInclusive;

use xarch_keys::KeySpec;
use xarch_xml::Document;

use crate::archive::{Archive, ArchiveStats, MergeError};
use crate::chunk::ChunkedArchive;
use crate::history::KeyQuery;
use crate::query::{self, ElementHistory, RangeEntry, VersionDelta};
use crate::timeset::TimeSet;

/// Unified error type across storage backends.
///
/// In-memory merges fail with [`MergeError`]; external-memory and durable
/// backends fail while encoding/decoding their serialized representations
/// (surfaced as [`StoreError::Corrupt`] with the byte offset of the bad
/// data — `xarch_extmem` provides `From<StreamError> for StoreError`);
/// other backend failures (configuration, key-spec mismatch) are
/// [`StoreError::Backend`]; streaming retrieval and durable journaling can
/// fail in the operating system ([`StoreError::Io`]).
#[derive(Debug)]
pub enum StoreError {
    /// The incoming version could not be merged (key violation etc.).
    Merge(MergeError),
    /// The storage backend failed (bad configuration, key-spec mismatch).
    Backend(String),
    /// Stored data failed to decode: a checksum mismatch, a truncated or
    /// malformed event stream, an impossible block header. `offset` is the
    /// byte position of the bad data within the backend's serialized form
    /// (0 when the failure is not position-specific).
    Corrupt {
        /// Byte offset of the corruption within the stream or file.
        offset: u64,
        /// What failed to decode.
        reason: String,
    },
    /// The caller's output sink or the backing file failed.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Merge(e) => write!(f, "merge error: {e}"),
            StoreError::Backend(m) => write!(f, "backend error: {m}"),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt archive data at byte {offset}: {reason}")
            }
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Merge(e) => Some(e),
            StoreError::Backend(_) | StoreError::Corrupt { .. } => None,
            StoreError::Io(e) => Some(e),
        }
    }
}

impl From<MergeError> for StoreError {
    fn from(e: MergeError) -> Self {
        StoreError::Merge(e)
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Backend-independent aggregate statistics.
///
/// For partitioned backends the node counts sum over partitions (each
/// chunk carries its own synthetic root and document root), so they
/// describe *storage*, not the logical document tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of archived versions (= `latest()`).
    pub versions: u32,
    /// Element nodes stored, including synthetic roots.
    pub elements: usize,
    /// Text nodes stored.
    pub texts: usize,
    /// `<T>` stamp alternatives beneath frontier nodes.
    pub stamps: usize,
    /// Serialized size of the archive in bytes (pretty XML for in-memory
    /// backends, raw event stream for external-memory ones).
    pub size_bytes: usize,
}

impl StoreStats {
    /// Folds an in-memory [`ArchiveStats`] into the unified shape.
    pub fn from_archive(s: ArchiveStats, versions: u32, size_bytes: usize) -> Self {
        Self {
            versions,
            elements: s.elements,
            texts: s.texts,
            stamps: s.stamps,
            size_bytes,
        }
    }
}

/// The read half of the archiver contract: every query method, all on
/// `&self`.
///
/// The paper's archive is append-only — merging version `i` decides only
/// whether `i` belongs to each element's timestamp, never the membership
/// of versions `< i` — so every answer below is a pure function of the
/// stored state and reads need no mutual exclusion. Backends that account
/// per-pass costs (the external-memory archiver's paged I/O, the index
/// structures' probe counters) do so with atomics.
///
/// The trait is object-safe; `&dyn StoreReader` is the surface a
/// snapshot or read-only service endpoint exposes.
pub trait StoreReader {
    /// The governing key specification.
    fn spec(&self) -> &KeySpec;

    /// Number of archived versions.
    fn latest(&self) -> u32;

    /// True if version `v` has been archived — it may still be an *empty*
    /// version, for which [`StoreReader::retrieve`] returns `None`.
    fn has_version(&self, v: u32) -> bool {
        v >= 1 && v <= self.latest()
    }

    /// Reconstructs version `v`. Returns `None` when `v` was never
    /// archived *or* the database was empty at `v` (use
    /// [`StoreReader::has_version`] to distinguish).
    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError>;

    /// Streaming retrieval: serializes the nodes visible at version `v`
    /// directly into `out` as compact XML, without materializing a
    /// [`Document`]. Returns `true` iff a document was written — the same
    /// `None`-for-empty contract as [`StoreReader::retrieve`].
    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError>;

    /// The temporal history of the element addressed by `steps` (§7.2):
    /// the set of versions in which it exists, or `None` if no such
    /// element was ever archived.
    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError>;

    /// Aggregate statistics of the stored archive.
    fn stats(&self) -> Result<StoreStats, StoreError>;

    /// Aggregate statistics of the archive *as it stood* after version `v`
    /// merged — the pinned-exact counterpart of [`StoreReader::stats`].
    ///
    /// The archive is append-only: merging a later version never changes
    /// which versions ≤ `v` a node belongs to, so this answer is a pure
    /// function of the first `v` versions and stays fixed while the live
    /// store keeps growing. Snapshots (`xarch::Snapshot::stats`) report
    /// exactly this. `v` saturates at [`StoreReader::latest`].
    ///
    /// The default recomputes [`StoreReader::stats`] and clamps only the
    /// version count — correct for `versions`, *live* for the node/byte
    /// counts. Every in-tree backend overrides it with counts and a
    /// canonical clamped serialized size that are exact at the pin.
    fn stats_at(&self, v: u32) -> Result<StoreStats, StoreError> {
        let mut s = self.stats()?;
        s.versions = v.min(self.latest());
        Ok(s)
    }

    // ---- temporal queries (§7) ------------------------------------------
    //
    // Every method below has a whole-retrieve fallback, so a backend is
    // complete once the six methods above work; the fast paths — index
    // descent, timestamp-tree pruning, chunk routing, partial stream
    // scans — are overrides whose cost is proportional to the answer, not
    // the archive.

    /// Partial retrieval: the subtree addressed by `steps` as it existed
    /// at version `v`, or `None` when the element (or the version) does
    /// not exist. An empty path addresses the whole document —
    /// `as_of(&[], v)` is `retrieve(v)`.
    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        let Some(doc) = self.retrieve(v)? else {
            return Ok(None);
        };
        if steps.is_empty() {
            return Ok(Some(doc));
        }
        Ok(
            query::find_in_doc(&doc, self.spec(), steps)
                .and_then(|id| query::subtree_doc(&doc, id)),
        )
    }

    /// The full temporal account of one element: the versions it exists
    /// in (§7.2's history) plus each distinct content it held and when.
    fn history_values(&self, steps: &[KeyQuery]) -> Result<Option<ElementHistory>, StoreError> {
        let Some(existence) = self.history(steps)? else {
            return Ok(None);
        };
        let mut values: Vec<(TimeSet, String)> = Vec::new();
        let versions: Vec<u32> = existence.versions().collect();
        for v in versions {
            let Some(sub) = self.as_of(steps, v)? else {
                continue;
            };
            let content = xarch_xml::writer::to_compact_string(&sub);
            match values.iter_mut().find(|(_, c)| *c == content) {
                Some((t, _)) => t.insert(v),
                None => values.push((TimeSet::from_version(v), content)),
            }
        }
        Ok(Some(ElementHistory { existence, values }))
    }

    /// Range scan: every keyed element that lived directly under the node
    /// addressed by `prefix` at any version in `versions`, with its
    /// lifetime clamped to that window. An empty prefix addresses the
    /// synthetic root, so its single possible hit is the document root.
    /// Results are in label order (`≤lab`), identical across backends.
    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        let lo = (*versions.start()).max(1);
        let hi = (*versions.end()).min(self.latest());
        let mut acc: BTreeMap<KeyQuery, TimeSet> = BTreeMap::new();
        for v in lo..=hi {
            let Some(doc) = self.retrieve(v)? else {
                continue;
            };
            for step in query::keyed_children_in_doc(&doc, self.spec(), prefix) {
                acc.entry(step).or_default().insert(v);
            }
        }
        Ok(acc
            .into_iter()
            .map(|(step, time)| RangeEntry { step, time })
            .collect())
    }

    /// What changed in the element addressed by `steps` between versions
    /// `v1` and `v2`, as a Myers line diff over the pretty-printed
    /// subtrees (`crates/diff`). Composes from [`StoreReader::as_of`],
    /// so indexed backends pay O(answer) here too.
    fn diff(&self, steps: &[KeyQuery], v1: u32, v2: u32) -> Result<VersionDelta, StoreError> {
        let a = self.as_of(steps, v1)?;
        let b = self.as_of(steps, v2)?;
        Ok(query::delta(a.as_ref(), b.as_ref(), v1, v2))
    }
}

/// The full archiver contract shared by every storage backend: the
/// [`StoreReader`] query surface plus the two mutators.
///
/// | backend | paper | crate |
/// |---|---|---|
/// | [`Archive`] | §4.2 in-memory nested merge | `xarch_core` |
/// | [`ChunkedArchive`] | §5 hash-partitioned chunks | `xarch_core` |
/// | `ExtArchive` | §6.3 external-memory streams | `xarch_extmem` |
/// | `DurableArchive` | durable segmented journal over any of the above | `xarch_storage` |
/// | `IndexedArchive` / `IndexedStore` | §7 query indexes over any of the above | `xarch_index` |
///
/// `Send + Sync` is part of the contract: a store is single-writer by
/// `&mut` discipline, but its reads are `&self` and safe to share, so
/// every backend must be shareable across threads (per-pass accounting
/// uses atomics, never `Cell`).
pub trait VersionStore: StoreReader + Send + Sync {
    /// Merges `doc` as the next version; returns its version number.
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError>;

    /// Archives an *empty* database as the next version (§2's footnote:
    /// the synthetic root keeps ticking while every element terminates).
    fn add_empty_version(&mut self) -> Result<u32, StoreError>;

    /// Bulk ingest: merges `docs` as consecutive versions and returns the
    /// version numbers assigned, in order. `add_versions(&[])` is a no-op
    /// that returns `Ok(vec![])` on every backend — no version number is
    /// burned and durable backends write nothing.
    ///
    /// The observable result is identical to calling
    /// [`VersionStore::add_version`] once per document (the differential
    /// suite in `tests/batch_equivalence.rs` holds every backend to that),
    /// but backends override this with *batch-native* fast paths: the
    /// in-memory archive pre-combines the batch and walks its own child
    /// lists once instead of once per version, the chunked archive merges
    /// its partitions on parallel worker threads, the external-memory
    /// archive folds the whole batch into a single streaming pass, and the
    /// durable wrapper journals the batch as one group-committed block
    /// with a single fsync (a torn batch recovers to the pre-batch state —
    /// never a prefix).
    ///
    /// Native paths also validate the whole batch *before* mutating any
    /// state, so a rejected batch leaves the store untouched; only this
    /// default loop can stop part-way (at the first rejected document).
    fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        let mut assigned = Vec::with_capacity(docs.len());
        for doc in docs {
            assigned.push(self.add_version(doc)?);
        }
        Ok(assigned)
    }

    /// Serializes the store's materialized state into an opaque
    /// checkpoint payload (see `crate::state` and `docs/FORMAT.md`
    /// §Checkpoint blocks).
    ///
    /// `Ok(None)` means the backend does not support checkpoints — the
    /// durable wrapper then simply never writes checkpoint blocks and
    /// reopen replays the full journal, exactly as before. The payload is
    /// backend-tagged: restoring it into a differently-configured store
    /// answers `Ok(false)` from [`VersionStore::restore_checkpoint`]
    /// rather than producing a wrong archive.
    fn checkpoint_state(&self) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(None)
    }

    /// Restores a payload produced by [`VersionStore::checkpoint_state`]
    /// into this (empty) store.
    ///
    /// Answers `Ok(true)` when the state was recognized and restored,
    /// `Ok(false)` when it was taken under a different backend
    /// configuration (tag, key spec, compaction, chunk layout — the
    /// caller falls back to a full journal replay, which rebuilds
    /// correctly under the new configuration), and `Err` when the payload
    /// is structurally damaged or the store is not empty.
    fn restore_checkpoint(&mut self, state: &[u8]) -> Result<bool, StoreError> {
        let _ = state;
        Ok(false)
    }

    /// Forks an independent replica: a second store that answers every
    /// read identically to `self` at the moment of the fork and evolves
    /// on its own afterwards.
    ///
    /// This is the publication primitive behind `xarch::ArchiveHandle`'s
    /// left-right scheme: the handle keeps the store *and* one fork,
    /// points readers at one instance with an atomic word, and merges on
    /// the other — so reads never take a blocking lock.
    ///
    /// Every in-tree backend overrides this with a same-configuration
    /// clone, making the replica answer *byte-identically* (durable
    /// wrappers fork only their wrapped in-memory store: reads never
    /// touch the journal, so the replica reads the same bytes while
    /// journaling/fsync stays single-copy). The default replays every
    /// version into a fresh in-memory [`Archive`] under the same key
    /// spec — semantically equivalent answers for any foreign backend,
    /// at in-memory cost.
    fn fork(&self) -> Result<Box<dyn VersionStore>, StoreError> {
        let mut replica = Archive::new(self.spec().clone());
        for v in 1..=self.latest() {
            match self.retrieve(v)? {
                Some(doc) => {
                    replica.add_version(&doc)?;
                }
                None => {
                    replica.add_empty_version();
                }
            }
        }
        Ok(Box::new(replica))
    }
}

impl StoreReader for Archive {
    fn spec(&self) -> &KeySpec {
        Archive::spec(self)
    }

    fn latest(&self) -> u32 {
        Archive::latest(self)
    }

    fn has_version(&self, v: u32) -> bool {
        Archive::has_version(self, v)
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        Ok(Archive::retrieve(self, v))
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        Ok(Archive::retrieve_into(self, v, out)?)
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        Ok(Archive::history(self, steps))
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        Ok(StoreStats::from_archive(
            Archive::stats(self),
            Archive::latest(self),
            self.size_bytes(),
        ))
    }

    fn stats_at(&self, v: u32) -> Result<StoreStats, StoreError> {
        let v = v.min(Archive::latest(self));
        Ok(StoreStats::from_archive(
            Archive::stats_at(self, v),
            v,
            self.size_bytes_at(v),
        ))
    }

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        Ok(Archive::as_of(self, steps, v))
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        Ok(Archive::range(self, prefix, versions))
    }
}

impl VersionStore for Archive {
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
        Ok(Archive::add_version(self, doc)?)
    }

    fn add_empty_version(&mut self) -> Result<u32, StoreError> {
        Ok(Archive::add_empty_version(self))
    }

    fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        Ok(Archive::add_versions(self, docs)?)
    }

    fn checkpoint_state(&self) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(Some(crate::state::encode_archive(self)))
    }

    fn restore_checkpoint(&mut self, state: &[u8]) -> Result<bool, StoreError> {
        if Archive::latest(self) != 0 {
            return Err(StoreError::Backend(
                "restore_checkpoint requires an empty store".into(),
            ));
        }
        match crate::state::decode_archive(state, Archive::spec(self), self.compaction())? {
            Some(restored) => {
                *self = restored;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn fork(&self) -> Result<Box<dyn VersionStore>, StoreError> {
        Ok(Box::new(self.clone()))
    }
}

impl StoreReader for ChunkedArchive {
    fn spec(&self) -> &KeySpec {
        ChunkedArchive::spec(self)
    }

    fn latest(&self) -> u32 {
        ChunkedArchive::latest(self)
    }

    fn has_version(&self, v: u32) -> bool {
        ChunkedArchive::has_version(self, v)
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        Ok(ChunkedArchive::retrieve(self, v))
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        Ok(ChunkedArchive::retrieve_into(self, v, out)?)
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        Ok(ChunkedArchive::history(self, steps))
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        Ok(StoreStats::from_archive(
            ChunkedArchive::stats(self),
            ChunkedArchive::latest(self),
            self.size_bytes(),
        ))
    }

    fn stats_at(&self, v: u32) -> Result<StoreStats, StoreError> {
        let v = v.min(ChunkedArchive::latest(self));
        Ok(StoreStats::from_archive(
            ChunkedArchive::stats_at(self, v),
            v,
            self.size_bytes_at(v),
        ))
    }

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        Ok(ChunkedArchive::as_of(self, steps, v))
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        Ok(ChunkedArchive::range(self, prefix, versions))
    }
}

impl VersionStore for ChunkedArchive {
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
        Ok(ChunkedArchive::add_version(self, doc)?)
    }

    fn add_empty_version(&mut self) -> Result<u32, StoreError> {
        Ok(ChunkedArchive::add_empty_version(self))
    }

    fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        Ok(ChunkedArchive::add_versions(self, docs)?)
    }

    fn checkpoint_state(&self) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(Some(crate::state::encode_chunked(self)))
    }

    fn restore_checkpoint(&mut self, state: &[u8]) -> Result<bool, StoreError> {
        if ChunkedArchive::latest(self) != 0 {
            return Err(StoreError::Backend(
                "restore_checkpoint requires an empty store".into(),
            ));
        }
        let compaction = self.chunks()[0].compaction();
        match crate::state::decode_chunked(
            state,
            ChunkedArchive::spec(self),
            self.chunk_count(),
            compaction,
        )? {
            Some(restored) => {
                *self = restored;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn fork(&self) -> Result<Box<dyn VersionStore>, StoreError> {
        Ok(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe_and_uniform() {
        let spec = KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))").unwrap();
        let mut stores: Vec<Box<dyn VersionStore>> = vec![
            Box::new(Archive::new(spec.clone())),
            Box::new(ChunkedArchive::new(spec.clone(), 3)),
        ];
        let doc = xarch_xml::parse("<db><rec><id>1</id><val>x</val></rec></db>").unwrap();
        for s in &mut stores {
            assert_eq!(s.add_version(&doc).unwrap(), 1);
            assert!(s.has_version(1));
            assert!(!s.has_version(2));
            let got = s.retrieve(1).unwrap().unwrap();
            assert!(crate::equiv_modulo_key_order(&got, &doc, s.spec()));
            let mut bytes = Vec::new();
            assert!(s.retrieve_into(1, &mut bytes).unwrap());
            let reparsed = xarch_xml::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
            assert!(crate::equiv_modulo_key_order(&reparsed, &doc, s.spec()));
            let stats = s.stats().unwrap();
            assert_eq!(stats.versions, 1);
            assert!(stats.elements > 0 && stats.size_bytes > 0);
            let q = [
                KeyQuery::new("db"),
                KeyQuery::new("rec").with_text("id", "1"),
            ];
            assert_eq!(s.history(&q).unwrap().unwrap().to_string(), "1");
        }
    }

    #[test]
    fn backends_and_errors_are_shareable_across_threads() {
        // VersionStore's contract includes Send + Sync: reads are `&self`
        // and must be safe to issue from many threads at once
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<Archive>();
        assert_send_sync::<ChunkedArchive>();
        assert_send_sync::<StoreError>();
        assert_send_sync::<Box<dyn VersionStore>>();
        assert_send_sync::<Box<dyn StoreReader + Send + Sync>>();
    }

    #[test]
    fn reader_trait_is_object_safe() {
        let spec = KeySpec::parse("(/, (db, {}))").unwrap();
        let reader: Box<dyn StoreReader> = Box::new(Archive::new(spec));
        assert_eq!(reader.latest(), 0);
        assert!(!reader.has_version(1));
        assert!(reader.retrieve(1).unwrap().is_none());
    }

    #[test]
    fn store_error_displays_sources() {
        let e = StoreError::from(MergeError::UnkeyedRoot("x".into()));
        assert!(e.to_string().contains("merge error"));
        let e = StoreError::Backend("truncated".into());
        assert!(e.to_string().contains("backend error"));
        let e = StoreError::Corrupt {
            offset: 42,
            reason: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("byte 42"));
        assert!(e.to_string().contains("checksum mismatch"));
        assert!(std::error::Error::source(&e).is_none());
        let e = StoreError::from(io::Error::other("sink"));
        assert!(e.to_string().contains("i/o error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
