//! Key-aware change descriptions.
//!
//! The motivating example of §1 (Fig 1): a minimum-edit-distance diff
//! "explains" a correction that swapped two genes' data as the genes
//! changing their ids and names — semantically nonsense. Because the
//! archive preserves the continuity of keyed elements, it can describe the
//! change between any two versions *element-wise*: which keyed elements
//! appeared, disappeared, or changed content.

use std::fmt;

use crate::archive::{AKind, ANodeId, Archive};
use crate::timeset::TimeSet;

/// The kind of an element-wise change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// The element exists in `j` but not `i`.
    Added,
    /// The element exists in `i` but not `j`.
    Deleted,
    /// A frontier element exists in both but with different content.
    Modified,
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChangeKind::Added => "added",
            ChangeKind::Deleted => "deleted",
            ChangeKind::Modified => "modified",
        })
    }
}

/// One element-wise change between two versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Change {
    /// Key-annotated path, e.g.
    /// `/db/dept{name=<name>finance</name>}/emp{fn=<fn>John</fn>, ln=<ln>Doe</ln>}/sal`.
    pub path: String,
    /// Added, deleted, or modified.
    pub kind: ChangeKind,
    /// For `Modified`: (content at `i`, content at `j`) in canonical form.
    pub detail: Option<(String, String)>,
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.detail {
            Some((from, to)) => write!(f, "{} {}: {} -> {}", self.kind, self.path, from, to),
            None => write!(f, "{} {}", self.kind, self.path),
        }
    }
}

/// Describes the changes between archived versions `i` and `j`, grouped by
/// element (the paper's contrast with deltas, which group changes by time).
pub fn describe_changes(a: &Archive, i: u32, j: u32) -> Vec<Change> {
    let mut out = Vec::new();
    let root_time = a.effective_time(a.root());
    walk(a, a.root(), &root_time, i, j, &mut String::new(), &mut out);
    out
}

fn label_of(a: &Archive, id: ANodeId) -> String {
    let n = a.node(id);
    let AKind::Element(s) = n.kind else {
        return "#text".to_owned();
    };
    let tag = a.syms().resolve(s);
    match &n.key {
        Some(k) if !k.parts.is_empty() => format!("{tag}{k}"),
        _ => tag.to_owned(),
    }
}

fn walk(
    a: &Archive,
    id: ANodeId,
    inherited: &TimeSet,
    i: u32,
    j: u32,
    path: &mut String,
    out: &mut Vec<Change>,
) {
    for &c in a.children(id) {
        let n = a.node(c);
        let eff = n.time.clone().unwrap_or_else(|| inherited.clone());
        let at_i = eff.contains(i);
        let at_j = eff.contains(j);
        match &n.kind {
            AKind::Element(_) => {
                let lbl = label_of(a, c);
                match (at_i, at_j) {
                    (false, false) => continue,
                    (true, false) => out.push(Change {
                        path: format!("{path}/{lbl}"),
                        kind: ChangeKind::Deleted,
                        detail: None,
                    }),
                    (false, true) => out.push(Change {
                        path: format!("{path}/{lbl}"),
                        kind: ChangeKind::Added,
                        detail: None,
                    }),
                    (true, true) => {
                        let len = path.len();
                        path.push('/');
                        path.push_str(&lbl);
                        if is_frontier_like(a, c) {
                            let ci = content_at(a, c, i);
                            let cj = content_at(a, c, j);
                            if ci != cj {
                                out.push(Change {
                                    path: path.clone(),
                                    kind: ChangeKind::Modified,
                                    detail: Some((ci, cj)),
                                });
                            }
                        } else {
                            walk(a, c, &eff, i, j, path, out);
                        }
                        path.truncate(len);
                    }
                }
            }
            // Text/stamps above the frontier are handled by their parents;
            // stamps only occur beneath frontier nodes.
            _ => continue,
        }
    }
}

/// A node whose children are matched by value (stamps present, or a keyed
/// frontier node, or a node with only text/beyond-frontier children).
fn is_frontier_like(a: &Archive, id: ANodeId) -> bool {
    use xarch_keys::NodeClass;
    matches!(a.node(id).class, NodeClass::Frontier)
        || a.children(id)
            .iter()
            .any(|&c| matches!(a.node(c).kind, AKind::Stamp))
}

/// The canonical content of node `id` as of version `v`.
fn content_at(a: &Archive, id: ANodeId, v: u32) -> String {
    let mut out = String::new();
    content_at_rec(a, id, v, &mut out);
    out
}

fn content_at_rec(a: &Archive, id: ANodeId, v: u32, out: &mut String) {
    for &c in a.children(id) {
        let n = a.node(c);
        if let Some(t) = &n.time {
            if !t.contains(v) {
                continue;
            }
        }
        match &n.kind {
            AKind::Stamp => content_at_rec(a, c, v, out),
            _ => out.push_str(&crate::merge::canonical_anode(a, c)),
        }
    }
}
