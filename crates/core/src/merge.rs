//! **Nested Merge** (§4.2): merging a new version into the archive.
//!
//! The algorithm recursively pairs archive nodes with version nodes that
//! have the same *label* (tag + key value), starting from the root:
//!
//! * paired nodes (`XY`) are merged — the archive node's timestamp is
//!   augmented with the new version number `i` and the recursion descends;
//! * archive-only nodes (`X′`) are *terminated*: if they were inheriting
//!   their timestamp they now get an explicit one excluding `i`;
//! * version-only nodes (`Y′`) are copied into the archive with
//!   timestamp `{i}`.
//!
//! At **frontier nodes** the key structure runs out, so matching switches
//! to value equality: contents that differ across versions are held in
//! `<T>` *stamp* alternatives (Fig 8), or woven SCCS-style under the
//! "further compaction" mode (Fig 10, implemented in [`crate::weave`]).
//!
//! Children on both sides are sorted by the label order `≤lab` (tag, then
//! key arity, then key-path names, then key-path values under `≤v`) and
//! paired by a single merge pass, giving the paper's `O(αN log N)` bound.
//!
//! Above the frontier, children not covered by any key (mixed content,
//! schema drift) fall back to whole-value matching — the "conventional diff
//! techniques" escape hatch of §3, in its simplest form.

use std::cmp::Ordering;
use std::collections::HashMap;

use xarch_keys::{annotate, Annotations, KeyValue, NodeClass};
use xarch_xml::canon::canonical;
use xarch_xml::{Document, NodeId, NodeKind};

use crate::archive::{AKind, ANode, ANodeId, Archive, Compaction, MergeError};
use crate::timeset::TimeSet;
use crate::weave::weave_frontier;

/// A child label: tag name plus key value (the paper's
/// `l{p1=v1, ..., pk=vk}`).
#[derive(Debug, Clone)]
pub(crate) struct Label {
    pub tag: String,
    pub key: KeyValue,
}

impl Label {
    pub(crate) fn cmp(&self, other: &Label) -> Ordering {
        self.tag
            .cmp(&other.tag)
            .then_with(|| self.key.cmp_parts(&other.key))
    }
}

impl Archive {
    /// Annotates `doc` against the archive's key spec and merges it as the
    /// next version. Returns the assigned version number.
    pub fn add_version(&mut self, doc: &Document) -> Result<u32, MergeError> {
        let ann = annotate(doc, self.spec())?;
        self.add_annotated(doc, &ann)
    }

    /// Merges an already-annotated version (callers that annotate once and
    /// reuse, e.g. the chunked archiver, use this entry point).
    pub fn add_annotated(&mut self, doc: &Document, ann: &Annotations) -> Result<u32, MergeError> {
        if !ann.is_keyed(doc.root()) {
            return Err(MergeError::UnkeyedRoot(doc.tag_name(doc.root()).to_owned()));
        }
        let i = self.bump_version();
        let root = self.root();
        let t = self
            .node_mut(root)
            .time
            .as_mut()
            .expect("root carries a timestamp");
        t.insert(i);
        let t_cur = t.clone();
        // The paper pairs the archive root rA with a virtual root rD whose
        // only child is the document root; equivalently, merge the child
        // lists directly.
        merge_children(self, root, doc, ann, &[doc.root()], &t_cur, i);
        Ok(i)
    }

    /// Bulk ingest (batch nested merge): merges `docs` as consecutive
    /// versions with **one pass over the archive**, returning the assigned
    /// version numbers.
    ///
    /// The result is identical — timestamps, node order, stamp structure —
    /// to merging the documents one at a time, but each archive child list
    /// is sorted and walked once per *batch* instead of once per version:
    /// the per-level walk pairs the archive's sorted labels against all
    /// `k` versions' sorted labels simultaneously, and the serial
    /// semantics (augment / terminate / insert, in version order) are
    /// recovered from each node's per-batch presence set (see
    /// `batch_merge_children` in this module).
    ///
    /// Every document is annotated and validated *before* any state is
    /// touched, so a rejected batch leaves the archive unchanged — unlike
    /// a serial replay, which stops at the first bad document with the
    /// earlier ones already merged. An empty batch is a no-op.
    pub fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, MergeError> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let anns = docs
            .iter()
            .map(|d| annotate(d, self.spec()))
            .collect::<Result<Vec<_>, _>>()?;
        for (doc, ann) in docs.iter().zip(&anns) {
            if !ann.is_keyed(doc.root()) {
                return Err(MergeError::UnkeyedRoot(doc.tag_name(doc.root()).to_owned()));
            }
        }
        Ok(self.add_annotated_versions(docs, &anns))
    }

    /// Batch merge of already-annotated versions (the chunked archiver
    /// annotates per chunk sub-document and calls this). Cannot fail: the
    /// caller has validated every document against the spec.
    pub(crate) fn add_annotated_versions(
        &mut self,
        docs: &[Document],
        anns: &[Annotations],
    ) -> Vec<u32> {
        let root = self.root();
        let eff0 = self
            .node(root)
            .time
            .clone()
            .expect("root carries a timestamp");
        let mut assigned = Vec::with_capacity(docs.len());
        let mut levels: Vec<BatchLevel<'_>> = Vec::with_capacity(docs.len());
        for (doc, ann) in docs.iter().zip(anns) {
            let v = self.bump_version();
            assigned.push(v);
            // the paper's virtual root: each version contributes its
            // document root as the sole child to merge beneath `root`
            levels.push(BatchLevel {
                v,
                doc,
                ann,
                children: vec![doc.root()],
            });
        }
        {
            let t = self
                .node_mut(root)
                .time
                .as_mut()
                .expect("root carries a timestamp");
            for &v in &assigned {
                t.insert(v);
            }
        }
        batch_merge_children(self, root, &levels, &eff0);
        assigned
    }

    /// Archives an *empty* database as the next version (§2's footnote:
    /// `root` keeps `t=[1-5]` while `db` ends at `t=[1-4]`).
    pub fn add_empty_version(&mut self) -> u32 {
        let i = self.bump_version();
        let root = self.root();
        let t = self
            .node_mut(root)
            .time
            .as_mut()
            .expect("root carries a timestamp");
        t.insert(i);
        let t_cur = t.clone();
        for c in self.children(root).to_vec() {
            terminate(self, c, &t_cur, i);
        }
        i
    }
}

/// The recursive core: merge version node `y` into archive node `x`
/// (their labels are equal by construction).
fn nested_merge(
    a: &mut Archive,
    x: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y: NodeId,
    inherited: &TimeSet,
    i: u32,
) {
    // "If time(x) exists, then add i to time(x), let T be time(x)."
    let t_cur = match a.node_mut(x).time.as_mut() {
        Some(t) => {
            t.insert(i);
            t.clone()
        }
        None => inherited.clone(),
    };
    if ann.is_frontier(y) {
        frontier_merge(a, x, doc, ann, y, &t_cur, i);
    } else {
        let y_children = doc.children(y).to_vec();
        merge_children(a, x, doc, ann, &y_children, &t_cur, i);
    }
}

/// Partitions the children of archive node `x` and the version child list
/// into XY / X′ / Y′ and acts on each set.
pub(crate) fn merge_children(
    a: &mut Archive,
    x: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y_children: &[NodeId],
    t_cur: &TimeSet,
    i: u32,
) {
    // Split both child lists into keyed and other nodes.
    let mut kx: Vec<(Label, ANodeId)> = Vec::new();
    let mut ox: Vec<ANodeId> = Vec::new();
    for &c in a.children(x) {
        let n = a.node(c);
        debug_assert!(
            !matches!(n.kind, AKind::Stamp),
            "stamp nodes occur only beneath frontier nodes"
        );
        match (&n.kind, &n.key) {
            (AKind::Element(s), Some(k)) => kx.push((
                Label {
                    tag: a.syms().resolve(*s).to_owned(),
                    key: k.clone(),
                },
                c,
            )),
            _ => ox.push(c),
        }
    }
    let mut ky: Vec<(Label, NodeId)> = Vec::new();
    let mut oy: Vec<NodeId> = Vec::new();
    for &c in y_children {
        match (&doc.node(c).kind, ann.key(c)) {
            (NodeKind::Element(s), Some(k)) => ky.push((
                Label {
                    tag: doc.syms().resolve(*s).to_owned(),
                    key: k.clone(),
                },
                c,
            )),
            _ => oy.push(c),
        }
    }
    kx.sort_by(|p, q| p.0.cmp(&q.0));
    ky.sort_by(|p, q| p.0.cmp(&q.0));

    // Merge pass over the two sorted lists.
    let (mut ix, mut iy) = (0usize, 0usize);
    while ix < kx.len() && iy < ky.len() {
        match kx[ix].0.cmp(&ky[iy].0) {
            Ordering::Equal => {
                // action (a): recursive merge
                nested_merge(a, kx[ix].1, doc, ann, ky[iy].1, t_cur, i);
                ix += 1;
                iy += 1;
            }
            Ordering::Less => {
                // action (b): terminate the archive-only node
                terminate(a, kx[ix].1, t_cur, i);
                ix += 1;
            }
            Ordering::Greater => {
                // action (c): new subtree
                insert_new(a, x, doc, ann, ky[iy].1, i);
                iy += 1;
            }
        }
    }
    for (_, xc) in &kx[ix..] {
        terminate(a, *xc, t_cur, i);
    }
    for (_, yc) in &ky[iy..] {
        insert_new(a, x, doc, ann, *yc, i);
    }

    match_unkeyed(a, x, &ox, doc, ann, &oy, t_cur, i);
}

/// Action (b): "If time(x′) does not exist, then let time(x′) be T − {i}."
pub(crate) fn terminate(a: &mut Archive, xc: ANodeId, t_cur: &TimeSet, i: u32) {
    if a.node(xc).time.is_none() {
        let mut t = t_cur.clone();
        t.remove(i);
        a.node_mut(xc).time = Some(t);
    }
}

/// Action (c): copy a version subtree into the archive with timestamp `{i}`.
/// Returns the id of the copied root (the batch merge recurses into it for
/// the later versions of a batch).
fn insert_new(
    a: &mut Archive,
    parent: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y: NodeId,
    i: u32,
) -> ANodeId {
    let id = copy_subtree(a, doc, ann, y, parent);
    a.node_mut(id).time = Some(TimeSet::from_version(i));
    id
}

/// Deep-copies a version subtree into the archive, carrying over key values
/// and node classes so future merges need not re-annotate the archive.
pub(crate) fn copy_subtree(
    a: &mut Archive,
    doc: &Document,
    ann: &Annotations,
    y: NodeId,
    parent: ANodeId,
) -> ANodeId {
    let node = match &doc.node(y).kind {
        NodeKind::Element(s) => {
            let tag = a.intern(doc.syms().resolve(*s));
            let attrs = doc
                .attrs(y)
                .iter()
                .map(|(s, v)| (doc.syms().resolve(*s).to_owned(), v.clone()))
                .collect::<Vec<_>>();
            let attrs = attrs.into_iter().map(|(n, v)| (a.intern(&n), v)).collect();
            ANode {
                kind: AKind::Element(tag),
                parent: None,
                children: Vec::new(),
                attrs,
                time: None,
                key: ann.key(y).cloned(),
                class: ann.class(y),
            }
        }
        NodeKind::Text(t) => ANode {
            kind: AKind::Text(t.clone()),
            parent: None,
            children: Vec::new(),
            attrs: Vec::new(),
            time: None,
            key: None,
            class: ann.class(y),
        },
    };
    let id = a.push_node(parent, node);
    for &c in doc.children(y) {
        copy_subtree(a, doc, ann, c, id);
    }
    id
}

// ---------------------------------------------------------------------------
// Batch nested merge
//
// The serial algorithm pays, per version, a sort + walk of every archive
// child list it descends through — for a k-document batch that is k sorted
// walks of lists whose size tracks the whole archive. The batch merge
// below pairs the archive's sorted labels against all k versions' sorted
// labels in ONE walk, and reconstructs exactly what a serial replay would
// have done to each node from its batch presence set:
//
// * a node matched in versions P of the batch (present set S at its
//   parent) ends with time  pre ∪ P  when its timestamp was explicit,
//   stays inheriting when P = S, and becomes  eff0 ∪ P  when it was
//   inheriting but missed some version — because the serial replay
//   terminates it at the first absent version q with t_cur(q) − {q}
//   = eff0 ∪ {p ∈ P : p < q}, then inserts the later present versions;
// * an archive-only node is terminated once, at the batch's first
//   version, with t_cur(v₁) − {v₁} = its parent's pre-batch effective
//   time eff0 (later versions are no-ops once the timestamp is explicit);
// * a version-only label is inserted at its first present version and the
//   later versions' subtrees are nested-merged into the new node — the
//   exact serial sequence.
//
// t_cur(p) at any node is recovered as  eff0 ∪ {v ∈ S : v ≤ p}  where
// eff0 is the node's pre-batch effective timestamp and S its presence
// set, so no formula ever reads a timestamp the batch already mutated.
//
// Order matters for byte-identity: a serial replay appends version j's
// new keyed subtrees (in label order) and then its unkeyed insertions
// (in document order) before version j+1 touches anything, so insertions
// are deferred out of the label walk and replayed version by version.
// Frontier nodes and unkeyed (mixed-content) children are handled by the
// serial helpers per present version, in version order — their costs are
// bounded by version content, not archive size.
// ---------------------------------------------------------------------------

/// One version of a batch at the current tree level: its assigned version
/// number, source document + annotations, and the child list to merge.
/// A deferred insertion found during the k-way label walk: the level that
/// first introduces the label, its version node, and the later levels'
/// nodes to nested-merge into the fresh subtree.
type DeferredInsert = (usize, NodeId, Vec<(usize, NodeId)>);

struct BatchLevel<'a> {
    v: u32,
    doc: &'a Document,
    ann: &'a Annotations,
    children: Vec<NodeId>,
}

/// `eff0 ∪ {v ∈ versions : v ≤ upto}` — the node's effective timestamp as
/// of the serial replay of batch version `upto` (versions are ascending).
fn t_cur_at(eff0: &TimeSet, versions: &[u32], upto: u32) -> TimeSet {
    let mut t = eff0.clone();
    for &v in versions {
        if v > upto {
            break;
        }
        t.insert(v);
    }
    t
}

/// The batch counterpart of [`merge_children`]: merges every batch
/// version's child list into archive node `x` with one sorted walk of
/// `x`'s children. `levels` holds the versions in which `x` is present
/// (ascending); `eff0` is `x`'s pre-batch effective timestamp.
fn batch_merge_children(a: &mut Archive, x: ANodeId, levels: &[BatchLevel<'_>], eff0: &TimeSet) {
    // one version left at this subtree: the serial walk is the batch walk,
    // minus the batch scaffolding — common under newly inserted records
    if let [l] = levels {
        let mut t_cur = eff0.clone();
        t_cur.insert(l.v);
        merge_children(a, x, l.doc, l.ann, &l.children, &t_cur, l.v);
        return;
    }
    let present: Vec<u32> = levels.iter().map(|l| l.v).collect();

    // Partition and sort the archive's children ONCE for the whole batch.
    let mut kx: Vec<(Label, ANodeId)> = Vec::new();
    for &c in a.children(x) {
        let n = a.node(c);
        debug_assert!(
            !matches!(n.kind, AKind::Stamp),
            "stamp nodes occur only beneath frontier nodes"
        );
        if let (AKind::Element(s), Some(k)) = (&n.kind, &n.key) {
            kx.push((
                Label {
                    tag: a.syms().resolve(*s).to_owned(),
                    key: k.clone(),
                },
                c,
            ));
        }
    }
    kx.sort_by(|p, q| p.0.cmp(&q.0));

    // Per version: sorted keyed children + unkeyed children in doc order.
    // The sort is stable, so siblings that (illegally) share a label keep
    // document order and pair positionally, exactly as the serial pass.
    let mut kys: Vec<Vec<(Label, NodeId)>> = Vec::with_capacity(levels.len());
    let mut oys: Vec<Vec<NodeId>> = Vec::with_capacity(levels.len());
    for l in levels {
        let mut ky: Vec<(Label, NodeId)> = Vec::new();
        let mut oy: Vec<NodeId> = Vec::new();
        for &c in &l.children {
            match (&l.doc.node(c).kind, l.ann.key(c)) {
                (NodeKind::Element(s), Some(k)) => ky.push((
                    Label {
                        tag: l.doc.syms().resolve(*s).to_owned(),
                        key: k.clone(),
                    },
                    c,
                )),
                _ => oy.push(c),
            }
        }
        ky.sort_by(|p, q| p.0.cmp(&q.0));
        kys.push(ky);
        oys.push(oy);
    }

    // k-way label walk. Each round consumes at most one front entry per
    // list, so duplicate labels pair positionally across rounds. New
    // labels are deferred (in label order, with their first version) so
    // they append in serial order below.
    let mut ix = 0usize;
    let mut iys = vec![0usize; levels.len()];
    let mut news: Vec<DeferredInsert> = Vec::new();
    loop {
        let mut min: Option<&Label> = (ix < kx.len()).then(|| &kx[ix].0);
        for (li, ky) in kys.iter().enumerate() {
            if let Some((lab, _)) = ky.get(iys[li]) {
                min = match min {
                    Some(m) if m.cmp(lab) != Ordering::Greater => Some(m),
                    _ => Some(lab),
                };
            }
        }
        let Some(min) = min else { break };
        let min = min.clone();
        let mut parts: Vec<(usize, NodeId)> = Vec::new();
        for (li, ky) in kys.iter().enumerate() {
            if let Some((lab, y)) = ky.get(iys[li]) {
                if lab.cmp(&min) == Ordering::Equal {
                    parts.push((li, *y));
                    iys[li] += 1;
                }
            }
        }
        let x_here = (ix < kx.len() && kx[ix].0.cmp(&min) == Ordering::Equal).then(|| {
            ix += 1;
            kx[ix - 1].1
        });
        match x_here {
            // archive-only: serial terminates at the batch's first version
            // with t_cur(v₁) − {v₁} = eff0; later versions are no-ops
            Some(xc) if parts.is_empty() => {
                if a.node(xc).time.is_none() {
                    a.node_mut(xc).time = Some(eff0.clone());
                }
            }
            Some(xc) => batch_merge_node(a, xc, levels, &parts, eff0),
            None => {
                let (first_li, first_y) = parts[0];
                news.push((first_li, first_y, parts[1..].to_vec()));
            }
        }
    }
    // group the deferred insertions by first-present version; the stable
    // sort keeps label order within each version
    news.sort_by_key(|&(first_li, _, _)| first_li);
    let mut news = news.into_iter().peekable();
    let mut have_unkeyed_x = a.children(x).iter().any(|&c| {
        let n = a.node(c);
        !(matches!(n.kind, AKind::Element(_)) && n.key.is_some())
    });

    // Insertions and unkeyed matching, replayed in version order so the
    // archive's child append order is byte-identical to a serial replay:
    // version j's new keyed subtrees (label order), then its unkeyed
    // insertions (doc order), then version j+1's.
    for (li, l) in levels.iter().enumerate() {
        while let Some((_, y, followups)) = news.next_if(|&(first, _, _)| first == li) {
            let id = insert_new(a, x, l.doc, l.ann, y, l.v);
            // later versions of the batch merge into the fresh node — its
            // timestamp is explicit, so these are self-contained and do
            // not touch x's child list
            for &(fli, fy) in &followups {
                let fl = &levels[fli];
                nested_merge(
                    a,
                    id,
                    fl.doc,
                    fl.ann,
                    fy,
                    &t_cur_at(eff0, &present, fl.v),
                    fl.v,
                );
            }
        }
        // unkeyed matching only when there is anything unkeyed in play —
        // fully keyed levels (the common case) skip the child rescan.
        // Once one version inserts an unkeyed child, later versions must
        // rescan: their pools include it.
        let oy = &oys[li];
        if have_unkeyed_x || !oy.is_empty() {
            let ox: Vec<ANodeId> = a
                .children(x)
                .iter()
                .copied()
                .filter(|&c| {
                    let n = a.node(c);
                    !(matches!(n.kind, AKind::Element(_)) && n.key.is_some())
                })
                .collect();
            match_unkeyed(
                a,
                x,
                &ox,
                l.doc,
                l.ann,
                oy,
                &t_cur_at(eff0, &present, l.v),
                l.v,
            );
            have_unkeyed_x = have_unkeyed_x || !oy.is_empty();
        }
    }
}

/// Batch merge of one matched archive node: applies the serial replay's
/// final timestamp (see the module notes above), then descends — the
/// frontier sequentially per present version, everything else through
/// another one-walk [`batch_merge_children`].
fn batch_merge_node(
    a: &mut Archive,
    xc: ANodeId,
    levels: &[BatchLevel<'_>],
    parts: &[(usize, NodeId)],
    eff0_parent: &TimeSet,
) {
    let pre = a.node(xc).time.clone();
    let eff0 = pre.clone().unwrap_or_else(|| eff0_parent.clone());
    let part_versions: Vec<u32> = parts.iter().map(|&(li, _)| levels[li].v).collect();
    match pre {
        Some(mut t) => {
            for &v in &part_versions {
                t.insert(v);
            }
            a.node_mut(xc).time = Some(t);
        }
        // present wherever the parent is: keeps inheriting
        None if parts.len() == levels.len() => {}
        // terminated at its first absent version, then re-augmented
        None => {
            let mut t = eff0_parent.clone();
            for &v in &part_versions {
                t.insert(v);
            }
            a.node_mut(xc).time = Some(t);
        }
    }
    let frontier = levels[parts[0].0].ann.is_frontier(parts[0].1);
    debug_assert!(
        parts
            .iter()
            .all(|&(li, y)| levels[li].ann.is_frontier(y) == frontier),
        "frontier classification must agree across a batch"
    );
    if frontier {
        for &(li, y) in parts {
            let l = &levels[li];
            frontier_merge(
                a,
                xc,
                l.doc,
                l.ann,
                y,
                &t_cur_at(&eff0, &part_versions, l.v),
                l.v,
            );
        }
    } else {
        let sub: Vec<BatchLevel<'_>> = parts
            .iter()
            .map(|&(li, y)| BatchLevel {
                v: levels[li].v,
                doc: levels[li].doc,
                ann: levels[li].ann,
                children: levels[li].doc.children(y).to_vec(),
            })
            .collect();
        batch_merge_children(a, xc, &sub, &eff0);
    }
}

/// Frontier handling (§4.2): beneath the deepest keyed nodes, contents are
/// matched by value.
fn frontier_merge(
    a: &mut Archive,
    x: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y: NodeId,
    t_cur: &TimeSet,
    i: u32,
) {
    if a.compaction() == Compaction::Weave {
        weave_frontier(a, x, doc, ann, y, t_cur, i);
        return;
    }
    let y_children = doc.children(y).to_vec();
    let has_stamps = a
        .children(x)
        .iter()
        .any(|&c| matches!(a.node(c).kind, AKind::Stamp));
    if !has_stamps {
        // "If every node in children(x) is not a timestamp node":
        if !content_equals(a, a.children(x), doc, &y_children) {
            // split into two alternatives t1 = T−{i}, t2 = {i}
            let old: Vec<ANodeId> = std::mem::take(&mut a.node_mut(x).children);
            let mut t_old = t_cur.clone();
            t_old.remove(i);
            let t1 = a.alloc_detached(ANode {
                kind: AKind::Stamp,
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
                time: Some(t_old),
                key: None,
                class: NodeClass::BeyondFrontier,
            });
            for c in old {
                a.attach(t1, c);
            }
            a.attach(x, t1);
            push_alternative(a, x, doc, ann, &y_children, i);
        }
        // equal contents: nothing to do, children keep inheriting
    } else {
        // find an existing alternative with value-equal content
        let stamp = a.children(x).to_vec().into_iter().find(|&sc| {
            matches!(a.node(sc).kind, AKind::Stamp)
                && content_equals(a, a.children(sc), doc, &y_children)
        });
        match stamp {
            Some(sc) => {
                a.node_mut(sc)
                    .time
                    .as_mut()
                    .expect("stamps carry timestamps")
                    .insert(i);
            }
            None => push_alternative(a, x, doc, ann, &y_children, i),
        }
    }
}

/// Appends a new `<T t="i">` alternative holding a copy of `y_children`.
fn push_alternative(
    a: &mut Archive,
    x: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y_children: &[NodeId],
    i: u32,
) {
    let t2 = a.alloc_detached(ANode {
        kind: AKind::Stamp,
        parent: None,
        children: Vec::new(),
        attrs: Vec::new(),
        time: Some(TimeSet::from_version(i)),
        key: None,
        class: NodeClass::BeyondFrontier,
    });
    for &c in y_children {
        copy_subtree(a, doc, ann, c, t2);
    }
    a.attach(x, t2);
}

/// Fallback matching for children not covered by keys: pair archive and
/// version children with value-equal subtrees; augment matched timestamps,
/// terminate unmatched archive children, insert unmatched version children.
#[allow(clippy::too_many_arguments)]
fn match_unkeyed(
    a: &mut Archive,
    x: ANodeId,
    ox: &[ANodeId],
    doc: &Document,
    ann: &Annotations,
    oy: &[NodeId],
    t_cur: &TimeSet,
    i: u32,
) {
    if ox.is_empty() && oy.is_empty() {
        return;
    }
    let mut by_canon: HashMap<String, Vec<ANodeId>> = HashMap::new();
    for &xc in ox {
        by_canon.entry(canonical_anode(a, xc)).or_default().push(xc);
    }
    for &yc in oy {
        let cy = canonical(doc, yc);
        let matched = by_canon.get_mut(&cy).and_then(|v| v.pop());
        match matched {
            Some(xc) => {
                if let Some(t) = a.node_mut(xc).time.as_mut() {
                    t.insert(i);
                }
                // time == None: inherits, which already includes i
            }
            None => {
                insert_new(a, x, doc, ann, yc, i);
            }
        }
    }
    for (_, rest) in by_canon {
        for xc in rest {
            terminate(a, xc, t_cur, i);
        }
    }
}

/// Canonical form of an archive subtree (no stamps may occur inside).
pub(crate) fn canonical_anode(a: &Archive, id: ANodeId) -> String {
    let mut out = String::new();
    canonical_anode_into(a, id, &mut out);
    out
}

fn canonical_anode_into(a: &Archive, id: ANodeId, out: &mut String) {
    use xarch_xml::escape::{escape_attr_into, escape_text_into};
    match &a.node(id).kind {
        AKind::Text(t) => escape_text_into(t, out),
        AKind::Element(s) => {
            let tag = a.syms().resolve(*s).to_owned();
            out.push('<');
            out.push_str(&tag);
            let mut attrs: Vec<(&str, &str)> = a
                .node(id)
                .attrs
                .iter()
                .map(|(s, v)| (a.syms().resolve(*s), v.as_str()))
                .collect();
            attrs.sort_unstable();
            for (n, v) in attrs {
                out.push(' ');
                out.push_str(n);
                out.push_str("=\"");
                escape_attr_into(v, out);
                out.push('"');
            }
            out.push('>');
            for &c in a.children(id) {
                canonical_anode_into(a, c, out);
            }
            out.push_str("</");
            out.push_str(&tag);
            out.push('>');
        }
        AKind::Stamp => {
            debug_assert!(false, "canonical form of a stamp node is undefined");
        }
    }
}

/// Value equality between an archive child list (plain, no stamps) and a
/// version child list — the `children(x′) =v children(y)` test.
pub(crate) fn content_equals(
    a: &Archive,
    x_children: &[ANodeId],
    doc: &Document,
    y_children: &[NodeId],
) -> bool {
    if x_children.len() != y_children.len() {
        return false;
    }
    x_children
        .iter()
        .zip(y_children.iter())
        .all(|(&xc, &yc)| node_equals(a, xc, doc, yc))
}

fn node_equals(a: &Archive, xc: ANodeId, doc: &Document, yc: NodeId) -> bool {
    match (&a.node(xc).kind, &doc.node(yc).kind) {
        (AKind::Text(t1), NodeKind::Text(t2)) => t1 == t2,
        (AKind::Element(s1), NodeKind::Element(s2)) => {
            if a.syms().resolve(*s1) != doc.syms().resolve(*s2) {
                return false;
            }
            // attrs as sets
            let n1 = a.node(xc);
            if n1.attrs.len() != doc.attrs(yc).len() {
                return false;
            }
            let mut a1: Vec<(&str, &str)> = n1
                .attrs
                .iter()
                .map(|(s, v)| (a.syms().resolve(*s), v.as_str()))
                .collect();
            let mut a2: Vec<(&str, &str)> = doc
                .attrs(yc)
                .iter()
                .map(|(s, v)| (doc.syms().resolve(*s), v.as_str()))
                .collect();
            a1.sort_unstable();
            a2.sort_unstable();
            if a1 != a2 {
                return false;
            }
            content_equals(a, a.children(xc), doc, doc.children(yc))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::Compaction;
    use xarch_keys::KeySpec;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse(
            "(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))\n(/db/rec, (tel, {.}))",
        )
        .unwrap()
    }

    /// A sequence that exercises every merge action across a batch:
    /// appearing / disappearing / reappearing records, frontier content
    /// changes and repeats, unkeyed mixed content, and a content-empty
    /// root.
    fn tricky_versions() -> Vec<Document> {
        [
            "<db><rec><id>2</id><val>b</val></rec><rec><id>1</id><val>a</val></rec></db>",
            "<db><rec><id>1</id><val>a2</val><tel>5</tel></rec><rec><id>3</id><val>c</val></rec></db>",
            "<db/>",
            "<db><rec><id>1</id><val>a</val></rec><extra>mixed</extra></db>",
            "<db><rec><id>1</id><val>a</val></rec><rec><id>3</id><val>c9</val><tel>5</tel><tel>6</tel></rec><extra>mixed</extra></db>",
            "<db><rec><id>4</id><val>d</val></rec><extra>other</extra><extra>mixed</extra></db>",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect()
    }

    /// Batch ingestion must leave the archive byte-identical — timestamps,
    /// node order, stamp structure, everything the Fig-5 XML form shows —
    /// to a serial one-document-at-a-time replay, for every split of the
    /// sequence into batches and both compaction modes.
    #[test]
    fn batch_merge_is_byte_identical_to_serial_replay() {
        let docs = tricky_versions();
        for compaction in [Compaction::Alternatives, Compaction::Weave] {
            let mut serial = Archive::with_compaction(spec(), compaction);
            for d in &docs {
                serial.add_version(d).unwrap();
            }
            let want = serial.to_xml_pretty();
            for split in 0..=docs.len() {
                let mut batched = Archive::with_compaction(spec(), compaction);
                let head = batched.add_versions(&docs[..split]).unwrap();
                let tail = batched.add_versions(&docs[split..]).unwrap();
                assert_eq!(head.len(), split);
                assert_eq!(tail.len(), docs.len() - split);
                batched.check_invariants().unwrap();
                assert_eq!(
                    batched.to_xml_pretty(),
                    want,
                    "{compaction:?}: batch split at {split} diverged from serial"
                );
            }
        }
    }

    /// The whole batch is validated before any state changes: one bad
    /// document rejects the batch and leaves the archive untouched.
    #[test]
    fn rejected_batch_leaves_archive_unchanged() {
        let mut a = Archive::new(spec());
        a.add_version(&parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap())
            .unwrap();
        let before = a.to_xml_pretty();
        let batch = vec![
            parse("<db><rec><id>2</id><val>b</val></rec></db>").unwrap(),
            parse("<nope><rec><id>3</id></rec></nope>").unwrap(),
        ];
        assert!(a.add_versions(&batch).is_err());
        assert_eq!(a.latest(), 1, "failed batch burned a version");
        assert_eq!(a.to_xml_pretty(), before, "failed batch mutated state");
    }

    /// `add_versions(&[])` is a no-op on the archive.
    #[test]
    fn empty_batch_is_a_noop() {
        let mut a = Archive::new(spec());
        assert_eq!(a.add_versions(&[]).unwrap(), Vec::<u32>::new());
        assert_eq!(a.latest(), 0);
        a.add_version(&parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap())
            .unwrap();
        let before = a.to_xml_pretty();
        assert_eq!(a.add_versions(&[]).unwrap(), Vec::<u32>::new());
        assert_eq!(a.latest(), 1);
        assert_eq!(a.to_xml_pretty(), before);
    }
}
